//! # uc-cstar — a C\*-style baseline on the CM simulator
//!
//! The paper's evaluation (§5) compares UC against **C\*** (Rose & Steele
//! 1987), Thinking Machines' data-parallel C dialect built around
//! `domain` types: a struct replicated across processors, `where` clauses
//! selecting active instances, and min/max assignment operators
//! (`<?=`, `>?=`).
//!
//! This crate is that baseline: an embedded DSL with C\*'s operational
//! flavour (domains, per-instance member fields, selection, combining
//! assignment) executing on the same [`uc_cm`] simulator the UC executor
//! uses. Like the paper's setup — where both compilers emitted PARIS
//! instructions for the same machine — comparing UC programs against
//! these hand-written C\* programs measures the *compiler overhead* of
//! UC's higher-level constructs, not a different machine.
//!
//! [`programs`] contains the paper's Appendix programs (Figures 9 and 10)
//! plus the grid benchmark, ready for the figure harness.
//!
//! ## Example
//!
//! ```
//! use uc_cstar::programs;
//!
//! // A 4-node graph as a flattened distance matrix.
//! let n = 4;
//! let mut d = vec![1i64; n * n];
//! for i in 0..n { d[i * n + i] = 0; }
//! let (dist, cycles) = programs::apsp_n2(&d, n, 16 * 1024);
//! assert_eq!(dist[3], 1);
//! assert!(cycles > 0);
//! ```

pub mod dsl;
pub mod programs;

pub use dsl::{CStar, Domain, Pvar};
