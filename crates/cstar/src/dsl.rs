//! The C\*-flavoured embedded DSL.
//!
//! C\* organises computation around **domains**: a `domain PATH { int i,
//! j, len; } path[N][N];` declares an N×N array of instances, each bound
//! to one (virtual) processor. Statements execute for all *active*
//! instances; `where (pred) { ... }` narrows the active set; `x <?= e`
//! assigns the minimum. The DSL below mirrors those concepts one-to-one
//! on the simulator:
//!
//! * [`Domain`] — a VP set of instances (`::init`-style coordinate
//!   members come from `Domain::coord`);
//! * [`Pvar`] — a per-instance member field;
//! * [`CStar::where_`] — nested selection;
//! * [`CStar::min_assign`] — the `<?=` combining assignment.

use uc_cm::{BinOp, Combine, ElemType, FieldId, Machine, MachineConfig, ReduceOp, Scalar, VpSetId};

/// Result alias re-using the machine's error type.
pub type Result<T> = uc_cm::Result<T>;

/// A C\* execution context: one simulated CM.
#[derive(Debug)]
pub struct CStar {
    m: Machine,
}

/// A domain: an n-dimensional array of instances.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    vp: VpSetId,
}

/// A parallel member variable of a domain.
#[derive(Debug, Clone, Copy)]
pub struct Pvar {
    field: FieldId,
}

impl CStar {
    /// A C\* machine with `phys_procs` physical processors.
    pub fn new(phys_procs: usize) -> Self {
        CStar {
            m: Machine::new(MachineConfig { phys_procs, ..MachineConfig::default() }),
        }
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.m.cycles()
    }

    /// Reset the clock (to time only a program's core loop).
    pub fn reset_clock(&mut self) {
        self.m.reset_clock();
    }

    /// Borrow the machine (for counters in tests).
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Declare a domain array: `domain D {...} d[dims...]`.
    pub fn domain(&mut self, name: &str, dims: &[usize]) -> Result<Domain> {
        Ok(Domain { vp: self.m.new_vp_set(name, dims)? })
    }

    /// Declare an int member of a domain.
    pub fn int_member(&mut self, d: Domain, name: &str) -> Result<Pvar> {
        Ok(Pvar { field: self.m.alloc_int(d.vp, name)? })
    }

    /// Declare a bool member (C\* test results).
    pub fn bool_member(&mut self, d: Domain, name: &str) -> Result<Pvar> {
        Ok(Pvar { field: self.m.alloc_bool(d.vp, name)? })
    }

    /// Free a member field.
    pub fn free(&mut self, p: Pvar) -> Result<()> {
        self.m.free(p.field)
    }

    /// The coordinate of each instance along `axis` (the `this - &d[0][0]`
    /// offset arithmetic of the paper's `PATH::init`).
    pub fn coord(&mut self, _d: Domain, axis: usize, dst: Pvar) -> Result<()> {
        self.m.axis_coord(dst.field, axis)
    }

    /// The linear self-address of each instance.
    pub fn self_address(&mut self, dst: Pvar) -> Result<()> {
        self.m.iota(dst.field)
    }

    /// `dst = imm` for active instances.
    pub fn assign_imm(&mut self, dst: Pvar, imm: i64) -> Result<()> {
        self.m.set_imm(dst.field, Scalar::Int(imm))
    }

    /// `dst = src` for active instances.
    pub fn assign(&mut self, dst: Pvar, src: Pvar) -> Result<()> {
        self.m.copy(dst.field, src.field)
    }

    /// `dst = a op b` for active instances.
    pub fn binop(&mut self, op: BinOp, dst: Pvar, a: Pvar, b: Pvar) -> Result<()> {
        self.m.binop(op, dst.field, a.field, b.field)
    }

    /// `dst = a op imm` for active instances.
    pub fn binop_imm(&mut self, op: BinOp, dst: Pvar, a: Pvar, imm: i64) -> Result<()> {
        self.m.binop_imm(op, dst.field, a.field, Scalar::Int(imm))
    }

    /// `dst <?= src`: C\*'s min-assignment.
    pub fn min_assign(&mut self, dst: Pvar, src: Pvar) -> Result<()> {
        self.m.binop(BinOp::Min, dst.field, dst.field, src.field)
    }

    /// `dst = rand() % modulus` per instance (the paper's `PATH::init`).
    pub fn rand(&mut self, dst: Pvar, modulus: i64, seed: u64) -> Result<()> {
        self.m.rand_int(dst.field, modulus, seed)
    }

    /// General gather: `dst = src_of[addr]` — the left-indexing
    /// `path[i][k].len` of C\*, where `addr` holds linear send addresses
    /// into `src`'s domain.
    pub fn get(&mut self, dst: Pvar, addr: Pvar, src: Pvar) -> Result<()> {
        self.m.get(dst.field, addr.field, src.field)
    }

    /// General combining scatter: `dst_of[addr] <op>= src`.
    pub fn send(&mut self, dst: Pvar, addr: Pvar, src: Pvar, combine: Combine) -> Result<()> {
        self.m.send(dst.field, addr.field, src.field, combine)
    }

    /// `dst = (int) b` — widen a bool member to 0/1 ints.
    pub fn convert_bool(&mut self, dst: Pvar, b: Pvar) -> Result<()> {
        self.m.convert(dst.field, b.field)
    }

    /// `dst = (a == imm)` into a bool member.
    pub fn cmp_imm_into(&mut self, dst: Pvar, a: Pvar, imm: i64) -> Result<()> {
        self.m.binop_imm(BinOp::Eq, dst.field, a.field, Scalar::Int(imm))
    }

    /// `dst = (a >= imm)` into a bool member.
    pub fn cmp_ge_imm_into(&mut self, dst: Pvar, a: Pvar, imm: i64) -> Result<()> {
        self.m.binop_imm(BinOp::Ge, dst.field, a.field, Scalar::Int(imm))
    }

    /// `dst = (a < b)` into a bool member.
    pub fn lt_into(&mut self, dst: Pvar, a: Pvar, b: Pvar) -> Result<()> {
        self.m.binop(BinOp::Lt, dst.field, a.field, b.field)
    }

    /// `dst = dst && !b` (narrow a bool member by a complement).
    pub fn andnot(&mut self, dst: Pvar, b: Pvar) -> Result<()> {
        let vp = dst.field.vp_set();
        let t = self.m.alloc_bool(vp, "~not")?;
        self.m.unop(uc_cm::UnOp::Not, t, b.field)?;
        self.m.binop(BinOp::LogAnd, dst.field, dst.field, t)?;
        self.m.free(t)
    }

    /// `m = min(N, E, W, S neighbours of a)` on a 2-D domain, with
    /// off-grid fetches reading INF (the CM border convention). `t` is a
    /// caller-provided scratch member.
    pub fn news_min(&mut self, m: Pvar, t: Pvar, a: Pvar) -> Result<()> {
        use uc_cm::news::Border;
        let inf = Border::Fill(Scalar::Int(i64::MAX));
        self.m.news_shift(m.field, a.field, 0, -1, inf)?;
        self.m.news_shift(t.field, a.field, 0, 1, inf)?;
        self.m.binop(BinOp::Min, m.field, m.field, t.field)?;
        self.m.news_shift(t.field, a.field, 1, -1, inf)?;
        self.m.binop(BinOp::Min, m.field, m.field, t.field)?;
        self.m.news_shift(t.field, a.field, 1, 1, inf)?;
        self.m.binop(BinOp::Min, m.field, m.field, t.field)
    }

    /// Run `body` with instances narrowed to `pred` (C\*'s `where`).
    pub fn where_<F>(&mut self, d: Domain, pred: Pvar, body: F) -> Result<()>
    where
        F: FnOnce(&mut Self) -> Result<()>,
    {
        self.m.push_context(pred.field)?;
        let r = body(self);
        self.m.pop_context(d.vp)?;
        r
    }

    /// Global OR of a bool member (C\*'s `|=` reduction to a mono value).
    pub fn any(&mut self, p: Pvar) -> Result<bool> {
        Ok(self.m.reduce(p.field, ReduceOp::Or)?.as_bool())
    }

    /// Global min of an int member.
    pub fn global_min(&mut self, p: Pvar) -> Result<i64> {
        Ok(self.m.reduce(p.field, ReduceOp::Min)?.as_int())
    }

    /// Read a member back to the front end.
    pub fn read(&mut self, p: Pvar) -> Result<Vec<i64>> {
        match self.m.read_all(p.field)? {
            uc_cm::FieldData::I64(v) => Ok(v),
            _ => Err(uc_cm::CmError::TypeMismatch {
                expected: ElemType::Int,
                found: ElemType::Bool,
            }),
        }
    }

    /// Write a member from the front end.
    pub fn write(&mut self, p: Pvar, data: Vec<i64>) -> Result<()> {
        self.m.write_all(p.field, uc_cm::FieldData::I64(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_lifecycle_and_ops() {
        let mut cs = CStar::new(1024);
        let d = cs.domain("D", &[8]).unwrap();
        let a = cs.int_member(d, "a").unwrap();
        let b = cs.int_member(d, "b").unwrap();
        cs.self_address(a).unwrap();
        cs.assign_imm(b, 3).unwrap();
        cs.binop(BinOp::Add, b, a, b).unwrap();
        assert_eq!(cs.read(b).unwrap(), (3..11).collect::<Vec<i64>>());
        assert!(cs.cycles() > 0);
    }

    #[test]
    fn where_narrows() {
        let mut cs = CStar::new(1024);
        let d = cs.domain("D", &[6]).unwrap();
        let a = cs.int_member(d, "a").unwrap();
        let even = cs.bool_member(d, "even").unwrap();
        cs.self_address(a).unwrap();
        let t = cs.int_member(d, "t").unwrap();
        cs.binop_imm(BinOp::Mod, t, a, 2).unwrap();
        cs.m.binop_imm(BinOp::Eq, even.field, t.field, Scalar::Int(0)).unwrap();
        cs.where_(d, even, |cs| cs.assign_imm(a, -1)).unwrap();
        assert_eq!(cs.read(a).unwrap(), vec![-1, 1, -1, 3, -1, 5]);
    }

    #[test]
    fn min_assign_is_cstar_leq() {
        let mut cs = CStar::new(1024);
        let d = cs.domain("D", &[4]).unwrap();
        let len = cs.int_member(d, "len").unwrap();
        let cand = cs.int_member(d, "cand").unwrap();
        cs.write(len, vec![5, 1, 7, 3]).unwrap();
        cs.write(cand, vec![2, 9, 7, 1]).unwrap();
        cs.min_assign(len, cand).unwrap();
        assert_eq!(cs.read(len).unwrap(), vec![2, 1, 7, 1]);
    }

    #[test]
    fn coords_match_paper_init() {
        // PATH::init computes i = offset/N, j = offset%N.
        let mut cs = CStar::new(1024);
        let d = cs.domain("PATH", &[3, 3]).unwrap();
        let i = cs.int_member(d, "i").unwrap();
        let j = cs.int_member(d, "j").unwrap();
        cs.coord(d, 0, i).unwrap();
        cs.coord(d, 1, j).unwrap();
        assert_eq!(cs.read(i).unwrap(), vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(cs.read(j).unwrap(), vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn global_reductions() {
        let mut cs = CStar::new(1024);
        let d = cs.domain("D", &[4]).unwrap();
        let a = cs.int_member(d, "a").unwrap();
        cs.write(a, vec![4, 2, 9, 6]).unwrap();
        assert_eq!(cs.global_min(a).unwrap(), 2);
        let t = cs.bool_member(d, "t").unwrap();
        assert!(!cs.any(t).unwrap());
    }
}
