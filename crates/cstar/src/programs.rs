//! The paper's Appendix C\* programs (Figures 9 and 10) and the grid
//! benchmark, as callable workloads for the figure harness.
//!
//! Each function takes the input data explicitly (so the UC and C\*
//! benchmark runs see the *same* graph) and returns the result plus the
//! simulated cycles of the computation proper (initialisation excluded,
//! as in the paper's timing methodology).

use uc_cm::{BinOp, Combine};

use crate::dsl::CStar;

/// Figure 9: all-pairs shortest path with O(N²) parallelism.
///
/// `domain PATH { int i, j, k, len; } path[N][N];` — one instance per
/// (i,j) pair; the k-loop runs on the front end and each step gathers
/// `path[i][k].len` and `path[k][j].len` through the router, then applies
/// `len <?= sum` locally.
pub fn apsp_n2(dist: &[i64], n: usize, phys_procs: usize) -> (Vec<i64>, u64) {
    assert_eq!(dist.len(), n * n, "dist must be an N×N matrix");
    let mut cs = CStar::new(phys_procs);
    let path = cs.domain("PATH", &[n, n]).unwrap();
    let i = cs.int_member(path, "i").unwrap();
    let j = cs.int_member(path, "j").unwrap();
    let len = cs.int_member(path, "len").unwrap();
    cs.coord(path, 0, i).unwrap();
    cs.coord(path, 1, j).unwrap();
    cs.write(len, dist.to_vec()).unwrap();

    cs.reset_clock();
    let ik = cs.int_member(path, "ik").unwrap();
    let kj = cs.int_member(path, "kj").unwrap();
    let addr = cs.int_member(path, "addr").unwrap();
    for k in 0..n as i64 {
        // addr = i*N + k  → gather path[i][k].len
        cs.binop_imm(BinOp::Mul, addr, i, n as i64).unwrap();
        cs.binop_imm(BinOp::Add, addr, addr, k).unwrap();
        cs.get(ik, addr, len).unwrap();
        // addr = k*N + j  → gather path[k][j].len
        cs.binop_imm(BinOp::Add, addr, j, k * n as i64).unwrap();
        cs.get(kj, addr, len).unwrap();
        // len <?= path[i][k].len + path[k][j].len
        cs.binop(BinOp::Add, ik, ik, kj).unwrap();
        cs.min_assign(len, ik).unwrap();
    }
    let cycles = cs.cycles();
    (cs.read(len).unwrap(), cycles)
}

/// Figure 10: all-pairs shortest path with O(N³) parallelism.
///
/// `domain XMED { int i, j, k; } xmed[N][N][N];` — one instance per
/// (i,j,k) triple. Each round every triple computes
/// `path[i][k].len + path[k][j].len`, the minimum over k is combined into
/// `path[i][j].len` through the router, and the updated matrix is
/// broadcast back. With full N³ relaxation the matrix converges in
/// ⌈log₂N⌉ rounds (the iteration count the UC program of Figure 5 uses;
/// the appendix text loops N times, which only repeats converged work).
pub fn apsp_n3(dist: &[i64], n: usize, phys_procs: usize) -> (Vec<i64>, u64) {
    assert_eq!(dist.len(), n * n);
    let mut cs = CStar::new(phys_procs);
    // The 2-D result domain.
    let path = cs.domain("PATH", &[n, n]).unwrap();
    let len = cs.int_member(path, "len").unwrap();
    cs.write(len, dist.to_vec()).unwrap();
    // The 3-D intermediate domain.
    let xmed = cs.domain("XMED", &[n, n, n]).unwrap();
    let xi = cs.int_member(xmed, "i").unwrap();
    let xj = cs.int_member(xmed, "j").unwrap();
    let xk = cs.int_member(xmed, "k").unwrap();
    cs.coord(xmed, 0, xi).unwrap();
    cs.coord(xmed, 1, xj).unwrap();
    cs.coord(xmed, 2, xk).unwrap();

    cs.reset_clock();
    let ik = cs.int_member(xmed, "ik").unwrap();
    let kj = cs.int_member(xmed, "kj").unwrap();
    let addr = cs.int_member(xmed, "addr").unwrap();
    let out_addr = cs.int_member(xmed, "oaddr").unwrap();
    // out_addr = i*N + j (address of path[i][j], reused every round)
    cs.binop_imm(BinOp::Mul, out_addr, xi, n as i64).unwrap();
    cs.binop(BinOp::Add, out_addr, out_addr, xj).unwrap();
    let rounds = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    for _ in 0..rounds {
        // ik = path[i][k].len
        cs.binop_imm(BinOp::Mul, addr, xi, n as i64).unwrap();
        cs.binop(BinOp::Add, addr, addr, xk).unwrap();
        cs.get(ik, addr, len).unwrap();
        // kj = path[k][j].len
        cs.binop_imm(BinOp::Mul, addr, xk, n as i64).unwrap();
        cs.binop(BinOp::Add, addr, addr, xj).unwrap();
        cs.get(kj, addr, len).unwrap();
        // path[i][j].len <?= ik + kj, minimised over k by the router.
        cs.binop(BinOp::Add, ik, ik, kj).unwrap();
        cs.send(len, out_addr, ik, Combine::Min).unwrap();
    }
    let cycles = cs.cycles();
    (cs.read(len).unwrap(), cycles)
}

/// The grid-goal relaxation of §5 (Figure 8's parallel series), written
/// in the C\* style: one instance per cell, NEWS-neighbour reads, iterate
/// until the global fixed point. Returns `(distances, cycles, sweeps)`.
///
/// `walls` marks disconnected cells; the goal is cell (0, 0). `dmax` is
/// the "unreached" sentinel.
pub fn grid_goal(
    rows: usize,
    cols: usize,
    walls: &[bool],
    dmax: i64,
    phys_procs: usize,
) -> (Vec<i64>, u64, usize) {
    assert_eq!(walls.len(), rows * cols);
    let mut cs = CStar::new(phys_procs);
    let grid = cs.domain("GRID", &[rows, cols]).unwrap();
    let a = cs.int_member(grid, "a").unwrap();
    let init: Vec<i64> = (0..rows * cols)
        .map(|p| {
            if p == 0 {
                0
            } else if walls[p] {
                dmax * 2
            } else {
                dmax
            }
        })
        .collect();
    cs.write(a, init).unwrap();

    cs.reset_clock();
    let m = cs.int_member(grid, "m").unwrap();
    let t = cs.int_member(grid, "t").unwrap();
    let better = cs.bool_member(grid, "better").unwrap();
    let wall = cs.bool_member(grid, "wall").unwrap();
    let goal = cs.bool_member(grid, "goal").unwrap();
    // Static masks: wall cells and the goal never update.
    // wall = (a >= 2*dmax) at start; goal = self_address == 0.
    let sa = cs.int_member(grid, "sa").unwrap();
    cs.self_address(sa).unwrap();
    cs.cmp_imm_into(goal, sa, 0).unwrap();
    cs.cmp_ge_imm_into(wall, a, dmax * 2).unwrap();
    cs.free(sa).unwrap();

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        // m = min of the four NEWS neighbours (off-grid reads give INF).
        cs.news_min(m, t, a).unwrap();
        // t = m + 1; better = !wall && !goal && t < a
        cs.binop_imm(BinOp::Add, t, m, 1).unwrap();
        cs.lt_into(better, t, a).unwrap();
        cs.andnot(better, wall).unwrap();
        cs.andnot(better, goal).unwrap();
        let any = cs.any(better).unwrap();
        if !any {
            break;
        }
        cs.where_(grid, better, |cs| cs.assign(a, t)).unwrap();
        if sweeps > 4 * (rows + cols) {
            break; // safety net; convergence takes ≤ diameter sweeps
        }
    }
    let cycles = cs.cycles();
    (cs.read(a).unwrap(), cycles, sweeps)
}

/// Ranksort in C\* (§3.4's UC example, hand-translated): each instance
/// counts the keys smaller than its own through an all-to-all of gathers,
/// then scatters its key to its rank. Keys must be distinct. Returns
/// `(sorted, cycles)`.
pub fn ranksort(keys: &[i64], phys_procs: usize) -> (Vec<i64>, u64) {
    let n = keys.len();
    let mut cs = CStar::new(phys_procs);
    let d = cs.domain("SORT", &[n]).unwrap();
    let key = cs.int_member(d, "key").unwrap();
    cs.write(key, keys.to_vec()).unwrap();

    cs.reset_clock();
    let rank = cs.int_member(d, "rank").unwrap();
    let other = cs.int_member(d, "other").unwrap();
    let addr = cs.int_member(d, "addr").unwrap();
    let less = cs.bool_member(d, "less").unwrap();
    let one = cs.int_member(d, "one").unwrap();
    cs.assign_imm(rank, 0).unwrap();
    // rank = #{ j : key[j] < key[i] } via n gather-and-compare rounds
    // (C* has no per-instance reduction; the UC compiler's combining send
    // is exactly what this loop spells out).
    for j in 0..n as i64 {
        cs.assign_imm(addr, j).unwrap();
        cs.get(other, addr, key).unwrap();
        cs.lt_into(less, other, key).unwrap();
        let less_int = one;
        // one = (other < key) as int; rank += one
        cs.convert_bool(less_int, less).unwrap();
        cs.binop(BinOp::Add, rank, rank, less_int).unwrap();
    }
    let sorted = cs.int_member(d, "sorted").unwrap();
    cs.send(sorted, rank, key, Combine::Overwrite).unwrap();
    let cycles = cs.cycles();
    (cs.read(sorted).unwrap(), cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize) -> Vec<i64> {
        let mut d = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = if i == j { 0 } else { ((i * 7 + j * 13) % n + 1) as i64 };
            }
        }
        d
    }

    fn floyd(mut d: Vec<i64>, n: usize) -> Vec<i64> {
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i * n + k] + d[k * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        d
    }

    #[test]
    fn apsp_n2_matches_floyd_warshall() {
        for n in [4usize, 8, 11] {
            let d = graph(n);
            let (got, cycles) = apsp_n2(&d, n, 16 * 1024);
            assert_eq!(got, floyd(d, n), "n={n}");
            assert!(cycles > 0);
        }
    }

    #[test]
    fn apsp_n3_matches_floyd_warshall() {
        for n in [4usize, 8, 11] {
            let d = graph(n);
            let (got, cycles) = apsp_n3(&d, n, 16 * 1024);
            assert_eq!(got, floyd(d, n), "n={n}");
            assert!(cycles > 0);
        }
    }

    #[test]
    fn n3_does_fewer_rounds_but_bigger_spaces() {
        let n = 16usize;
        let d = graph(n);
        let (r2, _c2) = apsp_n2(&d, n, 16 * 1024);
        let (r3, _c3) = apsp_n3(&d, n, 16 * 1024);
        assert_eq!(r2, r3);
    }

    #[test]
    fn ranksort_sorts_distinct_keys() {
        let keys: Vec<i64> = (0..20).map(|i| (i * 13 + 5) % 20).collect();
        let (sorted, cycles) = ranksort(&keys, 16 * 1024);
        assert_eq!(sorted, (0..20).collect::<Vec<i64>>());
        assert!(cycles > 0);
    }

    #[test]
    fn grid_goal_distances() {
        let (rows, cols) = (8usize, 8usize);
        let walls = vec![false; rows * cols];
        let (d, cycles, sweeps) = grid_goal(rows, cols, &walls, 1 << 30, 16 * 1024);
        // Manhattan distances from (0,0) on an open grid.
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(d[r * cols + c], (r + c) as i64, "cell ({r},{c})");
            }
        }
        assert!(cycles > 0);
        assert!(sweeps >= rows + cols - 2);
    }

    #[test]
    fn grid_goal_routes_around_walls() {
        // A vertical wall with a gap at the bottom.
        let (rows, cols) = (6usize, 6usize);
        let mut walls = vec![false; rows * cols];
        for r in 0..rows - 1 {
            walls[r * cols + 3] = true;
        }
        let (d, _cycles, _sweeps) = grid_goal(rows, cols, &walls, 1 << 30, 16 * 1024);
        // Cell (0,4) must detour below the wall: 0→(5,2)…(5,4)→(0,4).
        let direct = 4;
        assert!(d[4] > direct, "wall must lengthen the path, got {}", d[4]);
        // Its distance equals the detour: down to row 5, across, back up.
        assert_eq!(d[4], (5 + 4 + 5) as i64);
        // Wall cells keep their sentinel.
        assert!(d[3] >= (1 << 30));
    }
}
