//! Field-slot and scratch-arena leak regression tests.
//!
//! `Machine::free` must actually retire a field: its slot goes back on the
//! VP set's free list and its storage back to the scratch arena, so an
//! alloc/free loop — the shape of every `par` statement the UC executor
//! runs — keeps both the live-field count and the arena bounded no matter
//! how many iterations execute.

use uc_cm::news::Border;
use uc_cm::{BinOp, Combine, Machine, ReduceOp, Scalar};

#[test]
fn alloc_free_loop_reuses_slots_and_storage() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[1024]).unwrap();
    let keep = m.alloc_int(vp, "keep").unwrap();
    m.iota(keep).unwrap();
    let base_live = m.live_fields();

    let mut pooled_after_warmup = None;
    for round in 0..100 {
        let a = m.alloc_int(vp, "a").unwrap();
        let f = m.alloc_float(vp, "f").unwrap();
        let b = m.alloc_bool(vp, "b").unwrap();
        assert_eq!(m.live_fields(), base_live + 3);

        m.rand_int(a, 50, round).unwrap();
        m.convert(f, a).unwrap();
        m.binop(BinOp::Lt, b, a, keep).unwrap();

        m.free(b).unwrap();
        m.free(f).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.live_fields(), base_live, "free must release the slot");

        // After the first round the arena has seen every storage type; the
        // pool must neither grow (leak) nor shrink (failure to retire) from
        // then on.
        match pooled_after_warmup {
            None => pooled_after_warmup = Some(m.scratch_pooled()),
            Some(p) => assert_eq!(
                m.scratch_pooled(),
                p,
                "arena pool drifted in round {round}: storage is leaking"
            ),
        }
    }
}

#[test]
fn scratch_high_water_is_bounded_by_op_shape() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[512]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    let addr = m.alloc_int(vp, "addr").unwrap();
    m.iota(addr).unwrap();
    m.binop_imm_l(BinOp::Sub, addr, Scalar::Int(511), addr).unwrap();

    // Hammer the aliased (checkout-heavy) paths; the high-water mark is set
    // by the widest single op, not by the iteration count.
    let mut high_water_after_warmup = None;
    for _ in 0..50 {
        m.iota(a).unwrap();
        m.binop(BinOp::Add, a, a, a).unwrap();
        m.news_shift(a, a, 0, 1, Border::Wrap).unwrap();
        m.scan(a, a, ReduceOp::Add, true, None).unwrap();
        m.send(a, addr, a, Combine::Overwrite).unwrap();
        m.get(a, addr, a).unwrap();
        match high_water_after_warmup {
            None => high_water_after_warmup = Some(m.scratch_high_water()),
            Some(hw) => assert_eq!(
                m.scratch_high_water(),
                hw,
                "high-water mark kept climbing: checkouts are not returned"
            ),
        }
    }
    // Each op checks out at most a hit-buffer plus one alias copy.
    assert!(
        m.scratch_high_water() <= 4,
        "high-water mark {} exceeds the widest op's needs",
        m.scratch_high_water()
    );
}

#[test]
fn freed_fields_reject_further_use() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[16]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    m.free(a).unwrap();
    assert!(m.iota(a).is_err(), "stale id must not reach recycled storage");
    assert!(m.free(a).is_err(), "double free must fail");

    // The slot itself is recycled by the next allocation.
    let live = m.live_fields();
    let b = m.alloc_int(vp, "b").unwrap();
    assert_eq!(m.live_fields(), live + 1);
    m.iota(b).unwrap();
    assert_eq!(m.int_data(b).unwrap()[15], 15);
}
