//! Zero-allocation proof for the warmed hot paths.
//!
//! The simulator's steady-state claim (see `machine.rs` module docs) is that
//! once every scratch buffer, field slot, and context mask has been through
//! one warm-up round, the router / scan / NEWS / elementwise paths perform
//! **zero** heap allocations. This test installs a counting global allocator
//! and runs a chain covering every hot operation — including the in-place
//! (`dst` aliases a source) variants that check a copy out of the arena —
//! twice to warm the pools, then asserts the third pass allocates nothing.
//!
//! The guarantee is proved on **both sides of `par::PAR_THRESHOLD`**: a
//! 64 × 64 VP set keeps every data-parallel helper on its sequential path,
//! and a 128 × 128 VP set drives the chunked parallel paths, whose
//! bookkeeping lives in stack arrays (bounded by `par::MAX_CHUNKS`) and
//! whose pool dispatch queues `Copy` chunk descriptors — so a warm pool
//! allocates nothing at any thread count (`UC_THREADS=1` runs chunks
//! inline; larger pools reuse the steady-state queue capacity).
//!
//! The tests live alone in this file and serialize on a mutex so the
//! global allocation counter attributes every count to the pass under
//! measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use uc_cm::news::Border;
use uc_cm::{BinOp, Combine, FieldId, Machine, ReduceOp, Scalar, UnOp, VpSetId};

/// Counts every allocation (fresh, zeroed, and growth reallocs); frees are
/// irrelevant to the claim and left uncounted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the measuring tests: the allocation counter is process-wide.
static MEASURE: Mutex<()> = Mutex::new(());

struct Fields {
    vp: VpSetId,
    a: FieldId,
    b: FieldId,
    c: FieldId,
    addr: FieldId,
    f: FieldId,
    g: FieldId,
    mask: FieldId,
    segs: FieldId,
    bits: FieldId,
}

fn setup(m: &mut Machine, dims: &[usize]) -> Fields {
    let vp = m.new_vp_set("grid", dims).unwrap();
    Fields {
        vp,
        a: m.alloc_int(vp, "a").unwrap(),
        b: m.alloc_int(vp, "b").unwrap(),
        c: m.alloc_int(vp, "c").unwrap(),
        addr: m.alloc_int(vp, "addr").unwrap(),
        f: m.alloc_float(vp, "f").unwrap(),
        g: m.alloc_float(vp, "g").unwrap(),
        mask: m.alloc_bool(vp, "mask").unwrap(),
        segs: m.alloc_bool(vp, "segs").unwrap(),
        bits: m.alloc_bool(vp, "bits").unwrap(),
    }
}

/// One full pass over every hot path on an `n`-element VP set. Field
/// contents are re-derived at the top so each pass is self-contained (in
/// particular the divisor is always non-zero).
fn chain(m: &mut Machine, x: &Fields, n: i64) -> uc_cm::Result<()> {
    // Elementwise ALU, including the dst-aliases-source variants.
    m.iota(x.a)?;
    m.axis_coord(x.b, 1)?;
    m.rand_int(x.c, 7, 0x5EED)?;
    m.binop_imm(BinOp::Add, x.c, x.c, Scalar::Int(1))?; // c in [1,7]: safe divisor
    m.binop(BinOp::Div, x.b, x.a, x.c)?;
    m.binop(BinOp::Add, x.a, x.a, x.b)?; // dst aliases operand
    m.binop(BinOp::BitAnd, x.b, x.a, x.c)?;
    m.binop_imm(BinOp::Shl, x.b, x.b, Scalar::Int(1))?;
    m.unop(UnOp::Neg, x.b, x.b)?; // in-place unop
    m.unop(UnOp::Abs, x.b, x.b)?;
    m.binop(BinOp::Lt, x.mask, x.b, x.a)?; // comparison makes a bool field
    m.binop(BinOp::LogAnd, x.bits, x.mask, x.bits)?; // dst aliases operand
    m.select(x.b, x.mask, x.a, x.c)?;
    m.convert(x.f, x.a)?; // int -> float
    m.convert(x.g, x.f)?; // identity cast (memcpy path)
    m.binop(BinOp::Mul, x.g, x.f, x.f)?;
    m.set_imm(x.f, Scalar::Float(1.5))?;
    m.copy(x.g, x.f)?;
    m.fill_unconditional(x.b, Scalar::Int(9))?;
    m.copy_unconditional(x.c, x.a)?;
    let _ = m.any_ne(x.a, x.c)?;
    m.read_context(x.bits)?;
    m.write_elem(x.a, 3, Scalar::Int(-5))?;
    let _ = m.read_elem(x.a, 3)?;

    // Context push/pop (the mask has both true and false bits: i = 0 fails
    // the Lt above).
    m.push_context(x.mask)?;
    m.binop_imm(BinOp::Add, x.a, x.a, Scalar::Int(1))?;
    let _ = m.active_count(x.vp)?;
    m.pop_context(x.vp)?;
    m.push_context_others(x.mask)?;
    let _ = m.any_active(x.vp)?;
    m.pop_context(x.vp)?;

    // NEWS shifts, every border policy, plus in-place.
    m.news_shift(x.b, x.a, 0, 1, Border::Wrap)?;
    m.news_shift(x.b, x.a, 1, -1, Border::Fill(Scalar::Int(0)))?;
    m.news_shift(x.b, x.b, 0, 1, Border::Keep)?;

    // Router sends and gets through the reversal permutation.
    m.iota(x.addr)?;
    m.binop_imm_l(BinOp::Sub, x.addr, Scalar::Int(n - 1), x.addr)?;
    m.send(x.b, x.addr, x.a, Combine::Add)?;
    let _ = m.send_detect(x.b, x.addr, x.a, Combine::Max)?;
    m.send(x.a, x.addr, x.a, Combine::Overwrite)?; // src aliases dst
    m.send(x.bits, x.addr, x.mask, Combine::Or)?; // bool combiner
    m.get(x.c, x.addr, x.a)?;
    m.get(x.a, x.addr, x.a)?; // src aliases dst

    // Scans and reductions: plain, segmented, in-place, bool, float.
    m.rand_int(x.c, 100, 0xBEEF)?;
    m.scan(x.b, x.c, ReduceOp::Add, true, None)?;
    m.scan(x.b, x.c, ReduceOp::Max, false, None)?;
    m.axis_coord(x.b, 1)?;
    m.binop_imm(BinOp::Eq, x.segs, x.b, Scalar::Int(0))?; // row starts
    m.scan(x.b, x.c, ReduceOp::Add, true, Some(x.segs))?;
    m.scan(x.c, x.c, ReduceOp::Add, false, None)?; // in-place scan
    m.scan(x.bits, x.mask, ReduceOp::Or, true, None)?;
    m.scan(x.g, x.f, ReduceOp::Add, false, None)?;
    let _ = m.reduce(x.c, ReduceOp::Add)?;
    let _ = m.reduce(x.f, ReduceOp::Max)?;
    let _ = m.reduce(x.mask, ReduceOp::Or)?;
    m.reduce_spread(x.g, x.f, ReduceOp::Add)?;

    // Field alloc/free cycles drawing on the arena's retired storage.
    let t = m.alloc_int(x.vp, "t")?;
    m.set_imm(t, Scalar::Int(5))?;
    m.free(t)?;
    let t = m.alloc_float(x.vp, "t")?;
    m.free(t)?;
    let t = m.alloc_bool(x.vp, "t")?;
    m.free(t)?;
    Ok(())
}

/// Warm the machine with two passes, then assert the third allocates
/// nothing.
fn assert_warmed_chain_allocates_nothing(dims: &[usize], label: &str) {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let n: i64 = dims.iter().product::<usize>() as i64;
    let mut m = Machine::with_defaults();
    let fields = setup(&mut m, dims);

    // Two warm-up passes: the first grows every pool to its steady-state
    // shape, the second confirms the pools have the right capacities before
    // we start counting.
    chain(&mut m, &fields, n).unwrap();
    chain(&mut m, &fields, n).unwrap();

    let before = ALLOCS.load(Ordering::SeqCst);
    chain(&mut m, &fields, n).unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "warmed router/scan/NEWS/ALU chain ({label}) must not touch the heap \
         ({} allocations counted)",
        after - before
    );

    // The chain really did exercise the arena's checkout paths.
    assert!(m.scratch_high_water() > 0, "aliased ops should draw on the arena");
}

/// 64 × 64 = 4096 elements: below `par::PAR_THRESHOLD`, every
/// data-parallel helper takes its sequential path.
#[test]
fn warmed_hot_paths_allocate_nothing() {
    assert_warmed_chain_allocates_nothing(&[64, 64], "sequential, 64x64");
}

/// 128 × 128 = 16384 elements: above `par::PAR_THRESHOLD`, the chunked
/// parallel paths run — chunk partials in stack arrays, chunk jobs as
/// unboxed descriptors on the pool — and still allocate nothing warm.
#[test]
fn warmed_parallel_hot_paths_allocate_nothing() {
    assert_warmed_chain_allocates_nothing(&[128, 128], "parallel, 128x128");
}
