//! Resource budgets: fuel, memory and wall-clock deadlines.
//!
//! Budget semantics under test:
//!
//! * fuel — spending *exactly* the budget succeeds; the first charge
//!   past it traps, and a zero budget traps on the first charged op;
//! * memory — live field + context bytes are charged before allocation
//!   and released on free, so budgets bound the high-water mark;
//! * deadline — armed per run, checked on every charged instruction and
//!   pollable without charging.

use uc_cm::{
    cost::OpClass, ops::BinOp, CmError, Machine, MachineConfig, MachineLimits, Scalar,
};

fn limited(fuel: Option<u64>, mem: Option<u64>) -> Machine {
    Machine::new(MachineConfig {
        limits: MachineLimits { fuel, max_mem_bytes: mem },
        ..MachineConfig::default()
    })
}

/// Cycles a fixed op sequence costs, measured on an unlimited machine.
fn sequence_cost() -> u64 {
    let mut m = Machine::with_defaults();
    run_sequence(&mut m).unwrap();
    m.cycles()
}

fn run_sequence(m: &mut Machine) -> uc_cm::Result<Scalar> {
    let vp = m.new_vp_set("v", &[256])?;
    let a = m.alloc_int(vp, "a")?;
    m.iota(a)?;
    m.binop_imm(BinOp::Mul, a, a, 3.into())?;
    m.reduce(a, uc_cm::ReduceOp::Add)
}

#[test]
fn exact_fuel_budget_succeeds() {
    let cost = sequence_cost();
    let mut m = limited(Some(cost), None);
    let s = run_sequence(&mut m).expect("spending exactly the budget is fine");
    assert_eq!(s, Scalar::Int((0..256).map(|i| 3 * i).sum()));
    assert_eq!(m.cycles(), cost);
}

#[test]
fn one_cycle_under_budget_traps() {
    let cost = sequence_cost();
    let mut m = limited(Some(cost - 1), None);
    let err = run_sequence(&mut m).expect_err("one cycle short must trap");
    assert_eq!(err, CmError::FuelExhausted { limit: cost - 1 });
    assert!(err.is_budget());
    assert!(err.to_string().contains("budget exceeded"), "{err}");
}

#[test]
fn zero_fuel_traps_on_first_charged_op() {
    let mut m = limited(Some(0), None);
    let err = run_sequence(&mut m).expect_err("zero budget");
    assert!(matches!(err, CmError::FuelExhausted { limit: 0 }));
}

#[test]
fn set_fuel_at_runtime() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[64]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    m.iota(a).unwrap();
    // Already over any tiny budget: the very next charged op traps.
    m.set_fuel(Some(1));
    let err = m.binop_imm(BinOp::Add, a, a, 1.into());
    assert!(matches!(err, Err(CmError::FuelExhausted { .. })), "{err:?}");
    // Lifting the budget un-wedges the machine.
    m.set_fuel(None);
    assert!(m.binop_imm(BinOp::Add, a, a, 1.into()).is_ok());
}

#[test]
fn memory_budget_blocks_allocation() {
    // 256 VPs: the base context mask costs 256 bytes, an int field 2048.
    let mut m = limited(None, Some(1024));
    let vp = m.new_vp_set("v", &[256]).expect("mask fits");
    let err = m.alloc_int(vp, "a").expect_err("2 KiB field over a 1 KiB budget");
    assert!(matches!(err, CmError::MemoryLimitExceeded { requested: 2048, .. }), "{err:?}");
    assert!(err.is_budget());
    assert!(err.to_string().contains("budget exceeded"), "{err}");
}

#[test]
fn freeing_releases_budget() {
    let mut m = limited(None, Some(4096));
    let vp = m.new_vp_set("v", &[256]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap(); // 256 + 2048 live
    assert!(m.alloc_int(vp, "b").is_err()); // +2048 would exceed
    m.free(a).unwrap();
    let b = m.alloc_int(vp, "b").expect("freed bytes are reusable");
    assert_eq!(m.mem_bytes(), 256 + 2048);
    m.free(b).unwrap();
    assert_eq!(m.mem_bytes(), 256);
}

#[test]
fn bool_fields_cost_one_byte_per_vp() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[100]).unwrap();
    let base = m.mem_bytes();
    let f = m.alloc_bool(vp, "f").unwrap();
    assert_eq!(m.mem_bytes() - base, 100);
    m.free(f).unwrap();
    assert_eq!(m.mem_bytes(), base);
}

#[test]
fn context_masks_are_charged_and_released() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[128]).unwrap();
    let mask = m.alloc_bool(vp, "m").unwrap();
    m.fill_unconditional(mask, Scalar::Bool(true)).unwrap();
    let before = m.mem_bytes();
    m.push_context(mask).unwrap();
    assert_eq!(m.mem_bytes() - before, 128);
    m.pop_context(vp).unwrap();
    assert_eq!(m.mem_bytes(), before);
}

#[test]
fn expired_deadline_traps_next_tick() {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[16]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    m.arm_deadline(0);
    std::thread::sleep(std::time::Duration::from_millis(2));
    let err = m.iota(a).expect_err("deadline passed");
    assert_eq!(err, CmError::DeadlineExceeded { timeout_ms: 0 });
    assert!(err.is_budget());
    assert!(err.to_string().contains("budget exceeded"), "{err}");
    assert!(m.poll_deadline().is_err());
    m.clear_deadline();
    assert!(m.poll_deadline().is_ok());
    assert!(m.iota(a).is_ok());
}

#[test]
fn unarmed_deadline_never_fires() {
    let m = Machine::with_defaults();
    assert!(m.poll_deadline().is_ok());
}

#[test]
fn fuel_checks_cover_every_op_class() {
    // Drive one op of each class on a fuel-0 machine that was granted
    // just enough to set up, then starved: every class must trap.
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[64, 64]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    let b = m.alloc_int(vp, "b").unwrap();
    m.iota(a).unwrap();
    m.set_fuel(Some(m.cycles()));
    // Clock == fuel: everything charged from here on is over budget.
    for (what, err) in [
        ("alu", m.binop_imm(BinOp::Add, b, a, 1.into()).err()),
        ("news", m.news_shift(b, a, 0, 1, uc_cm::news::Border::Wrap).err()),
        ("scan", m.reduce(a, uc_cm::ReduceOp::Add).map(|_| ()).err()),
        ("front-end", m.read_elem(a, 0).map(|_| ()).err()),
    ] {
        assert!(
            matches!(err, Some(CmError::FuelExhausted { .. })),
            "{what} must respect fuel, got {err:?}"
        );
    }
    let cost = uc_cm::cost::CostModel::default();
    assert_eq!(
        cost.charge(OpClass::FrontEnd, 1, 16),
        cost.charge(OpClass::FrontEnd, 1 << 20, 16),
        "front-end charges are flat"
    );
}
