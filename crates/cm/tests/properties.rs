//! Property-based tests of the simulator's core invariants.

use proptest::prelude::*;
use uc_cm::{news::Border, BinOp, Combine, FieldData, Geometry, Machine, ReduceOp, Scalar};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Geometry address/coordinate are mutual inverses for any shape.
    #[test]
    fn geometry_roundtrip(dims in prop::collection::vec(1usize..6, 1..4)) {
        let g = Geometry::new(&dims).unwrap();
        for addr in 0..g.size() {
            let c = g.coordinate(addr).unwrap();
            prop_assert_eq!(g.address(&c), Some(addr));
            for (axis, &coord) in c.iter().enumerate() {
                prop_assert_eq!(g.axis_coordinate(addr, axis).unwrap(), coord);
            }
        }
    }

    /// Toroidal neighbours compose: +k then -k is the identity.
    #[test]
    fn wrap_neighbors_invert(dims in prop::collection::vec(1usize..6, 1..3),
                             offset in -7i64..7) {
        let g = Geometry::new(&dims).unwrap();
        for addr in 0..g.size() {
            for axis in 0..g.rank() {
                let there = g.neighbor_wrap(addr, axis, offset).unwrap();
                let back = g.neighbor_wrap(there, axis, -offset).unwrap();
                prop_assert_eq!(back, addr);
            }
        }
    }

    /// A router send along a permutation delivers exactly the permuted
    /// data (no loss, no duplication).
    #[test]
    fn router_permutation(perm in prop::collection::vec(0usize..32, 2..32)) {
        // Make `perm` a permutation of 0..n.
        let n = perm.len();
        let mut p: Vec<usize> = (0..n).collect();
        for (k, &r) in perm.iter().enumerate() {
            p.swap(k, r % n);
        }
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        let data: Vec<i64> = (0..n as i64).map(|x| x * 10 + 1).collect();
        m.write_all(src, FieldData::I64(data.clone())).unwrap();
        m.write_all(addr, FieldData::I64(p.iter().map(|&x| x as i64).collect())).unwrap();
        let conflict = m.send_detect(dst, addr, src, Combine::Overwrite).unwrap();
        prop_assert!(!conflict, "permutation cannot collide");
        let out = match m.read_all(dst).unwrap() {
            FieldData::I64(v) => v,
            _ => unreachable!(),
        };
        for i in 0..n {
            prop_assert_eq!(out[p[i]], data[i]);
        }
    }

    /// get(send(x)) round-trips through any permutation.
    #[test]
    fn gather_inverts_scatter(perm in prop::collection::vec(0usize..24, 2..24)) {
        let n = perm.len();
        let mut p: Vec<usize> = (0..n).collect();
        for (k, &r) in perm.iter().enumerate() {
            p.swap(k, r % n);
        }
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let mid = m.alloc_int(vp, "mid").unwrap();
        let back = m.alloc_int(vp, "back").unwrap();
        let data: Vec<i64> = (0..n as i64).map(|x| 7 - 3 * x).collect();
        m.write_all(src, FieldData::I64(data.clone())).unwrap();
        m.write_all(addr, FieldData::I64(p.iter().map(|&x| x as i64).collect())).unwrap();
        m.send(mid, addr, src, Combine::Overwrite).unwrap();
        m.get(back, addr, mid).unwrap();
        prop_assert_eq!(m.read_all(back).unwrap(), FieldData::I64(data));
    }

    /// Machine reductions equal sequential folds under arbitrary masks.
    #[test]
    fn reduce_equals_fold(data in prop::collection::vec(-100i64..100, 1..64),
                          mask in prop::collection::vec(any::<bool>(), 1..64)) {
        let n = data.len().min(mask.len());
        let data = &data[..n];
        let mask = &mask[..n];
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let mk = m.alloc_bool(vp, "m").unwrap();
        m.write_all(a, FieldData::I64(data.to_vec())).unwrap();
        m.write_all(mk, FieldData::Bool(mask.to_vec())).unwrap();
        m.push_context(mk).unwrap();
        let active: Vec<i64> =
            data.iter().zip(mask).filter(|(_, &m)| m).map(|(&x, _)| x).collect();
        prop_assert_eq!(
            m.reduce(a, ReduceOp::Add).unwrap().as_int(),
            active.iter().sum::<i64>()
        );
        prop_assert_eq!(
            m.reduce(a, ReduceOp::Min).unwrap().as_int(),
            active.iter().min().copied().unwrap_or(i64::MAX)
        );
        prop_assert_eq!(
            m.reduce(a, ReduceOp::Max).unwrap().as_int(),
            active.iter().max().copied().unwrap_or(i64::MIN)
        );
        m.pop_context(vp).unwrap();
    }

    /// Inclusive scan equals the running fold; exclusive is the shifted
    /// variant.
    #[test]
    fn scan_equals_running_fold(data in prop::collection::vec(-50i64..50, 1..48)) {
        let n = data.len();
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        m.write_all(a, FieldData::I64(data.clone())).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        let mut acc = 0i64;
        let incl: Vec<i64> = data.iter().map(|&x| { acc += x; acc }).collect();
        prop_assert_eq!(m.read_all(d).unwrap(), FieldData::I64(incl.clone()));
        m.scan(d, a, ReduceOp::Add, false, None).unwrap();
        let excl: Vec<i64> =
            std::iter::once(0).chain(incl[..n - 1].iter().copied()).collect();
        prop_assert_eq!(m.read_all(d).unwrap(), FieldData::I64(excl));
    }

    /// NEWS shift with wrap equals index rotation.
    #[test]
    fn news_wrap_is_rotation(data in prop::collection::vec(-50i64..50, 2..32),
                             offset in -5i64..5) {
        let n = data.len();
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        m.write_all(a, FieldData::I64(data.clone())).unwrap();
        m.news_shift(d, a, 0, offset, Border::Wrap).unwrap();
        let expect: Vec<i64> = (0..n)
            .map(|i| data[(i as i64 + offset).rem_euclid(n as i64) as usize])
            .collect();
        prop_assert_eq!(m.read_all(d).unwrap(), FieldData::I64(expect));
    }

    /// The cycle clock is deterministic: the same op sequence charges the
    /// same cycles regardless of the data.
    #[test]
    fn clock_is_data_independent(a_data in prop::collection::vec(-9i64..9, 8..9),
                                 b_data in prop::collection::vec(-9i64..9, 8..9)) {
        let run = |data: &[i64]| -> u64 {
            let mut m = Machine::with_defaults();
            let vp = m.new_vp_set("v", &[8]).unwrap();
            let a = m.alloc_int(vp, "a").unwrap();
            let b = m.alloc_int(vp, "b").unwrap();
            m.write_all(a, FieldData::I64(data.to_vec())).unwrap();
            m.binop(BinOp::Add, b, a, a).unwrap();
            m.binop_imm(BinOp::Mul, b, b, Scalar::Int(3)).unwrap();
            m.reduce(b, ReduceOp::Max).unwrap();
            m.cycles()
        };
        prop_assert_eq!(run(&a_data), run(&b_data));
    }
}

/// SplitMix64 — a self-contained generator so the reference data below
/// does not depend on the machine's own `rand_int`.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Fields big enough to cross `par::PAR_THRESHOLD` take the parallel
// branch of every wired hot path; these properties pin parallel results
// to sequential references computed inline. Sizes straddle the threshold
// (just below, at, and above) so both branches and the boundary itself
// are exercised. Fewer cases than above — each case moves ~16k elements.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Router send with random (colliding) addresses equals a sequential
    /// sender-order loop, for every combining mode, on both sides of the
    /// parallel threshold.
    #[test]
    fn parallel_send_matches_sequential_reference(seed in 0u64..u64::MAX,
                                                  delta in 0usize..3) {
        let n = uc_cm::par::PAR_THRESHOLD - 1 + delta * 2048;
        let dst_n = n / 4;
        let data: Vec<i64> = (0..n).map(|i| mix(seed, i as u64) as i64 % 1000).collect();
        let addrs: Vec<i64> = (0..n).map(|i| (mix(!seed, i as u64) % dst_n as u64) as i64).collect();
        for combine in [Combine::Overwrite, Combine::Add, Combine::Min, Combine::Max] {
            let mut m = Machine::with_defaults();
            let vp = m.new_vp_set("senders", &[n]).unwrap();
            let dvp = m.new_vp_set("receivers", &[dst_n]).unwrap();
            let src = m.alloc_int(vp, "s").unwrap();
            let addr = m.alloc_int(vp, "a").unwrap();
            let dst = m.alloc_int(dvp, "d").unwrap();
            m.write_all(src, FieldData::I64(data.clone())).unwrap();
            m.write_all(addr, FieldData::I64(addrs.clone())).unwrap();
            m.fill_unconditional(dst, Scalar::Int(-1)).unwrap();
            m.send(dst, addr, src, combine).unwrap();

            let mut expect = vec![-1i64; dst_n];
            let mut hit = vec![false; dst_n];
            for (&v, &a) in data.iter().zip(&addrs) {
                let a = a as usize;
                expect[a] = if !hit[a] {
                    v
                } else {
                    match combine {
                        Combine::Overwrite => v,
                        Combine::Add => expect[a] + v,
                        Combine::Min => expect[a].min(v),
                        Combine::Max => expect[a].max(v),
                        _ => unreachable!(),
                    }
                };
                hit[a] = true;
            }
            prop_assert_eq!(m.read_all(dst).unwrap(), FieldData::I64(expect));
        }
    }

    /// Router get through random addresses equals direct indexing above
    /// and below the threshold, and leaves masked-off VPs untouched.
    #[test]
    fn parallel_get_matches_direct_indexing(seed in 0u64..u64::MAX,
                                            delta in 0usize..3) {
        let n = uc_cm::par::PAR_THRESHOLD - 1 + delta * 2048;
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let table = m.alloc_int(vp, "t").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let out = m.alloc_int(vp, "o").unwrap();
        let mk = m.alloc_bool(vp, "m").unwrap();
        let data: Vec<i64> = (0..n).map(|i| mix(seed, i as u64) as i64 % 9973).collect();
        let addrs: Vec<i64> = (0..n).map(|i| (mix(!seed, i as u64) % n as u64) as i64).collect();
        let mask: Vec<bool> = (0..n).map(|i| !mix(seed ^ 0xA5A5, i as u64).is_multiple_of(4)).collect();
        m.write_all(table, FieldData::I64(data.clone())).unwrap();
        m.write_all(addr, FieldData::I64(addrs.clone())).unwrap();
        m.write_all(mk, FieldData::Bool(mask.clone())).unwrap();
        m.fill_unconditional(out, Scalar::Int(-3)).unwrap();
        m.push_context(mk).unwrap();
        m.get(out, addr, table).unwrap();
        m.pop_context(vp).unwrap();
        let expect: Vec<i64> = (0..n)
            .map(|i| if mask[i] { data[addrs[i] as usize] } else { -3 })
            .collect();
        prop_assert_eq!(m.read_all(out).unwrap(), FieldData::I64(expect));
    }

    /// The blocked two-pass parallel scan equals the running fold at
    /// sizes just below, at, and above the parallel threshold.
    #[test]
    fn parallel_scan_matches_running_fold(seed in 0u64..u64::MAX,
                                          delta in 0usize..5) {
        let n = uc_cm::par::PAR_THRESHOLD - 2 + delta;
        let data: Vec<i64> = (0..n).map(|i| mix(seed, i as u64) as i64 % 100).collect();
        let mask: Vec<bool> = (0..n).map(|i| !mix(!seed, i as u64).is_multiple_of(3)).collect();
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        let mk = m.alloc_bool(vp, "m").unwrap();
        m.write_all(a, FieldData::I64(data.clone())).unwrap();
        m.write_all(mk, FieldData::Bool(mask.clone())).unwrap();
        m.fill_unconditional(d, Scalar::Int(0)).unwrap();
        m.push_context(mk).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        m.pop_context(vp).unwrap();
        let mut acc = 0i64;
        let expect: Vec<i64> = (0..n)
            .map(|i| if mask[i] { acc += data[i]; acc } else { 0 })
            .collect();
        prop_assert_eq!(m.read_all(d).unwrap(), FieldData::I64(expect));

        prop_assert_eq!(
            m.reduce(a, ReduceOp::Add).unwrap().as_int(),
            data.iter().sum::<i64>()
        );
    }

    /// Elementwise chains above the threshold equal the scalar loop.
    #[test]
    fn parallel_elementwise_matches_scalar_loop(seed in 0u64..u64::MAX) {
        let n = uc_cm::par::PAR_THRESHOLD + 517;
        let av: Vec<i64> = (0..n).map(|i| mix(seed, i as u64) as i64 % 500 - 250).collect();
        let bv: Vec<i64> = (0..n).map(|i| mix(!seed, i as u64) as i64 % 500 - 250).collect();
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        let c = m.alloc_int(vp, "c").unwrap();
        m.write_all(a, FieldData::I64(av.clone())).unwrap();
        m.write_all(b, FieldData::I64(bv.clone())).unwrap();
        m.binop(BinOp::Mul, c, a, b).unwrap();
        m.binop(BinOp::Max, c, c, a).unwrap();
        m.binop_imm(BinOp::Add, c, c, Scalar::Int(13)).unwrap();
        let expect: Vec<i64> =
            av.iter().zip(&bv).map(|(&x, &y)| (x * y).max(x) + 13).collect();
        prop_assert_eq!(m.read_all(c).unwrap(), FieldData::I64(expect));
    }
}
