//! # uc-cm — a deterministic Connection Machine (CM-2) simulator
//!
//! The UC paper (Bagrodia, Chandy & Kwan, SC 1990) was evaluated on a 16K
//! Thinking Machines CM-2: a SIMD machine in which a front-end computer
//! broadcasts macro-instructions to a sea of processing elements, each with
//! its own local memory and a one-bit *context flag* that decides whether it
//! participates in the current instruction. The CM presents *virtual
//! processors* (VPs): a program may request more processors than physically
//! exist and the hardware time-slices each physical processor over
//! `ceil(V/P)` virtual ones (the *VP ratio*).
//!
//! This crate is a faithful, deterministic software model of that execution
//! substrate:
//!
//! * [`Machine`] — the front end plus PE array; owns every VP set, charges
//!   every operation to a cycle [`cost::CostModel`], and exposes the clock.
//! * [`geometry::Geometry`] — n-dimensional VP-set shapes with row-major
//!   send addresses, mirroring CM geometries.
//! * [`field::Field`] — per-VP typed memory (`i64`, `f64`, `bool`).
//! * [`context`] — stacked activity masks (the CM context flag).
//! * [`ops`] — elementwise SIMD ALU operations.
//! * [`news`] — NEWS-grid nearest-neighbour shifts.
//! * [`router`] — the general router: arbitrary `send`/`get` with combining.
//! * [`scan`] — global reductions, prefix scans and segmented scans.
//!
//! Large element-wise operations execute on the host with rayon; everything
//! observable (values *and* the cycle clock) is independent of thread count,
//! so simulations are reproducible.
//!
//! ## Example
//!
//! ```
//! use uc_cm::{Machine, ops::BinOp, scan::ReduceOp, Scalar};
//!
//! let mut m = Machine::with_defaults();
//! let vp = m.new_vp_set("v", &[1024]).unwrap();
//! let a = m.alloc_int(vp, "a").unwrap();
//! m.iota(a).unwrap();                       // a[i] = i
//! m.binop_imm(BinOp::Mul, a, a, 2.into()).unwrap();  // a[i] *= 2
//! let s = m.reduce(a, ReduceOp::Add).unwrap();
//! assert_eq!(s, Scalar::Int((0..1024).map(|i| 2 * i).sum()));
//! assert!(m.cycles() > 0);
//! ```

pub mod context;
pub mod cost;
pub mod field;
pub mod geometry;
pub mod machine;
pub mod news;
pub mod ops;
pub mod par;
pub mod router;
pub mod scan;

pub use field::{ElemType, Field, FieldData, FieldId};
pub use geometry::Geometry;
pub use machine::{Machine, MachineConfig, MachineLimits, VpSetId};
pub use ops::{BinOp, UnOp};
pub use router::Combine;
pub use scan::ReduceOp;

/// A scalar value living on the front-end computer.
///
/// Front-end scalars are what reductions produce and what broadcasts
/// consume. `Bool` models the CM's one-bit test results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Scalar {
    /// The scalar as an `i64`, coercing `Bool` to 0/1 and truncating floats.
    pub fn as_int(self) -> i64 {
        match self {
            Scalar::Int(i) => i,
            Scalar::Float(f) => f as i64,
            Scalar::Bool(b) => b as i64,
        }
    }

    /// The scalar as an `f64`.
    pub fn as_float(self) -> f64 {
        match self {
            Scalar::Int(i) => i as f64,
            Scalar::Float(f) => f,
            Scalar::Bool(b) => (b as i64) as f64,
        }
    }

    /// The scalar as a truth value (non-zero is true, C-style).
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::Int(i) => i != 0,
            Scalar::Float(f) => f != 0.0,
            Scalar::Bool(b) => b,
        }
    }

    /// The element type this scalar would occupy in a field.
    pub fn elem_type(self) -> ElemType {
        match self {
            Scalar::Int(_) => ElemType::Int,
            Scalar::Float(_) => ElemType::Float,
            Scalar::Bool(_) => ElemType::Bool,
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}
impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

/// Errors raised by the simulator.
///
/// These model front-end runtime errors: shape mismatches, type confusion,
/// router addresses outside the destination VP set, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmError {
    /// A field id was used with a machine that never allocated it.
    UnknownField,
    /// A VP-set id was used with a machine that never created it.
    UnknownVpSet,
    /// Two operands live on different VP sets but the op needs one set.
    VpSetMismatch,
    /// An operand had the wrong element type for the operation.
    TypeMismatch { expected: ElemType, found: ElemType },
    /// A router address was outside the destination VP set.
    AddressOutOfRange { addr: i64, size: usize },
    /// A geometry axis index was out of range.
    AxisOutOfRange { axis: usize, rank: usize },
    /// A geometry had a zero-sized dimension or no dimensions.
    BadGeometry,
    /// Division or modulus by zero inside a SIMD op.
    DivideByZero,
    /// Popping the base (all-active) context.
    ContextUnderflow,
    /// Scalar access outside the VP set.
    IndexOutOfRange { index: usize, size: usize },
    /// Operation is not defined for this element type (e.g. float shl).
    Unsupported(&'static str),
    /// The machine's cycle budget (fuel) ran out.
    FuelExhausted { limit: u64 },
    /// An allocation would push live field/context storage over the
    /// memory budget.
    MemoryLimitExceeded { requested: u64, limit: u64 },
    /// The armed wall-clock deadline passed.
    DeadlineExceeded { timeout_ms: u64 },
}

impl CmError {
    /// Whether this error is a resource-budget trap (fuel, memory or
    /// deadline) rather than a program fault. Budget traps are terminal:
    /// the machine stays over budget, so retrying the operation fails the
    /// same way.
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            CmError::FuelExhausted { .. }
                | CmError::MemoryLimitExceeded { .. }
                | CmError::DeadlineExceeded { .. }
        )
    }
}

impl std::fmt::Display for CmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmError::UnknownField => write!(f, "unknown field id"),
            CmError::UnknownVpSet => write!(f, "unknown VP set id"),
            CmError::VpSetMismatch => write!(f, "operands live on different VP sets"),
            CmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected:?}, found {found:?}")
            }
            CmError::AddressOutOfRange { addr, size } => {
                write!(f, "router address {addr} outside VP set of size {size}")
            }
            CmError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} geometry")
            }
            CmError::BadGeometry => write!(f, "geometry must have at least one nonzero dimension"),
            CmError::DivideByZero => write!(f, "divide by zero in SIMD operation"),
            CmError::ContextUnderflow => write!(f, "cannot pop the base context"),
            CmError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} outside VP set of size {size}")
            }
            CmError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            CmError::FuelExhausted { limit } => {
                write!(f, "cycle budget exceeded: fuel limit of {limit} cycles exhausted")
            }
            CmError::MemoryLimitExceeded { requested, limit } => {
                write!(
                    f,
                    "memory budget exceeded: {requested}-byte allocation over the \
                     {limit}-byte limit"
                )
            }
            CmError::DeadlineExceeded { timeout_ms } => {
                write!(f, "wall-clock budget exceeded: {timeout_ms} ms deadline passed")
            }
        }
    }
}

impl std::error::Error for CmError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_coercions() {
        assert_eq!(Scalar::Int(3).as_float(), 3.0);
        assert_eq!(Scalar::Float(2.5).as_int(), 2);
        assert!(Scalar::Int(1).as_bool());
        assert!(!Scalar::Float(0.0).as_bool());
        assert_eq!(Scalar::Bool(true).as_int(), 1);
        assert_eq!(Scalar::from(7i64), Scalar::Int(7));
        assert_eq!(Scalar::from(0.5f64), Scalar::Float(0.5));
        assert_eq!(Scalar::from(true), Scalar::Bool(true));
    }

    #[test]
    fn scalar_elem_types() {
        assert_eq!(Scalar::Int(0).elem_type(), ElemType::Int);
        assert_eq!(Scalar::Float(0.0).elem_type(), ElemType::Float);
        assert_eq!(Scalar::Bool(false).elem_type(), ElemType::Bool);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CmError::AddressOutOfRange { addr: 99, size: 10 };
        assert!(e.to_string().contains("99"));
        let e = CmError::TypeMismatch { expected: ElemType::Int, found: ElemType::Float };
        assert!(e.to_string().contains("Int"));
    }
}
