//! The machine: front end + processing-element array.
//!
//! [`Machine`] owns every VP set (geometry, context stack, fields), the
//! cycle clock and the instruction counters. All simulator operations are
//! methods on `Machine` (spread across `ops`, `news`, `router` and `scan`);
//! each one validates its operands, charges the cost model, and then
//! executes deterministically.
//!
//! # Split borrows: how hot paths avoid cloning
//!
//! The dominant per-step costs of any UC program are the router and scan
//! (the paper's §4 cost model), so those paths must not copy whole fields
//! just to satisfy the borrow checker. [`Machine::split_dst`] is the
//! split-borrow accessor every hot path uses: it partitions the machine's
//! storage *around* the destination field and returns
//!
//! * `&mut FieldData` for the destination, and
//! * a [`Peers`] view that resolves `&FieldData` for any *other* field
//!   (same or different VP set), the current context mask of any VP set,
//!   and any VP set's geometry — all borrowed, never cloned.
//!
//! The aliasing invariant: `Peers` refuses to resolve the destination
//! itself. An operation whose source *is* its destination (e.g.
//! `unop(Neg, d, d)`) first copies that one operand into a scratch buffer
//! ([`Machine::scratch_copy`]) and reads the copy. Because every alias is
//! by definition equal to the destination, at most one scratch copy is
//! ever needed per operation.
//!
//! # The scratch arena
//!
//! [`Scratch`] is a per-machine pool of typed buffers (`Vec<i64>`,
//! `Vec<f64>`, `Vec<bool>`, plus field-name `String`s). Hot paths check
//! buffers out (`take_*`) and return them (`put_*`) around each
//! operation; [`Machine::free`] retires a field's storage into the pool
//! and [`Machine::alloc`] draws from it. After a warm-up pass, the
//! steady-state `send`/`get`/scan/reduce/elementwise chain performs zero
//! heap allocations (enforced by the `alloc_count` integration test and a
//! CI leg). The arena is bounded: at most [`MAX_POOL`] parked buffers per
//! type, and [`Machine::scratch_high_water`] reports the peak number
//! checked out at once.

use crate::context::ContextStack;
use crate::cost::{CostModel, OpClass, OpCounters};
use crate::field::{ElemType, Field, FieldData, FieldId};
use crate::geometry::Geometry;
use crate::{CmError, Result};

/// Handle to a VP set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VpSetId(pub(crate) usize);

/// One virtual-processor set: a geometry, an activity-mask stack, and the
/// fields allocated on it. Freed field slots are reused.
#[derive(Debug)]
pub(crate) struct VpSet {
    pub(crate) name: String,
    pub(crate) geom: Geometry,
    pub(crate) context: ContextStack,
    pub(crate) fields: Vec<Option<Field>>,
    free_slots: Vec<usize>,
}

/// Retain at most this many parked buffers per element type (and at most
/// this many parked name strings), so a transient burst of allocations
/// cannot pin memory forever.
pub(crate) const MAX_POOL: usize = 32;

/// Reusable scratch storage shared by every hot path of one [`Machine`].
///
/// Buffers are checked out with `take_*` and returned with `put_*`; the
/// pool keeps their capacity alive so steady-state operations allocate
/// nothing. Freed field storage is retired here too, making
/// alloc/free-heavy executor code (e.g. `binop_imm` temporaries)
/// allocation-free after warm-up.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    ints: Vec<Vec<i64>>,
    floats: Vec<Vec<f64>>,
    bools: Vec<Vec<bool>>,
    names: Vec<String>,
    /// Data buffers currently checked out.
    outstanding: usize,
    /// Peak of `outstanding` over the machine's lifetime.
    high_water: usize,
}

impl Scratch {
    fn bump(&mut self) {
        self.outstanding += 1;
        self.high_water = self.high_water.max(self.outstanding);
    }

    /// Pick the pooled buffer whose capacity best fits `len`: the smallest
    /// one that already fits, else the largest (it grows once and then
    /// fits forever). Returns a cleared vector.
    fn take_vec<T>(pool: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
        let mut best: Option<usize> = None;
        for i in 0..pool.len() {
            best = Some(match best {
                None => i,
                Some(j) => {
                    let (ci, cj) = (pool[i].capacity(), pool[j].capacity());
                    match (ci >= len, cj >= len) {
                        (true, true) => {
                            if ci < cj {
                                i
                            } else {
                                j
                            }
                        }
                        (true, false) => i,
                        (false, true) => j,
                        (false, false) => {
                            if ci > cj {
                                i
                            } else {
                                j
                            }
                        }
                    }
                }
            });
        }
        let mut v = best.map(|i| pool.swap_remove(i)).unwrap_or_default();
        v.clear();
        v.reserve(len);
        v
    }

    fn put_vec<T>(pool: &mut Vec<Vec<T>>, v: Vec<T>) {
        if pool.len() < MAX_POOL {
            pool.push(v);
        }
    }

    /// Check out a `false`-initialised bool buffer of `len` elements.
    pub(crate) fn take_bools_zeroed(&mut self, len: usize) -> Vec<bool> {
        self.bump();
        let mut v = Self::take_vec(&mut self.bools, len);
        v.resize(len, false);
        v
    }

    pub(crate) fn put_bools(&mut self, v: Vec<bool>) {
        self.outstanding -= 1;
        Self::put_vec(&mut self.bools, v);
    }

    /// Zero-initialised storage of `ty` and `len`, drawn from the pool but
    /// *not* tracked as checked out: the new field owns it until
    /// [`Scratch::retire_field`] returns it.
    fn draw_field_data(&mut self, ty: ElemType, len: usize) -> FieldData {
        match ty {
            ElemType::Int => {
                let mut v = Self::take_vec(&mut self.ints, len);
                v.resize(len, 0);
                FieldData::I64(v)
            }
            ElemType::Float => {
                let mut v = Self::take_vec(&mut self.floats, len);
                v.resize(len, 0.0);
                FieldData::F64(v)
            }
            ElemType::Bool => {
                let mut v = Self::take_vec(&mut self.bools, len);
                v.resize(len, false);
                FieldData::Bool(v)
            }
        }
    }

    /// Check out a buffer holding a copy of `src` (the alias escape
    /// hatch: operations copy a source that *is* their destination).
    pub(crate) fn take_data_copy(&mut self, src: &FieldData) -> FieldData {
        self.bump();
        match src {
            FieldData::I64(s) => {
                let mut v = Self::take_vec(&mut self.ints, s.len());
                v.extend_from_slice(s);
                FieldData::I64(v)
            }
            FieldData::F64(s) => {
                let mut v = Self::take_vec(&mut self.floats, s.len());
                v.extend_from_slice(s);
                FieldData::F64(v)
            }
            FieldData::Bool(s) => {
                let mut v = Self::take_vec(&mut self.bools, s.len());
                v.extend_from_slice(s);
                FieldData::Bool(v)
            }
        }
    }

    /// Return a data buffer to the pool.
    pub(crate) fn put_data(&mut self, d: FieldData) {
        self.outstanding -= 1;
        match d {
            FieldData::I64(v) => Self::put_vec(&mut self.ints, v),
            FieldData::F64(v) => Self::put_vec(&mut self.floats, v),
            FieldData::Bool(v) => Self::put_vec(&mut self.bools, v),
        }
    }

    /// A field-name string with `name`'s contents, reusing pooled capacity.
    fn take_name(&mut self, name: &str) -> String {
        let mut s = self.names.pop().unwrap_or_default();
        s.clear();
        s.push_str(name);
        s
    }

    fn put_name(&mut self, s: String) {
        if self.names.len() < MAX_POOL {
            self.names.push(s);
        }
    }

    /// Retire a freed field: its name and storage both return to the pool.
    fn retire_field(&mut self, field: Field) {
        self.put_name(field.name);
        match field.data {
            FieldData::I64(v) => Self::put_vec(&mut self.ints, v),
            FieldData::F64(v) => Self::put_vec(&mut self.floats, v),
            FieldData::Bool(v) => Self::put_vec(&mut self.bools, v),
        }
    }

    fn pooled(&self) -> usize {
        self.ints.len() + self.floats.len() + self.bools.len()
    }
}

/// The shared-borrow side of a [`Machine::split_dst`] split: resolves any
/// field *other than the destination*, any VP set's current context mask,
/// and any VP set's geometry, for as long as the paired `&mut FieldData`
/// destination borrow lives.
pub(crate) struct Peers<'m> {
    below: &'m [VpSet],
    above: &'m [VpSet],
    dst_vp: usize,
    dst_index: usize,
    dset_fields_below: &'m [Option<Field>],
    dset_fields_above: &'m [Option<Field>],
    dset_context: &'m ContextStack,
    dset_geom: &'m Geometry,
}

impl<'m> Peers<'m> {
    fn set(&self, vp: VpSetId) -> Result<&'m VpSet> {
        if vp.0 < self.dst_vp {
            self.below.get(vp.0).ok_or(CmError::UnknownVpSet)
        } else {
            self.above
                .get(vp.0 - self.dst_vp - 1)
                .ok_or(CmError::UnknownVpSet)
        }
    }

    /// Borrow a source field's storage. The destination itself is
    /// unreachable by construction; callers de-alias via
    /// [`Machine::scratch_copy`] first, so hitting that arm is an internal
    /// bug surfaced as an error rather than unsoundness.
    pub(crate) fn src(&self, id: FieldId) -> Result<&'m FieldData> {
        let slot = if id.vp.0 == self.dst_vp {
            match id.index.cmp(&self.dst_index) {
                std::cmp::Ordering::Equal => {
                    return Err(CmError::Unsupported("internal: source aliases destination"))
                }
                std::cmp::Ordering::Less => self.dset_fields_below.get(id.index),
                std::cmp::Ordering::Greater => {
                    self.dset_fields_above.get(id.index - self.dst_index - 1)
                }
            }
        } else {
            self.set(id.vp)?.fields.get(id.index)
        };
        slot.and_then(|f| f.as_ref())
            .map(|f| &f.data)
            .ok_or(CmError::UnknownField)
    }

    /// Borrow the current activity mask of any VP set.
    pub(crate) fn mask(&self, vp: VpSetId) -> Result<&'m [bool]> {
        if vp.0 == self.dst_vp {
            Ok(self.dset_context.current())
        } else {
            Ok(self.set(vp)?.context.current())
        }
    }

    /// Borrow the geometry of any VP set.
    pub(crate) fn geom(&self, vp: VpSetId) -> Result<&'m Geometry> {
        if vp.0 == self.dst_vp {
            Ok(self.dset_geom)
        } else {
            Ok(&self.set(vp)?.geom)
        }
    }
}

/// Resource budgets the machine enforces while executing.
///
/// Every limit defaults to "unlimited" so library users (tests, benches)
/// see no behaviour change; the UC executor installs real budgets from
/// `ExecLimits`. Budget traps surface as [`CmError::FuelExhausted`] /
/// [`CmError::MemoryLimitExceeded`] / [`CmError::DeadlineExceeded`] and
/// are terminal: the machine stays over budget afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineLimits {
    /// Maximum simulated cycles the clock may accumulate (`None` =
    /// unlimited). Checked on every charged instruction.
    pub fuel: Option<u64>,
    /// Maximum bytes of live field + context-mask storage (`None` =
    /// unlimited). Charged before any storage is allocated, so a hostile
    /// geometry traps instead of OOMing the process.
    pub max_mem_bytes: Option<u64>,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of physical processors (the paper's machine had 16K).
    pub phys_procs: usize,
    /// Cycle charges per instruction class.
    pub cost: CostModel,
    /// Resource budgets (all unlimited by default).
    pub limits: MachineLimits,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            phys_procs: 16 * 1024,
            cost: CostModel::default(),
            limits: MachineLimits::default(),
        }
    }
}

/// Bytes of storage one element of `ty` occupies in a field.
#[inline]
fn elem_bytes(ty: ElemType) -> u64 {
    match ty {
        ElemType::Int | ElemType::Float => 8,
        ElemType::Bool => 1,
    }
}

/// The simulated Connection Machine.
#[derive(Debug)]
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) vpsets: Vec<VpSet>,
    pub(crate) scratch: Scratch,
    clock: u64,
    counters: OpCounters,
    /// `config.limits.fuel` with `u64::MAX` as the unlimited sentinel, so
    /// the per-tick check is a single always-valid comparison.
    fuel_limit: u64,
    /// `config.limits.max_mem_bytes`, same sentinel convention.
    mem_limit: u64,
    /// Live field + context-mask bytes currently accounted.
    mem_bytes: u64,
    /// Armed wall-clock deadline (instant, original timeout in ms).
    deadline: Option<(std::time::Instant, u64)>,
}

impl Machine {
    /// A machine with the default 16K-processor configuration.
    pub fn with_defaults() -> Self {
        Machine::new(MachineConfig::default())
    }

    /// A machine with an explicit configuration.
    pub fn new(config: MachineConfig) -> Self {
        let fuel_limit = config.limits.fuel.unwrap_or(u64::MAX);
        let mem_limit = config.limits.max_mem_bytes.unwrap_or(u64::MAX);
        Machine {
            config,
            vpsets: Vec::new(),
            scratch: Scratch::default(),
            clock: 0,
            counters: OpCounters::default(),
            fuel_limit,
            mem_limit,
            mem_bytes: 0,
            deadline: None,
        }
    }

    /// Replace the fuel budget (`None` = unlimited). The clock is *not*
    /// reset: fuel bounds total accumulated cycles.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.config.limits.fuel = fuel;
        self.fuel_limit = fuel.unwrap_or(u64::MAX);
    }

    /// Replace the memory budget (`None` = unlimited). Already-live
    /// storage keeps its accounting; only future allocations are checked.
    pub fn set_mem_limit(&mut self, max_mem_bytes: Option<u64>) {
        self.config.limits.max_mem_bytes = max_mem_bytes;
        self.mem_limit = max_mem_bytes.unwrap_or(u64::MAX);
    }

    /// Arm a wall-clock deadline `timeout_ms` from now. Every charged
    /// instruction checks it; use [`Machine::clear_deadline`] to disarm.
    pub fn arm_deadline(&mut self, timeout_ms: u64) {
        let d = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        self.deadline = Some((d, timeout_ms));
    }

    /// Disarm any armed wall-clock deadline.
    pub fn clear_deadline(&mut self) {
        self.deadline = None;
    }

    /// Check the armed deadline without charging any cycles. Front-end
    /// loops that issue no machine instructions call this each iteration
    /// so `--timeout-ms` still bounds them.
    pub fn poll_deadline(&self) -> Result<()> {
        if let Some((deadline, timeout_ms)) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(CmError::DeadlineExceeded { timeout_ms });
            }
        }
        Ok(())
    }

    /// Live field + context-mask bytes currently accounted against the
    /// memory budget.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Reserve `bytes` against the memory budget, trapping *before* any
    /// allocation happens.
    #[inline]
    fn charge_mem(&mut self, bytes: u64) -> Result<()> {
        let new = self.mem_bytes.saturating_add(bytes);
        if new > self.mem_limit {
            return Err(CmError::MemoryLimitExceeded { requested: bytes, limit: self.mem_limit });
        }
        self.mem_bytes = new;
        Ok(())
    }

    #[inline]
    fn release_mem(&mut self, bytes: u64) {
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
    }

    /// Number of physical processors.
    pub fn phys_procs(&self) -> usize {
        self.config.phys_procs
    }

    /// Elapsed cycles since construction (or the last [`Machine::reset_clock`]).
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Instruction counters by class.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Reset the clock and counters (e.g. to exclude setup from a timing).
    pub fn reset_clock(&mut self) {
        self.clock = 0;
        self.counters = OpCounters::default();
    }

    /// Charge one instruction of `class` issued to a VP set of `vp_size`,
    /// trapping when the charge exhausts the fuel budget or the armed
    /// wall-clock deadline has passed. With no budgets set this is one
    /// saturating add plus two never-taken branches — cheap enough for
    /// the zero-alloc hot paths (metering never allocates).
    #[inline]
    pub(crate) fn tick(&mut self, class: OpClass, vp_size: usize) -> Result<()> {
        self.clock = self
            .clock
            .saturating_add(self.config.cost.charge(class, vp_size, self.config.phys_procs));
        self.counters.bump(class);
        if self.clock > self.fuel_limit {
            return Err(CmError::FuelExhausted { limit: self.fuel_limit });
        }
        if let Some((deadline, timeout_ms)) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(CmError::DeadlineExceeded { timeout_ms });
            }
        }
        Ok(())
    }

    // ---- VP sets --------------------------------------------------------

    /// Create a VP set with the given geometry. The base context mask
    /// (one byte per VP) is charged against the memory budget *before*
    /// it is allocated, so a hostile geometry traps instead of OOMing.
    pub fn new_vp_set(&mut self, name: &str, dims: &[usize]) -> Result<VpSetId> {
        let geom = Geometry::new(dims)?;
        let size = geom.size();
        self.charge_mem(size as u64)?;
        self.vpsets.push(VpSet {
            name: name.to_string(),
            geom,
            context: ContextStack::new(size),
            fields: Vec::new(),
            free_slots: Vec::new(),
        });
        Ok(VpSetId(self.vpsets.len() - 1))
    }

    pub(crate) fn vp(&self, id: VpSetId) -> Result<&VpSet> {
        self.vpsets.get(id.0).ok_or(CmError::UnknownVpSet)
    }

    pub(crate) fn vp_mut(&mut self, id: VpSetId) -> Result<&mut VpSet> {
        self.vpsets.get_mut(id.0).ok_or(CmError::UnknownVpSet)
    }

    /// Number of virtual processors in a VP set.
    pub fn vp_size(&self, id: VpSetId) -> Result<usize> {
        Ok(self.vp(id)?.geom.size())
    }

    /// The geometry of a VP set.
    pub fn geometry(&self, id: VpSetId) -> Result<&Geometry> {
        Ok(&self.vp(id)?.geom)
    }

    /// Debug name of a VP set.
    pub fn vp_name(&self, id: VpSetId) -> Result<&str> {
        Ok(self.vp(id)?.name.as_str())
    }

    // ---- Split borrows and scratch --------------------------------------

    /// Split the machine's storage around `dst`: a mutable borrow of the
    /// destination field's data alongside a [`Peers`] view of everything
    /// else (see the module docs for the aliasing invariant).
    pub(crate) fn split_dst(&mut self, dst: FieldId) -> Result<(&mut FieldData, Peers<'_>)> {
        if dst.vp.0 >= self.vpsets.len() {
            return Err(CmError::UnknownVpSet);
        }
        let (below, rest) = self.vpsets.split_at_mut(dst.vp.0);
        let (dset, above) = rest.split_first_mut().expect("index checked");
        if dst.index >= dset.fields.len() {
            return Err(CmError::UnknownField);
        }
        let VpSet { ref mut fields, ref context, ref geom, .. } = *dset;
        let (fields_below, rest) = fields.split_at_mut(dst.index);
        let (dslot, fields_above) = rest.split_first_mut().expect("index checked");
        let dst_data = match dslot.as_mut() {
            Some(f) => &mut f.data,
            None => return Err(CmError::UnknownField),
        };
        Ok((
            dst_data,
            Peers {
                below,
                above,
                dst_vp: dst.vp.0,
                dst_index: dst.index,
                dset_fields_below: fields_below,
                dset_fields_above: fields_above,
                dset_context: context,
                dset_geom: geom,
            },
        ))
    }

    /// Copy field `id`'s data into a scratch buffer (the de-aliasing step
    /// for operations whose source is also their destination). Return the
    /// buffer with [`Scratch::put_data`] when done.
    pub(crate) fn scratch_copy(&mut self, id: FieldId) -> Result<FieldData> {
        let Machine { vpsets, scratch, .. } = self;
        let src = vpsets
            .get(id.vp.0)
            .ok_or(CmError::UnknownVpSet)?
            .fields
            .get(id.index)
            .and_then(|f| f.as_ref())
            .ok_or(CmError::UnknownField)?;
        Ok(scratch.take_data_copy(&src.data))
    }

    /// Peak number of scratch buffers checked out at once. Hot paths need
    /// at most a handful (one alias copy plus one or two working buffers),
    /// so a growing high-water mark indicates a scratch leak.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch.high_water
    }

    /// Number of buffers currently parked in the scratch pool (bounded by
    /// `MAX_POOL` per element type).
    pub fn scratch_pooled(&self) -> usize {
        self.scratch.pooled()
    }

    // ---- Fields ---------------------------------------------------------

    /// Allocate a zero-initialised field of `ty` on `vp`. Storage is drawn
    /// from the scratch pool when available, so alloc/free cycles settle
    /// into zero heap traffic.
    pub fn alloc(&mut self, vp: VpSetId, name: &str, ty: ElemType) -> Result<FieldId> {
        let len = self.vp(vp)?.geom.size();
        self.charge_mem((len as u64).saturating_mul(elem_bytes(ty)))?;
        let field = Field {
            name: self.scratch.take_name(name),
            data: self.scratch.draw_field_data(ty, len),
        };
        let set = self.vp_mut(vp)?;
        let index = if let Some(slot) = set.free_slots.pop() {
            set.fields[slot] = Some(field);
            slot
        } else {
            set.fields.push(Some(field));
            set.fields.len() - 1
        };
        Ok(FieldId { vp, index })
    }

    /// Allocate an integer field.
    pub fn alloc_int(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Int)
    }

    /// Allocate a float field.
    pub fn alloc_float(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Float)
    }

    /// Allocate a boolean (test/flag) field.
    pub fn alloc_bool(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Bool)
    }

    /// Free a field, making its slot reusable and retiring its storage to
    /// the scratch pool. Using the id afterwards yields
    /// [`CmError::UnknownField`].
    pub fn free(&mut self, id: FieldId) -> Result<()> {
        let Machine { vpsets, scratch, .. } = self;
        let set = vpsets.get_mut(id.vp.0).ok_or(CmError::UnknownVpSet)?;
        match set.fields.get_mut(id.index) {
            Some(slot @ Some(_)) => {
                let field = slot.take().expect("slot checked");
                set.free_slots.push(id.index);
                let bytes = (field.data.len() as u64).saturating_mul(elem_bytes(field.elem_type()));
                scratch.retire_field(field);
                self.release_mem(bytes);
                Ok(())
            }
            _ => Err(CmError::UnknownField),
        }
    }

    pub(crate) fn field(&self, id: FieldId) -> Result<&Field> {
        self.vp(id.vp)?
            .fields
            .get(id.index)
            .and_then(|f| f.as_ref())
            .ok_or(CmError::UnknownField)
    }

    pub(crate) fn field_mut(&mut self, id: FieldId) -> Result<&mut Field> {
        self.vp_mut(id.vp)?
            .fields
            .get_mut(id.index)
            .and_then(|f| f.as_mut())
            .ok_or(CmError::UnknownField)
    }

    /// Element type of a field.
    pub fn elem_type(&self, id: FieldId) -> Result<ElemType> {
        Ok(self.field(id)?.elem_type())
    }

    /// Number of live (allocated, un-freed) fields across all VP sets.
    /// Useful for leak tests: a well-behaved client's live count is
    /// bounded over repeated operations.
    pub fn live_fields(&self) -> usize {
        self.vpsets
            .iter()
            .map(|s| s.fields.iter().filter(|f| f.is_some()).count())
            .sum()
    }

    /// Borrow an int field's storage (front-end inspection; not charged).
    pub fn int_data(&self, id: FieldId) -> Result<&[i64]> {
        match &self.field(id)?.data {
            FieldData::I64(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Int, found: other.elem_type() })
            }
        }
    }

    /// Borrow a float field's storage (front-end inspection; not charged).
    pub fn float_data(&self, id: FieldId) -> Result<&[f64]> {
        match &self.field(id)?.data {
            FieldData::F64(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Float, found: other.elem_type() })
            }
        }
    }

    /// Borrow a bool field's storage (front-end inspection; not charged).
    pub fn bool_data(&self, id: FieldId) -> Result<&[bool]> {
        match &self.field(id)?.data {
            FieldData::Bool(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Bool, found: other.elem_type() })
            }
        }
    }

    /// Snapshot a field's storage (a front-end bulk read; charged as one
    /// front-end op per element).
    pub fn read_all(&mut self, id: FieldId) -> Result<FieldData> {
        let data = self.field(id)?.data.clone();
        self.tick(OpClass::FrontEnd, data.len())?;
        Ok(data)
    }

    /// Overwrite a field's storage wholesale (front-end bulk write). The
    /// data must match the field's type and the VP-set size. The context
    /// mask is *ignored*, like `write_elem`: this models front-end DMA.
    pub fn write_all(&mut self, id: FieldId, data: FieldData) -> Result<()> {
        let len = self.vp(id.vp)?.geom.size();
        let field = self.field(id)?;
        if field.elem_type() != data.elem_type() {
            return Err(CmError::TypeMismatch {
                expected: field.elem_type(),
                found: data.elem_type(),
            });
        }
        if data.len() != len {
            return Err(CmError::VpSetMismatch);
        }
        self.field_mut(id)?.data = data;
        self.tick(OpClass::FrontEnd, len)
    }

    // ---- Context --------------------------------------------------------

    /// Push `mask AND current` as the activity mask of `vp`. `mask` must be
    /// a bool field on `vp`. The new mask (one byte per VP) is charged
    /// against the memory budget.
    pub fn push_context(&mut self, mask: FieldId) -> Result<()> {
        let size = self.charged_push(mask, false)?;
        self.tick(OpClass::Context, size)
    }

    /// Push the `others` complement of `mask` within the enclosing context.
    pub fn push_context_others(&mut self, mask: FieldId) -> Result<()> {
        let size = self.charged_push(mask, true)?;
        self.tick(OpClass::Context, size)
    }

    /// Charge the memory budget for one context level, then push it;
    /// the charge is rolled back if the push itself fails.
    fn charged_push(&mut self, mask: FieldId, others: bool) -> Result<usize> {
        let size = self.vp(mask.vp)?.geom.size();
        self.charge_mem(size as u64)?;
        match self.push_ctx_inner(mask, others) {
            Ok(size) => Ok(size),
            Err(e) => {
                self.release_mem(size as u64);
                Err(e)
            }
        }
    }

    /// Shared body of the two context pushes: borrows the mask field's bits
    /// directly while mutating the same VP set's context stack (disjoint
    /// struct fields), avoiding the former `to_vec()` of the mask.
    fn push_ctx_inner(&mut self, mask: FieldId, others: bool) -> Result<usize> {
        let set = self
            .vpsets
            .get_mut(mask.vp.0)
            .ok_or(CmError::UnknownVpSet)?;
        let VpSet { ref fields, ref mut context, .. } = *set;
        let field = fields
            .get(mask.index)
            .and_then(|f| f.as_ref())
            .ok_or(CmError::UnknownField)?;
        let bits = match &field.data {
            FieldData::Bool(v) => v.as_slice(),
            other => {
                return Err(CmError::TypeMismatch {
                    expected: ElemType::Bool,
                    found: other.elem_type(),
                })
            }
        };
        if others {
            context.push_others(bits)?;
        } else {
            context.push_and(bits)?;
        }
        Ok(bits.len())
    }

    /// Pop the innermost activity mask of `vp`.
    pub fn pop_context(&mut self, vp: VpSetId) -> Result<()> {
        let size = self.vp(vp)?.geom.size();
        self.vp_mut(vp)?.context.pop()?;
        self.release_mem(size as u64);
        self.tick(OpClass::Context, size)
    }

    /// Number of active VPs under the current mask (a global-OR style
    /// front-end test; charged as a scan).
    pub fn active_count(&mut self, vp: VpSetId) -> Result<usize> {
        let size = self.vp(vp)?.geom.size();
        self.tick(OpClass::Scan, size)?;
        Ok(self.vp(vp)?.context.active_count())
    }

    /// Whether any VP is active (the CM global-OR wire).
    pub fn any_active(&mut self, vp: VpSetId) -> Result<bool> {
        let size = self.vp(vp)?.geom.size();
        self.tick(OpClass::Scan, size)?;
        Ok(self.vp(vp)?.context.any_active())
    }

    /// The current activity mask, cloned (no charge: test-only accessor).
    pub fn context_mask(&self, vp: VpSetId) -> Result<Vec<bool>> {
        Ok(self.vp(vp)?.context.current().to_vec())
    }

    /// Current context nesting depth (including the base mask).
    pub fn context_depth(&self, vp: VpSetId) -> Result<usize> {
        Ok(self.vp(vp)?.context.depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_set_lifecycle() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("grid", &[4, 4]).unwrap();
        assert_eq!(m.vp_size(vp).unwrap(), 16);
        assert_eq!(m.vp_name(vp).unwrap(), "grid");
        assert_eq!(m.geometry(vp).unwrap().rank(), 2);
        assert!(m.new_vp_set("bad", &[0]).is_err());
    }

    #[test]
    fn field_alloc_free_reuse() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[8]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_float(vp, "b").unwrap();
        assert_eq!(m.elem_type(a).unwrap(), ElemType::Int);
        assert_eq!(m.elem_type(b).unwrap(), ElemType::Float);
        m.free(a).unwrap();
        assert_eq!(m.elem_type(a), Err(CmError::UnknownField));
        // Double free of a freed handle is rejected.
        assert!(m.free(a).is_err());
        // Slot is reused by the next allocation.
        let c = m.alloc_bool(vp, "c").unwrap();
        assert_eq!(c.index, a.index);
        assert_eq!(m.elem_type(c).unwrap(), ElemType::Bool);
    }

    #[test]
    fn read_write_all_roundtrip() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        m.write_all(a, FieldData::I64(vec![5, 6, 7, 8])).unwrap();
        assert_eq!(m.read_all(a).unwrap(), FieldData::I64(vec![5, 6, 7, 8]));
        // Wrong type and wrong length are rejected.
        assert!(m.write_all(a, FieldData::F64(vec![0.0; 4])).is_err());
        assert!(m.write_all(a, FieldData::I64(vec![0; 3])).is_err());
    }

    #[test]
    fn context_push_pop_counts() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false])).unwrap();
        m.push_context(mask).unwrap();
        assert_eq!(m.active_count(vp).unwrap(), 2);
        assert!(m.any_active(vp).unwrap());
        m.push_context_others(mask).unwrap();
        assert_eq!(m.active_count(vp).unwrap(), 0);
        m.pop_context(vp).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.pop_context(vp), Err(CmError::ContextUnderflow));
    }

    #[test]
    fn clock_advances_and_resets() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        assert_eq!(m.cycles(), 0);
        m.read_all(a).unwrap();
        assert!(m.cycles() > 0);
        assert_eq!(m.counters().front_end, 1);
        m.reset_clock();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.counters().total(), 0);
    }

    #[test]
    fn cross_machine_ids_fail_cleanly() {
        let mut m1 = Machine::with_defaults();
        let _ = m1.new_vp_set("v", &[4]).unwrap();
        let m2 = Machine::with_defaults();
        assert!(m2.vp(VpSetId(0)).is_err());
    }
}
