//! The machine: front end + processing-element array.
//!
//! [`Machine`] owns every VP set (geometry, context stack, fields), the
//! cycle clock and the instruction counters. All simulator operations are
//! methods on `Machine` (spread across `ops`, `news`, `router` and `scan`);
//! each one validates its operands, charges the cost model, and then
//! executes deterministically.

use crate::context::ContextStack;
use crate::cost::{CostModel, OpClass, OpCounters};
use crate::field::{ElemType, Field, FieldData, FieldId};
use crate::geometry::Geometry;
use crate::{CmError, Result};

/// Handle to a VP set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VpSetId(pub(crate) usize);

/// One virtual-processor set: a geometry, an activity-mask stack, and the
/// fields allocated on it. Freed field slots are reused.
#[derive(Debug)]
pub(crate) struct VpSet {
    pub(crate) name: String,
    pub(crate) geom: Geometry,
    pub(crate) context: ContextStack,
    pub(crate) fields: Vec<Option<Field>>,
    free_slots: Vec<usize>,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of physical processors (the paper's machine had 16K).
    pub phys_procs: usize,
    /// Cycle charges per instruction class.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig { phys_procs: 16 * 1024, cost: CostModel::default() }
    }
}

/// The simulated Connection Machine.
#[derive(Debug)]
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) vpsets: Vec<VpSet>,
    clock: u64,
    counters: OpCounters,
}

impl Machine {
    /// A machine with the default 16K-processor configuration.
    pub fn with_defaults() -> Self {
        Machine::new(MachineConfig::default())
    }

    /// A machine with an explicit configuration.
    pub fn new(config: MachineConfig) -> Self {
        Machine { config, vpsets: Vec::new(), clock: 0, counters: OpCounters::default() }
    }

    /// Number of physical processors.
    pub fn phys_procs(&self) -> usize {
        self.config.phys_procs
    }

    /// Elapsed cycles since construction (or the last [`Machine::reset_clock`]).
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Instruction counters by class.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Reset the clock and counters (e.g. to exclude setup from a timing).
    pub fn reset_clock(&mut self) {
        self.clock = 0;
        self.counters = OpCounters::default();
    }

    /// Charge one instruction of `class` issued to a VP set of `vp_size`.
    #[inline]
    pub(crate) fn tick(&mut self, class: OpClass, vp_size: usize) {
        self.clock += self.config.cost.charge(class, vp_size, self.config.phys_procs);
        self.counters.bump(class);
    }

    // ---- VP sets --------------------------------------------------------

    /// Create a VP set with the given geometry.
    pub fn new_vp_set(&mut self, name: &str, dims: &[usize]) -> Result<VpSetId> {
        let geom = Geometry::new(dims)?;
        let size = geom.size();
        self.vpsets.push(VpSet {
            name: name.to_string(),
            geom,
            context: ContextStack::new(size),
            fields: Vec::new(),
            free_slots: Vec::new(),
        });
        Ok(VpSetId(self.vpsets.len() - 1))
    }

    pub(crate) fn vp(&self, id: VpSetId) -> Result<&VpSet> {
        self.vpsets.get(id.0).ok_or(CmError::UnknownVpSet)
    }

    pub(crate) fn vp_mut(&mut self, id: VpSetId) -> Result<&mut VpSet> {
        self.vpsets.get_mut(id.0).ok_or(CmError::UnknownVpSet)
    }

    /// Number of virtual processors in a VP set.
    pub fn vp_size(&self, id: VpSetId) -> Result<usize> {
        Ok(self.vp(id)?.geom.size())
    }

    /// The geometry of a VP set.
    pub fn geometry(&self, id: VpSetId) -> Result<&Geometry> {
        Ok(&self.vp(id)?.geom)
    }

    /// Debug name of a VP set.
    pub fn vp_name(&self, id: VpSetId) -> Result<&str> {
        Ok(self.vp(id)?.name.as_str())
    }

    // ---- Fields ---------------------------------------------------------

    /// Allocate a zero-initialised field of `ty` on `vp`.
    pub fn alloc(&mut self, vp: VpSetId, name: &str, ty: ElemType) -> Result<FieldId> {
        let set = self.vp_mut(vp)?;
        let len = set.geom.size();
        let field = Field::new(name, ty, len);
        let index = if let Some(slot) = set.free_slots.pop() {
            set.fields[slot] = Some(field);
            slot
        } else {
            set.fields.push(Some(field));
            set.fields.len() - 1
        };
        Ok(FieldId { vp, index })
    }

    /// Allocate an integer field.
    pub fn alloc_int(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Int)
    }

    /// Allocate a float field.
    pub fn alloc_float(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Float)
    }

    /// Allocate a boolean (test/flag) field.
    pub fn alloc_bool(&mut self, vp: VpSetId, name: &str) -> Result<FieldId> {
        self.alloc(vp, name, ElemType::Bool)
    }

    /// Free a field, making its slot reusable. Using the id afterwards
    /// yields [`CmError::UnknownField`].
    pub fn free(&mut self, id: FieldId) -> Result<()> {
        let set = self.vp_mut(id.vp)?;
        match set.fields.get_mut(id.index) {
            Some(slot @ Some(_)) => {
                *slot = None;
                set.free_slots.push(id.index);
                Ok(())
            }
            _ => Err(CmError::UnknownField),
        }
    }

    pub(crate) fn field(&self, id: FieldId) -> Result<&Field> {
        self.vp(id.vp)?
            .fields
            .get(id.index)
            .and_then(|f| f.as_ref())
            .ok_or(CmError::UnknownField)
    }

    pub(crate) fn field_mut(&mut self, id: FieldId) -> Result<&mut Field> {
        self.vp_mut(id.vp)?
            .fields
            .get_mut(id.index)
            .and_then(|f| f.as_mut())
            .ok_or(CmError::UnknownField)
    }

    /// Element type of a field.
    pub fn elem_type(&self, id: FieldId) -> Result<ElemType> {
        Ok(self.field(id)?.elem_type())
    }

    /// Number of live (allocated, un-freed) fields across all VP sets.
    /// Useful for leak tests: a well-behaved client's live count is
    /// bounded over repeated operations.
    pub fn live_fields(&self) -> usize {
        self.vpsets
            .iter()
            .map(|s| s.fields.iter().filter(|f| f.is_some()).count())
            .sum()
    }

    /// Borrow an int field's storage (front-end inspection; not charged).
    pub fn int_data(&self, id: FieldId) -> Result<&[i64]> {
        match &self.field(id)?.data {
            FieldData::I64(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Int, found: other.elem_type() })
            }
        }
    }

    /// Borrow a float field's storage (front-end inspection; not charged).
    pub fn float_data(&self, id: FieldId) -> Result<&[f64]> {
        match &self.field(id)?.data {
            FieldData::F64(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Float, found: other.elem_type() })
            }
        }
    }

    /// Borrow a bool field's storage (front-end inspection; not charged).
    pub fn bool_data(&self, id: FieldId) -> Result<&[bool]> {
        match &self.field(id)?.data {
            FieldData::Bool(v) => Ok(v),
            other => {
                Err(CmError::TypeMismatch { expected: ElemType::Bool, found: other.elem_type() })
            }
        }
    }

    /// Snapshot a field's storage (a front-end bulk read; charged as one
    /// front-end op per element).
    pub fn read_all(&mut self, id: FieldId) -> Result<FieldData> {
        let data = self.field(id)?.data.clone();
        self.tick(OpClass::FrontEnd, data.len());
        Ok(data)
    }

    /// Overwrite a field's storage wholesale (front-end bulk write). The
    /// data must match the field's type and the VP-set size. The context
    /// mask is *ignored*, like `write_elem`: this models front-end DMA.
    pub fn write_all(&mut self, id: FieldId, data: FieldData) -> Result<()> {
        let len = self.vp(id.vp)?.geom.size();
        let field = self.field(id)?;
        if field.elem_type() != data.elem_type() {
            return Err(CmError::TypeMismatch {
                expected: field.elem_type(),
                found: data.elem_type(),
            });
        }
        if data.len() != len {
            return Err(CmError::VpSetMismatch);
        }
        self.field_mut(id)?.data = data;
        self.tick(OpClass::FrontEnd, len);
        Ok(())
    }

    // ---- Context --------------------------------------------------------

    /// Push `mask AND current` as the activity mask of `vp`. `mask` must be
    /// a bool field on `vp`.
    pub fn push_context(&mut self, mask: FieldId) -> Result<()> {
        let bits = self.bool_data(mask)?.to_vec();
        let size = bits.len();
        self.vp_mut(mask.vp)?.context.push_and(&bits)?;
        self.tick(OpClass::Context, size);
        Ok(())
    }

    /// Push the `others` complement of `mask` within the enclosing context.
    pub fn push_context_others(&mut self, mask: FieldId) -> Result<()> {
        let bits = self.bool_data(mask)?.to_vec();
        let size = bits.len();
        self.vp_mut(mask.vp)?.context.push_others(&bits)?;
        self.tick(OpClass::Context, size);
        Ok(())
    }

    /// Pop the innermost activity mask of `vp`.
    pub fn pop_context(&mut self, vp: VpSetId) -> Result<()> {
        let size = self.vp(vp)?.geom.size();
        self.vp_mut(vp)?.context.pop()?;
        self.tick(OpClass::Context, size);
        Ok(())
    }

    /// Number of active VPs under the current mask (a global-OR style
    /// front-end test; charged as a scan).
    pub fn active_count(&mut self, vp: VpSetId) -> Result<usize> {
        let size = self.vp(vp)?.geom.size();
        self.tick(OpClass::Scan, size);
        Ok(self.vp(vp)?.context.active_count())
    }

    /// Whether any VP is active (the CM global-OR wire).
    pub fn any_active(&mut self, vp: VpSetId) -> Result<bool> {
        let size = self.vp(vp)?.geom.size();
        self.tick(OpClass::Scan, size);
        Ok(self.vp(vp)?.context.any_active())
    }

    /// The current activity mask, cloned (no charge: test-only accessor).
    pub fn context_mask(&self, vp: VpSetId) -> Result<Vec<bool>> {
        Ok(self.vp(vp)?.context.current().to_vec())
    }

    /// Current context nesting depth (including the base mask).
    pub fn context_depth(&self, vp: VpSetId) -> Result<usize> {
        Ok(self.vp(vp)?.context.depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_set_lifecycle() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("grid", &[4, 4]).unwrap();
        assert_eq!(m.vp_size(vp).unwrap(), 16);
        assert_eq!(m.vp_name(vp).unwrap(), "grid");
        assert_eq!(m.geometry(vp).unwrap().rank(), 2);
        assert!(m.new_vp_set("bad", &[0]).is_err());
    }

    #[test]
    fn field_alloc_free_reuse() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[8]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_float(vp, "b").unwrap();
        assert_eq!(m.elem_type(a).unwrap(), ElemType::Int);
        assert_eq!(m.elem_type(b).unwrap(), ElemType::Float);
        m.free(a).unwrap();
        assert_eq!(m.elem_type(a), Err(CmError::UnknownField));
        // Double free of a freed handle is rejected.
        assert!(m.free(a).is_err());
        // Slot is reused by the next allocation.
        let c = m.alloc_bool(vp, "c").unwrap();
        assert_eq!(c.index, a.index);
        assert_eq!(m.elem_type(c).unwrap(), ElemType::Bool);
    }

    #[test]
    fn read_write_all_roundtrip() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        m.write_all(a, FieldData::I64(vec![5, 6, 7, 8])).unwrap();
        assert_eq!(m.read_all(a).unwrap(), FieldData::I64(vec![5, 6, 7, 8]));
        // Wrong type and wrong length are rejected.
        assert!(m.write_all(a, FieldData::F64(vec![0.0; 4])).is_err());
        assert!(m.write_all(a, FieldData::I64(vec![0; 3])).is_err());
    }

    #[test]
    fn context_push_pop_counts() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false])).unwrap();
        m.push_context(mask).unwrap();
        assert_eq!(m.active_count(vp).unwrap(), 2);
        assert!(m.any_active(vp).unwrap());
        m.push_context_others(mask).unwrap();
        assert_eq!(m.active_count(vp).unwrap(), 0);
        m.pop_context(vp).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.pop_context(vp), Err(CmError::ContextUnderflow));
    }

    #[test]
    fn clock_advances_and_resets() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        assert_eq!(m.cycles(), 0);
        m.read_all(a).unwrap();
        assert!(m.cycles() > 0);
        assert_eq!(m.counters().front_end, 1);
        m.reset_clock();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.counters().total(), 0);
    }

    #[test]
    fn cross_machine_ids_fail_cleanly() {
        let mut m1 = Machine::with_defaults();
        let _ = m1.new_vp_set("v", &[4]).unwrap();
        let m2 = Machine::with_defaults();
        assert!(m2.vp(VpSetId(0)).is_err());
    }
}
