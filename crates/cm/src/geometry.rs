//! VP-set geometries.
//!
//! A Connection Machine VP set is configured with an n-dimensional
//! *geometry*. Every virtual processor has a coordinate vector and a
//! row-major *send address* (linear index) used by the router. NEWS-grid
//! communication moves data along one axis of the geometry at a time.

use crate::{CmError, Result};

/// An n-dimensional VP-set shape.
///
/// Coordinates are row-major: the last axis varies fastest, exactly like a
/// C array `a[d0][d1]...[dk]`, which is how the UC compiler lays out
/// program arrays on the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Geometry {
    dims: Vec<usize>,
    /// Row-major strides; `strides[i]` is the linear distance between
    /// neighbours along axis `i`.
    strides: Vec<usize>,
    size: usize,
}

impl Geometry {
    /// Create a geometry. Fails with [`CmError::BadGeometry`] on an empty
    /// dimension list, any zero extent, or a total size that overflows
    /// `usize` (hostile inputs must trap, not wrap).
    pub fn new(dims: &[usize]) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(CmError::BadGeometry);
        }
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] =
                strides[i + 1].checked_mul(dims[i + 1]).ok_or(CmError::BadGeometry)?;
        }
        let size = strides[0].checked_mul(dims[0]).ok_or(CmError::BadGeometry)?;
        // Addresses and NEWS deltas are computed in i64; keep the whole
        // address space representable there.
        if size > i64::MAX as usize {
            return Err(CmError::BadGeometry);
        }
        Ok(Geometry { dims: dims.to_vec(), strides, size })
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of virtual processors.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Extent of one axis.
    pub fn extent(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(CmError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// All extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major stride of one axis.
    pub fn stride(&self, axis: usize) -> Result<usize> {
        self.strides
            .get(axis)
            .copied()
            .ok_or(CmError::AxisOutOfRange { axis, rank: self.rank() })
    }

    /// Linear send address of a coordinate vector.
    ///
    /// Returns `None` if the coordinate has the wrong rank or is outside
    /// the geometry.
    pub fn address(&self, coord: &[usize]) -> Option<usize> {
        if coord.len() != self.dims.len() {
            return None;
        }
        let mut addr = 0usize;
        for ((&c, &d), &s) in coord.iter().zip(&self.dims).zip(&self.strides) {
            if c >= d {
                return None;
            }
            addr += c * s;
        }
        Some(addr)
    }

    /// Coordinate vector of a linear send address.
    pub fn coordinate(&self, mut addr: usize) -> Option<Vec<usize>> {
        if addr >= self.size {
            return None;
        }
        let mut coord = Vec::with_capacity(self.dims.len());
        for &s in &self.strides {
            coord.push(addr / s);
            addr %= s;
        }
        Some(coord)
    }

    /// The coordinate of `addr` along a single axis, without materialising
    /// the whole coordinate vector. Used heavily by NEWS shifts.
    #[inline]
    pub fn axis_coordinate(&self, addr: usize, axis: usize) -> Result<usize> {
        let s = self.stride(axis)?;
        let d = self.extent(axis)?;
        Ok((addr / s) % d)
    }

    /// The linear address of the neighbour of `addr` that lies `offset`
    /// steps along `axis`, or `None` when the neighbour falls off the grid
    /// (non-wrapping NEWS).
    #[inline]
    pub fn neighbor(&self, addr: usize, axis: usize, offset: i64) -> Result<Option<usize>> {
        let s = self.stride(axis)?;
        let d = self.extent(axis)? as i64;
        let c = ((addr / s) % d as usize) as i64;
        let nc = c + offset;
        if nc < 0 || nc >= d {
            return Ok(None);
        }
        let delta = (nc - c) * s as i64;
        Ok(Some((addr as i64 + delta) as usize))
    }

    /// Like [`Geometry::neighbor`] but toroidal: coordinates wrap.
    #[inline]
    pub fn neighbor_wrap(&self, addr: usize, axis: usize, offset: i64) -> Result<usize> {
        let s = self.stride(axis)?;
        let d = self.extent(axis)? as i64;
        let c = ((addr / s) % d as usize) as i64;
        let nc = (c + offset).rem_euclid(d);
        let delta = (nc - c) * s as i64;
        Ok((addr as i64 + delta) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometries() {
        assert_eq!(Geometry::new(&[]), Err(CmError::BadGeometry));
        assert_eq!(Geometry::new(&[4, 0]), Err(CmError::BadGeometry));
    }

    #[test]
    fn row_major_addresses() {
        let g = Geometry::new(&[3, 4]).unwrap();
        assert_eq!(g.size(), 12);
        assert_eq!(g.rank(), 2);
        assert_eq!(g.address(&[0, 0]), Some(0));
        assert_eq!(g.address(&[0, 3]), Some(3));
        assert_eq!(g.address(&[1, 0]), Some(4));
        assert_eq!(g.address(&[2, 3]), Some(11));
        assert_eq!(g.address(&[3, 0]), None);
        assert_eq!(g.address(&[0, 4]), None);
        assert_eq!(g.address(&[0]), None);
    }

    #[test]
    fn coordinates_invert_addresses() {
        let g = Geometry::new(&[2, 3, 4]).unwrap();
        for addr in 0..g.size() {
            let c = g.coordinate(addr).unwrap();
            assert_eq!(g.address(&c), Some(addr));
        }
        assert_eq!(g.coordinate(g.size()), None);
    }

    #[test]
    fn axis_coordinate_matches_full_coordinate() {
        let g = Geometry::new(&[5, 7]).unwrap();
        for addr in 0..g.size() {
            let c = g.coordinate(addr).unwrap();
            assert_eq!(g.axis_coordinate(addr, 0).unwrap(), c[0]);
            assert_eq!(g.axis_coordinate(addr, 1).unwrap(), c[1]);
        }
    }

    #[test]
    fn neighbors_bounded() {
        let g = Geometry::new(&[3, 3]).unwrap();
        // middle cell (1,1) = addr 4
        assert_eq!(g.neighbor(4, 0, 1).unwrap(), Some(7));
        assert_eq!(g.neighbor(4, 0, -1).unwrap(), Some(1));
        assert_eq!(g.neighbor(4, 1, 1).unwrap(), Some(5));
        assert_eq!(g.neighbor(4, 1, -1).unwrap(), Some(3));
        // corner falls off
        assert_eq!(g.neighbor(0, 0, -1).unwrap(), None);
        assert_eq!(g.neighbor(8, 1, 1).unwrap(), None);
        // long strides fall off too
        assert_eq!(g.neighbor(0, 0, 3).unwrap(), None);
    }

    #[test]
    fn neighbors_wrap() {
        let g = Geometry::new(&[3, 3]).unwrap();
        assert_eq!(g.neighbor_wrap(0, 0, -1).unwrap(), 6);
        assert_eq!(g.neighbor_wrap(8, 1, 1).unwrap(), 6);
        assert_eq!(g.neighbor_wrap(4, 0, 3).unwrap(), 4); // full loop
        assert_eq!(g.neighbor_wrap(4, 1, -4).unwrap(), 3);
    }

    #[test]
    fn axis_errors() {
        let g = Geometry::new(&[3]).unwrap();
        assert!(matches!(g.extent(1), Err(CmError::AxisOutOfRange { .. })));
        assert!(matches!(g.neighbor(0, 2, 1), Err(CmError::AxisOutOfRange { .. })));
    }
}
