//! Elementwise SIMD ALU operations.
//!
//! Every operation applies to all *active* VPs of one VP set (inactive VPs
//! keep their old destination values) and charges the [`crate::cost`]
//! model. Operands must live on the same VP set and have matching types;
//! the UC executor inserts explicit [`Machine::convert`] ops where the
//! language allows implicit coercion.

use crate::cost::OpClass;
use crate::field::{ElemType, FieldData, FieldId};
use crate::machine::Machine;
use crate::par;
use crate::{CmError, Result, Scalar};

/// Binary elementwise operations.
///
/// Arithmetic ops preserve the operand type; comparisons produce `Bool`;
/// `LogAnd`/`LogOr`/`LogXor` operate on `Bool` fields (C truthiness is the
/// executor's job). `Shl`/`Shr`/`BitAnd`/`BitOr`/`BitXor`/`Mod` are
/// integer-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Min,
    Max,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    LogXor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Whether this op yields a `Bool` field regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Whether this op is defined only on `Bool` operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr | BinOp::LogXor)
    }

    /// Whether this op is defined only on `Int` operands.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Mod | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr
        )
    }

    /// Result element type for operands of type `ty`.
    pub fn result_type(self, ty: ElemType) -> ElemType {
        if self.is_comparison() {
            ElemType::Bool
        } else {
            ty
        }
    }
}

/// Unary elementwise operations. `Not` is logical negation on `Bool`;
/// `BitNot` is integer complement; `Neg`/`Abs` are numeric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
    Abs,
}

#[inline]
fn int_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.wrapping_div(b),
        BinOp::Mod => a.wrapping_rem(b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
        _ => unreachable!("non-arithmetic op dispatched to int_binop"),
    }
}

#[inline]
fn float_binop(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        _ => unreachable!("non-float op dispatched to float_binop"),
    }
}

#[inline]
fn int_cmp(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!(),
    }
}

#[inline]
fn float_cmp(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        _ => unreachable!(),
    }
}

/// SplitMix64, used for the machine's deterministic per-VP PRNG.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Machine {
    fn same_vp(&self, ids: &[FieldId]) -> Result<usize> {
        let vp = ids[0].vp;
        for id in ids {
            if id.vp != vp {
                return Err(CmError::VpSetMismatch);
            }
        }
        self.vp_size(vp)
    }

    /// Masked memcpy between two distinct same-typed fields of one VP set
    /// (the shared tail of `copy` and identity `convert`).
    fn copy_masked_split(&mut self, dst: FieldId, src: FieldId) -> Result<()> {
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        match (d, peers.src(src)?) {
            (FieldData::I64(dv), FieldData::I64(sv)) => par::commit_masked(dv, sv, mask),
            (FieldData::F64(dv), FieldData::F64(sv)) => par::commit_masked(dv, sv, mask),
            (FieldData::Bool(dv), FieldData::Bool(sv)) => par::commit_masked(dv, sv, mask),
            _ => unreachable!("types validated by caller"),
        }
        Ok(())
    }

    /// `dst[i] = imm` for active `i`.
    pub fn set_imm(&mut self, dst: FieldId, imm: Scalar) -> Result<()> {
        let size = self.same_vp(&[dst])?;
        self.tick(OpClass::Alu, size)?;
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        match (d, imm) {
            (FieldData::I64(v), Scalar::Int(x)) => par::fill_masked(v, x, mask),
            (FieldData::F64(v), Scalar::Float(x)) => par::fill_masked(v, x, mask),
            (FieldData::Bool(v), Scalar::Bool(x)) => par::fill_masked(v, x, mask),
            (d, s) => {
                return Err(CmError::TypeMismatch {
                    expected: d.elem_type(),
                    found: s.elem_type(),
                })
            }
        }
        Ok(())
    }

    /// `dst[i] = src[i]` for active `i`. Types must match.
    pub fn copy(&mut self, dst: FieldId, src: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, src])?;
        let (dty, sty) = (self.field(dst)?.elem_type(), self.field(src)?.elem_type());
        if dty != sty {
            return Err(CmError::TypeMismatch { expected: dty, found: sty });
        }
        self.tick(OpClass::Alu, size)?;
        if dst == src {
            return Ok(());
        }
        self.copy_masked_split(dst, src)
    }

    /// `dst[i] = (dst_type) src[i]` for active `i`: numeric conversion.
    /// Int↔Float truncates toward zero; Bool↔numeric uses C truthiness.
    pub fn convert(&mut self, dst: FieldId, src: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, src])?;
        let (dty, sty) = (self.field(dst)?.elem_type(), self.field(src)?.elem_type());
        self.tick(OpClass::Alu, size)?;
        if dty == sty {
            // Identity cast: a masked memcpy, no intermediate buffer.
            if dst == src {
                return Ok(());
            }
            return self.copy_masked_split(dst, src);
        }
        // Cross-type: distinct element types means distinct fields, so the
        // source can never alias the destination.
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        match (d, peers.src(src)?) {
            (FieldData::F64(dv), FieldData::I64(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| x as f64)
            }
            (FieldData::Bool(dv), FieldData::I64(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| x != 0)
            }
            (FieldData::I64(dv), FieldData::F64(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| x as i64)
            }
            (FieldData::Bool(dv), FieldData::F64(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| x != 0.0)
            }
            (FieldData::I64(dv), FieldData::Bool(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| x as i64)
            }
            (FieldData::F64(dv), FieldData::Bool(sv)) => {
                par::apply1_masked(dv, sv, mask, |&x| (x as i64) as f64)
            }
            _ => unreachable!("identity casts handled above"),
        }
        Ok(())
    }

    /// Unary elementwise op.
    pub fn unop(&mut self, op: UnOp, dst: FieldId, src: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, src])?;
        let sty = self.field(src)?.elem_type();
        let valid = matches!(
            (op, sty),
            (UnOp::Neg | UnOp::Abs, ElemType::Int | ElemType::Float)
                | (UnOp::Not, ElemType::Bool)
                | (UnOp::BitNot, ElemType::Int)
        );
        if !valid {
            return Err(CmError::TypeMismatch { expected: ElemType::Int, found: sty });
        }
        let dty = self.field(dst)?.elem_type();
        if dty != sty {
            return Err(CmError::TypeMismatch { expected: dty, found: sty });
        }
        self.tick(OpClass::Alu, size)?;
        let tmp = if dst == src { Some(self.scratch_copy(dst)?) } else { None };
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let s = match &tmp {
                Some(t) => t,
                None => peers.src(src)?,
            };
            match (op, d, s) {
                (UnOp::Neg, FieldData::I64(dv), FieldData::I64(sv)) => {
                    par::apply1_masked(dv, sv, mask, |&x| x.wrapping_neg())
                }
                (UnOp::Neg, FieldData::F64(dv), FieldData::F64(sv)) => {
                    par::apply1_masked(dv, sv, mask, |&x| -x)
                }
                (UnOp::Abs, FieldData::I64(dv), FieldData::I64(sv)) => {
                    // wrapping: abs(i64::MIN) must not trip overflow checks
                    par::apply1_masked(dv, sv, mask, |&x| x.wrapping_abs())
                }
                (UnOp::Abs, FieldData::F64(dv), FieldData::F64(sv)) => {
                    par::apply1_masked(dv, sv, mask, |&x| x.abs())
                }
                (UnOp::Not, FieldData::Bool(dv), FieldData::Bool(sv)) => {
                    par::apply1_masked(dv, sv, mask, |&x| !x)
                }
                (UnOp::BitNot, FieldData::I64(dv), FieldData::I64(sv)) => {
                    par::apply1_masked(dv, sv, mask, |&x| !x)
                }
                _ => unreachable!("op/type combination validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res
    }

    /// Binary elementwise op: `dst[i] = a[i] op b[i]` for active `i`.
    pub fn binop(&mut self, op: BinOp, dst: FieldId, a: FieldId, b: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, a, b])?;
        let (ta, tb) = (self.field(a)?.elem_type(), self.field(b)?.elem_type());
        if ta != tb {
            return Err(CmError::TypeMismatch { expected: ta, found: tb });
        }
        match ta {
            ElemType::Int => {
                if op.is_logical() {
                    return Err(CmError::TypeMismatch {
                        expected: ElemType::Bool,
                        found: ElemType::Int,
                    });
                }
            }
            ElemType::Float => {
                if op.is_logical() || op.int_only() {
                    return Err(CmError::Unsupported("integer/logical op on float field"));
                }
            }
            ElemType::Bool => {
                if !matches!(
                    op,
                    BinOp::LogAnd | BinOp::LogOr | BinOp::LogXor | BinOp::Eq | BinOp::Ne
                ) {
                    return Err(CmError::Unsupported("arithmetic on bool field"));
                }
            }
        }
        let rty = op.result_type(ta);
        let dty = self.field(dst)?.elem_type();
        if dty != rty {
            return Err(CmError::TypeMismatch { expected: dty, found: rty });
        }
        // Active zero divisors are an error; inactive ones are fine because
        // the masked apply below never evaluates inactive positions.
        if ta == ElemType::Int && matches!(op, BinOp::Div | BinOp::Mod) {
            let FieldData::I64(y) = &self.field(b)?.data else { unreachable!() };
            let mask = self.vp(dst.vp)?.context.current();
            if par::any2(y, mask, |&q, &m| m && q == 0) {
                return Err(CmError::DivideByZero);
            }
        }
        self.tick(OpClass::Alu, size)?;
        // Any aliased source equals dst, so one scratch copy covers both.
        let tmp = if a == dst || b == dst { Some(self.scratch_copy(dst)?) } else { None };
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let fa = if a == dst { tmp.as_ref().expect("alias copied") } else { peers.src(a)? };
            let fb = if b == dst { tmp.as_ref().expect("alias copied") } else { peers.src(b)? };
            match (fa, fb) {
                (FieldData::I64(x), FieldData::I64(y)) => {
                    if op.is_comparison() {
                        let FieldData::Bool(dv) = d else { unreachable!() };
                        par::apply2_masked(dv, x, y, mask, |&p, &q| int_cmp(op, p, q));
                    } else {
                        let FieldData::I64(dv) = d else { unreachable!() };
                        par::apply2_masked(dv, x, y, mask, |&p, &q| int_binop(op, p, q));
                    }
                }
                (FieldData::F64(x), FieldData::F64(y)) => {
                    if op.is_comparison() {
                        let FieldData::Bool(dv) = d else { unreachable!() };
                        par::apply2_masked(dv, x, y, mask, |&p, &q| float_cmp(op, p, q));
                    } else {
                        let FieldData::F64(dv) = d else { unreachable!() };
                        par::apply2_masked(dv, x, y, mask, |&p, &q| float_binop(op, p, q));
                    }
                }
                (FieldData::Bool(x), FieldData::Bool(y)) => {
                    let FieldData::Bool(dv) = d else { unreachable!() };
                    match op {
                        BinOp::LogAnd => par::apply2_masked(dv, x, y, mask, |&p, &q| p && q),
                        BinOp::LogOr => par::apply2_masked(dv, x, y, mask, |&p, &q| p || q),
                        BinOp::LogXor => par::apply2_masked(dv, x, y, mask, |&p, &q| p ^ q),
                        BinOp::Eq => par::apply2_masked(dv, x, y, mask, |&p, &q| p == q),
                        BinOp::Ne => par::apply2_masked(dv, x, y, mask, |&p, &q| p != q),
                        _ => unreachable!("op validated above"),
                    }
                }
                _ => unreachable!("operand types validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res
    }

    /// `dst[i] = a[i] op imm` for active `i`.
    pub fn binop_imm(&mut self, op: BinOp, dst: FieldId, a: FieldId, imm: Scalar) -> Result<()> {
        let tmp = self.alloc(a.vp, "~imm", imm.elem_type())?;
        // Immediate broadcast must reach inactive positions too (they are
        // masked on commit, but divisor checks etc. see the value).
        self.fill_unconditional(tmp, imm)?;
        let r = self.binop(op, dst, a, tmp);
        self.free(tmp)?;
        r
    }

    /// `dst[i] = imm op b[i]` for active `i` (immediate on the left, for
    /// non-commutative ops).
    pub fn binop_imm_l(&mut self, op: BinOp, dst: FieldId, imm: Scalar, b: FieldId) -> Result<()> {
        let tmp = self.alloc(b.vp, "~imm", imm.elem_type())?;
        self.fill_unconditional(tmp, imm)?;
        let r = self.binop(op, dst, tmp, b);
        self.free(tmp)?;
        r
    }

    /// Copy a field everywhere, ignoring the context mask. Used by the
    /// executor to snapshot state for fixed-point detection (`*solve`),
    /// where router scatters may have written outside the current mask.
    pub fn copy_unconditional(&mut self, dst: FieldId, src: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, src])?;
        let (dty, sty) = (self.field(dst)?.elem_type(), self.field(src)?.elem_type());
        if dty != sty {
            return Err(CmError::TypeMismatch { expected: dty, found: sty });
        }
        self.tick(OpClass::Alu, size)?;
        if dst == src {
            return Ok(());
        }
        let (d, peers) = self.split_dst(dst)?;
        d.clone_from_reusing(peers.src(src)?);
        Ok(())
    }

    /// Global test: do `a` and `b` differ anywhere (regardless of the
    /// context mask)? A combine-tree operation, charged as a scan.
    pub fn any_ne(&mut self, a: FieldId, b: FieldId) -> Result<bool> {
        let size = self.same_vp(&[a, b])?;
        let fa = &self.field(a)?.data;
        let fb = &self.field(b)?.data;
        let ne = match (fa, fb) {
            (FieldData::I64(x), FieldData::I64(y)) => par::any2(x, y, |p, q| p != q),
            (FieldData::F64(x), FieldData::F64(y)) => par::any2(x, y, |p, q| p != q),
            (FieldData::Bool(x), FieldData::Bool(y)) => par::any2(x, y, |p, q| p != q),
            (x, y) => {
                return Err(CmError::TypeMismatch {
                    expected: x.elem_type(),
                    found: y.elem_type(),
                })
            }
        };
        self.tick(OpClass::Scan, size)?;
        Ok(ne)
    }

    /// Fill a field everywhere, ignoring the context mask (front-end
    /// broadcast used for immediates and initialisation).
    pub fn fill_unconditional(&mut self, dst: FieldId, imm: Scalar) -> Result<()> {
        let size = self.same_vp(&[dst])?;
        let field = self.field_mut(dst)?;
        match (&mut field.data, imm) {
            (FieldData::I64(v), Scalar::Int(x)) => par::fill(v, x),
            (FieldData::F64(v), Scalar::Float(x)) => par::fill(v, x),
            (FieldData::Bool(v), Scalar::Bool(x)) => par::fill(v, x),
            (d, s) => {
                return Err(CmError::TypeMismatch {
                    expected: d.elem_type(),
                    found: s.elem_type(),
                })
            }
        }
        self.tick(OpClass::Alu, size)?;
        Ok(())
    }

    /// `dst[i] = cond[i] ? a[i] : b[i]` for active `i`.
    pub fn select(&mut self, dst: FieldId, cond: FieldId, a: FieldId, b: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst, cond, a, b])?;
        let cty = self.field(cond)?.elem_type();
        if cty != ElemType::Bool {
            return Err(CmError::TypeMismatch { expected: ElemType::Bool, found: cty });
        }
        let (ta, tb) = (self.field(a)?.elem_type(), self.field(b)?.elem_type());
        if ta != tb {
            return Err(CmError::TypeMismatch { expected: ta, found: tb });
        }
        let dty = self.field(dst)?.elem_type();
        if dty != ta {
            return Err(CmError::TypeMismatch { expected: dty, found: ta });
        }
        self.tick(OpClass::Alu, size)?;
        let aliased = cond == dst || a == dst || b == dst;
        let tmp = if aliased { Some(self.scratch_copy(dst)?) } else { None };
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let fc = if cond == dst { tmp.as_ref().expect("alias copied") } else { peers.src(cond)? };
            let fa = if a == dst { tmp.as_ref().expect("alias copied") } else { peers.src(a)? };
            let fb = if b == dst { tmp.as_ref().expect("alias copied") } else { peers.src(b)? };
            let FieldData::Bool(c) = fc else { unreachable!() };
            match (d, fa, fb) {
                (FieldData::I64(dv), FieldData::I64(x), FieldData::I64(y)) => {
                    par::apply3_masked(dv, x, y, c, mask, |&p, &q, &m| if m { p } else { q })
                }
                (FieldData::F64(dv), FieldData::F64(x), FieldData::F64(y)) => {
                    par::apply3_masked(dv, x, y, c, mask, |&p, &q, &m| if m { p } else { q })
                }
                (FieldData::Bool(dv), FieldData::Bool(x), FieldData::Bool(y)) => {
                    par::apply3_masked(dv, x, y, c, mask, |&p, &q, &m| if m { p } else { q })
                }
                _ => unreachable!("types validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res
    }

    /// `dst[i] = i` (the VP's send address) for active `i`. `dst` must be Int.
    pub fn iota(&mut self, dst: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst])?;
        self.int_data(dst)?; // type check
        self.tick(OpClass::Alu, size)?;
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        let FieldData::I64(dv) = d else { unreachable!() };
        par::apply_index_masked(dv, mask, |i| i as i64);
        Ok(())
    }

    /// `dst[i] = coordinate of VP i along axis` for active `i`.
    ///
    /// This is how index-set elements (`i`, `j`, ...) materialise on the
    /// machine: a par over `(I, J)` creates a 2-D VP set and each element
    /// identifier is the self-coordinate along one axis.
    pub fn axis_coord(&mut self, dst: FieldId, axis: usize) -> Result<()> {
        let size = self.same_vp(&[dst])?;
        self.int_data(dst)?;
        self.vp(dst.vp)?.geom.extent(axis)?;
        self.tick(OpClass::Alu, size)?;
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        let geom = peers.geom(dst.vp)?;
        let FieldData::I64(dv) = d else { unreachable!() };
        par::apply_index_masked(dv, mask, |i| {
            geom.axis_coordinate(i, axis).expect("axis checked") as i64
        });
        Ok(())
    }

    /// `dst[i] = uniform random in [0, modulus)` for active `i`,
    /// deterministic in `(seed, i)`. Models the per-processor `rand()` of
    /// the paper's benchmark initialisation.
    pub fn rand_int(&mut self, dst: FieldId, modulus: i64, seed: u64) -> Result<()> {
        if modulus <= 0 {
            return Err(CmError::DivideByZero);
        }
        let size = self.same_vp(&[dst])?;
        self.int_data(dst)?;
        self.tick(OpClass::Alu, size)?;
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        let FieldData::I64(dv) = d else { unreachable!() };
        par::apply_index_masked(dv, mask, |i| {
            (splitmix64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)) % modulus as u64)
                as i64
        });
        Ok(())
    }

    /// Materialise the current activity mask of `dst`'s VP set into `dst`
    /// (a bool field), writing **unconditionally**. This is how nested
    /// constructs transfer their enabled set onto an extended VP set.
    pub fn read_context(&mut self, dst: FieldId) -> Result<()> {
        let size = self.same_vp(&[dst])?;
        self.bool_data(dst)?; // type check
        let (d, peers) = self.split_dst(dst)?;
        let mask = peers.mask(dst.vp)?;
        let FieldData::Bool(dv) = d else { unreachable!() };
        dv.copy_from_slice(mask);
        self.tick(OpClass::Context, size)?;
        Ok(())
    }

    /// Front-end read of one element (ignores the context mask).
    pub fn read_elem(&mut self, id: FieldId, index: usize) -> Result<Scalar> {
        let size = self.vp_size(id.vp)?;
        if index >= size {
            return Err(CmError::IndexOutOfRange { index, size });
        }
        self.tick(OpClass::FrontEnd, 1)?;
        Ok(match &self.field(id)?.data {
            FieldData::I64(v) => Scalar::Int(v[index]),
            FieldData::F64(v) => Scalar::Float(v[index]),
            FieldData::Bool(v) => Scalar::Bool(v[index]),
        })
    }

    /// Front-end write of one element (ignores the context mask).
    pub fn write_elem(&mut self, id: FieldId, index: usize, value: Scalar) -> Result<()> {
        let size = self.vp_size(id.vp)?;
        if index >= size {
            return Err(CmError::IndexOutOfRange { index, size });
        }
        self.tick(OpClass::FrontEnd, 1)?;
        let field = self.field_mut(id)?;
        match (&mut field.data, value) {
            (FieldData::I64(v), Scalar::Int(x)) => v[index] = x,
            (FieldData::F64(v), Scalar::Float(x)) => v[index] = x,
            (FieldData::Bool(v), Scalar::Bool(x)) => v[index] = x,
            (d, s) => {
                return Err(CmError::TypeMismatch {
                    expected: d.elem_type(),
                    found: s.elem_type(),
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn setup(n: usize) -> (Machine, crate::machine::VpSetId) {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        (m, vp)
    }

    #[test]
    fn imm_copy_convert() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_float(vp, "b").unwrap();
        m.set_imm(a, Scalar::Int(7)).unwrap();
        assert_eq!(m.read_elem(a, 2).unwrap(), Scalar::Int(7));
        m.convert(b, a).unwrap();
        assert_eq!(m.read_elem(b, 0).unwrap(), Scalar::Float(7.0));
        let c = m.alloc_int(vp, "c").unwrap();
        m.copy(c, a).unwrap();
        assert_eq!(m.read_elem(c, 3).unwrap(), Scalar::Int(7));
        assert!(m.copy(c, b).is_err(), "copy requires matching types");
    }

    #[test]
    fn binops_int() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        m.iota(a).unwrap(); // 0 1 2 3
        m.set_imm(b, Scalar::Int(3)).unwrap();
        m.binop(BinOp::Add, d, a, b).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[3, 4, 5, 6]);
        m.binop(BinOp::Mul, d, a, a).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 4, 9]);
        m.binop(BinOp::Max, d, a, b).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[3, 3, 3, 3]);
        m.binop(BinOp::Min, d, a, b).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 2, 3]);
        m.binop_imm(BinOp::Mod, d, a, Scalar::Int(2)).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 0, 1]);
        m.binop_imm_l(BinOp::Sub, d, Scalar::Int(10), a).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[10, 9, 8, 7]);
    }

    #[test]
    fn comparisons_produce_bool() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let t = m.alloc_bool(vp, "t").unwrap();
        m.iota(a).unwrap();
        m.binop_imm(BinOp::Lt, t, a, Scalar::Int(2)).unwrap();
        assert_eq!(m.bool_data(t).unwrap(), &[true, true, false, false]);
        m.binop_imm(BinOp::Eq, t, a, Scalar::Int(3)).unwrap();
        assert_eq!(m.bool_data(t).unwrap(), &[false, false, false, true]);
    }

    #[test]
    fn division_by_zero_only_if_active() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        m.set_imm(a, Scalar::Int(8)).unwrap();
        m.iota(b).unwrap(); // b[0] = 0
        assert_eq!(m.binop(BinOp::Div, d, a, b), Err(CmError::DivideByZero));
        // Deactivate VP 0 and retry: now fine.
        let nz = m.alloc_bool(vp, "nz").unwrap();
        m.binop_imm(BinOp::Ne, nz, b, Scalar::Int(0)).unwrap();
        m.push_context(nz).unwrap();
        m.binop(BinOp::Div, d, a, b).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 8, 4, 2]); // d[0] untouched
    }

    #[test]
    fn context_masks_writes() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.set_imm(a, Scalar::Int(1)).unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false])).unwrap();
        m.push_context(mask).unwrap();
        m.set_imm(a, Scalar::Int(9)).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.int_data(a).unwrap(), &[9, 1, 9, 1]);
    }

    #[test]
    fn select_and_unops() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        let c = m.alloc_bool(vp, "c").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        m.iota(a).unwrap();
        m.binop_imm_l(BinOp::Sub, b, Scalar::Int(0), a).unwrap(); // b = -a
        m.binop_imm(BinOp::Ge, c, a, Scalar::Int(2)).unwrap();
        m.select(d, c, a, b).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, -1, 2, 3]);
        m.unop(UnOp::Neg, d, d).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, -2, -3]);
        m.unop(UnOp::Abs, d, d).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 2, 3]);
        m.unop(UnOp::Not, c, c).unwrap();
        assert_eq!(m.bool_data(c).unwrap(), &[true, true, false, false]);
    }

    #[test]
    fn axis_coordinates() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("g", &[2, 3]).unwrap();
        let i = m.alloc_int(vp, "i").unwrap();
        let j = m.alloc_int(vp, "j").unwrap();
        m.axis_coord(i, 0).unwrap();
        m.axis_coord(j, 1).unwrap();
        assert_eq!(m.int_data(i).unwrap(), &[0, 0, 0, 1, 1, 1]);
        assert_eq!(m.int_data(j).unwrap(), &[0, 1, 2, 0, 1, 2]);
        assert!(m.axis_coord(i, 2).is_err());
    }

    #[test]
    fn rand_is_deterministic_and_bounded() {
        let (mut m, vp) = setup(64);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        m.rand_int(a, 10, 42).unwrap();
        m.rand_int(b, 10, 42).unwrap();
        assert_eq!(m.int_data(a).unwrap(), m.int_data(b).unwrap());
        assert!(m.int_data(a).unwrap().iter().all(|&x| (0..10).contains(&x)));
        m.rand_int(b, 10, 43).unwrap();
        assert_ne!(m.int_data(a).unwrap(), m.int_data(b).unwrap());
        assert!(m.rand_int(a, 0, 1).is_err());
    }

    #[test]
    fn elem_access_bounds() {
        let (mut m, vp) = setup(2);
        let a = m.alloc_int(vp, "a").unwrap();
        m.write_elem(a, 1, Scalar::Int(5)).unwrap();
        assert_eq!(m.read_elem(a, 1).unwrap(), Scalar::Int(5));
        assert!(matches!(m.read_elem(a, 2), Err(CmError::IndexOutOfRange { .. })));
        assert!(m.write_elem(a, 0, Scalar::Float(1.0)).is_err());
    }

    #[test]
    fn read_context_materialises_mask() {
        let (mut m, vp) = setup(4);
        let mask = m.alloc_bool(vp, "m").unwrap();
        let out = m.alloc_bool(vp, "out").unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false])).unwrap();
        m.push_context(mask).unwrap();
        m.read_context(out).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.bool_data(out).unwrap(), &[true, false, true, false]);
        // At base context it reads all-true, even though `out` was
        // partially masked before (read_context writes unconditionally).
        m.read_context(out).unwrap();
        assert_eq!(m.bool_data(out).unwrap(), &[true; 4]);
    }

    #[test]
    fn copy_unconditional_ignores_mask() {
        let (mut m, vp) = setup(4);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        let none = m.alloc_bool(vp, "none").unwrap(); // all false
        m.iota(a).unwrap();
        m.push_context(none).unwrap();
        m.copy(b, a).unwrap(); // masked: no effect
        assert_eq!(m.int_data(b).unwrap(), &[0; 4]);
        m.copy_unconditional(b, a).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[0, 1, 2, 3]);
        m.pop_context(vp).unwrap();
        let f = m.alloc_float(vp, "f").unwrap();
        assert!(m.copy_unconditional(f, a).is_err());
    }

    #[test]
    fn any_ne_global_test() {
        let (mut m, vp) = setup(3);
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        assert!(!m.any_ne(a, b).unwrap());
        m.write_elem(b, 2, Scalar::Int(9)).unwrap();
        assert!(m.any_ne(a, b).unwrap());
        // Ignores the context mask by design (fixed-point detection).
        let none = m.alloc_bool(vp, "none").unwrap();
        m.push_context(none).unwrap();
        assert!(m.any_ne(a, b).unwrap());
        m.pop_context(vp).unwrap();
        let f = m.alloc_float(vp, "f").unwrap();
        assert!(m.any_ne(a, f).is_err());
    }

    #[test]
    fn logical_ops_on_bool_only() {
        let (mut m, vp) = setup(2);
        let a = m.alloc_int(vp, "a").unwrap();
        let t = m.alloc_bool(vp, "t").unwrap();
        let u = m.alloc_bool(vp, "u").unwrap();
        assert!(m.binop(BinOp::LogAnd, a, a, a).is_err());
        m.write_all(t, FieldData::Bool(vec![true, false])).unwrap();
        m.write_all(u, FieldData::Bool(vec![true, true])).unwrap();
        let r = m.alloc_bool(vp, "r").unwrap();
        m.binop(BinOp::LogAnd, r, t, u).unwrap();
        assert_eq!(m.bool_data(r).unwrap(), &[true, false]);
        m.binop(BinOp::LogXor, r, t, u).unwrap();
        assert_eq!(m.bool_data(r).unwrap(), &[false, true]);
    }
}
