//! Context flags: the CM activity mask.
//!
//! Every CM processing element carries a one-bit *context flag*; a SIMD
//! instruction only takes effect on processors whose flag is set. Nested
//! `where`-style selection (UC's `st (pred)` guards, C*'s active sets) is
//! modelled as a stack of masks whose top is the AND of every enclosing
//! selection.

use crate::{CmError, Result};

/// A stack of activity masks for one VP set.
///
/// The base of the stack is the all-active mask and can never be popped.
/// Pushing ANDs a new predicate into the current mask, which is exactly how
/// the CM implements nested selection: deactivated processors stay
/// deactivated for the whole nested block.
///
/// Popped masks are parked on a spare list and reused by the next push, so
/// steady-state push/pop cycles (every `st`-guarded loop iteration) perform
/// no heap allocation once the stack has been warmed to its peak depth.
#[derive(Debug, Clone)]
pub struct ContextStack {
    size: usize,
    stack: Vec<Vec<bool>>,
    spare: Vec<Vec<bool>>,
}

/// Retain at most this many popped masks for reuse.
const MAX_SPARE: usize = 8;

impl ContextStack {
    /// A context stack for a VP set of `size` processors, all active.
    pub fn new(size: usize) -> Self {
        ContextStack { size, stack: vec![vec![true; size]], spare: Vec::new() }
    }

    /// The current activity mask.
    #[inline]
    pub fn current(&self) -> &[bool] {
        self.stack.last().expect("context stack has a base").as_slice()
    }

    /// Number of VPs in the set.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Depth of nesting, counting the base mask.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Push `mask AND current` as the new activity mask.
    ///
    /// `mask` must have exactly one bit per VP.
    pub fn push_and(&mut self, mask: &[bool]) -> Result<()> {
        if mask.len() != self.size {
            return Err(CmError::VpSetMismatch);
        }
        let mut next = self.spare.pop().unwrap_or_default();
        next.clear();
        let cur = self.stack.last().expect("context stack has a base");
        next.extend(cur.iter().zip(mask).map(|(&c, &m)| c && m));
        self.stack.push(next);
        Ok(())
    }

    /// Push the complement *within the enclosing mask*: processors that are
    /// active in the enclosing context but were **not** active in `mask`.
    ///
    /// This implements UC's `others` clause.
    pub fn push_others(&mut self, mask: &[bool]) -> Result<()> {
        if mask.len() != self.size {
            return Err(CmError::VpSetMismatch);
        }
        let mut next = self.spare.pop().unwrap_or_default();
        next.clear();
        let cur = self.stack.last().expect("context stack has a base");
        next.extend(cur.iter().zip(mask).map(|(&c, &m)| c && !m));
        self.stack.push(next);
        Ok(())
    }

    /// Pop the innermost selection. The base mask cannot be popped.
    pub fn pop(&mut self) -> Result<()> {
        if self.stack.len() == 1 {
            return Err(CmError::ContextUnderflow);
        }
        let popped = self.stack.pop().expect("depth checked");
        if self.spare.len() < MAX_SPARE {
            self.spare.push(popped);
        }
        Ok(())
    }

    /// Number of active processors under the current mask.
    pub fn active_count(&self) -> usize {
        self.current().iter().filter(|&&b| b).count()
    }

    /// Whether any processor is active.
    pub fn any_active(&self) -> bool {
        self.current().iter().any(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_all_active() {
        let c = ContextStack::new(4);
        assert_eq!(c.current(), &[true; 4]);
        assert_eq!(c.active_count(), 4);
        assert!(c.any_active());
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn push_and_nests() {
        let mut c = ContextStack::new(4);
        c.push_and(&[true, false, true, false]).unwrap();
        assert_eq!(c.current(), &[true, false, true, false]);
        c.push_and(&[true, true, false, false]).unwrap();
        assert_eq!(c.current(), &[true, false, false, false]);
        assert_eq!(c.active_count(), 1);
        c.pop().unwrap();
        assert_eq!(c.current(), &[true, false, true, false]);
    }

    #[test]
    fn push_others_complements_within_parent() {
        let mut c = ContextStack::new(4);
        c.push_and(&[true, true, false, false]).unwrap();
        // Parent restricts to {0,1}; mask selected {0}; others = {1}.
        c.push_others(&[true, false, false, false]).unwrap();
        assert_eq!(c.current(), &[false, true, false, false]);
    }

    #[test]
    fn base_pop_underflows() {
        let mut c = ContextStack::new(2);
        assert_eq!(c.pop(), Err(CmError::ContextUnderflow));
        c.push_and(&[false, false]).unwrap();
        assert!(!c.any_active());
        c.pop().unwrap();
        assert_eq!(c.pop(), Err(CmError::ContextUnderflow));
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut c = ContextStack::new(2);
        assert_eq!(c.push_and(&[true]), Err(CmError::VpSetMismatch));
        assert_eq!(c.push_others(&[true; 3]), Err(CmError::VpSetMismatch));
    }
}
