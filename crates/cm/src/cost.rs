//! The cycle cost model.
//!
//! The paper reports *elapsed time* on a 16K-processor CM-2. On that
//! machine, the time of a data-parallel macro-instruction is, to first
//! order, `vp_ratio * c_class` where `vp_ratio = ceil(V / P)` (each
//! physical processor is time-sliced over its virtual processors) and
//! `c_class` depends on the kind of instruction: local ALU work is cheap,
//! NEWS-grid neighbour communication costs a few times more, the general
//! router is an order of magnitude more expensive again, and global
//! reductions/scans pay an additional `log2 P` combine-tree term.
//!
//! The constants below are not microsecond-accurate CM-2 figures; they
//! preserve the *ordering and rough ratios* of instruction classes, which
//! is what the paper's curve shapes depend on (see DESIGN.md §2).

/// Instruction classes the machine charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Elementwise arithmetic/logic on local memory.
    Alu,
    /// Context-flag manipulation (push/pop/test of activity masks).
    Context,
    /// NEWS-grid nearest-neighbour shift.
    News,
    /// General router send/get.
    Router,
    /// Global reduce or scan (combine tree).
    Scan,
    /// Front-end scalar work, including broadcast of an immediate and
    /// reading one element back to the front end.
    FrontEnd,
}

/// Per-class base cycle charges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    pub alu: u64,
    pub context: u64,
    pub news: u64,
    pub router: u64,
    pub scan: u64,
    pub front_end: u64,
    /// Extra per-op charge multiplied by `log2(phys_procs)` for combine
    /// trees (reductions and scans).
    pub tree_step: u64,
}

impl Default for CostModel {
    /// Ratios loosely follow CM-2 folklore: NEWS ≈ 2× ALU, router ≈ 20× ALU,
    /// scans pay a tree term. The absolute scale is calibrated against the
    /// sequential baseline of `uc-seqc` (1 cycle per sequential abstract
    /// op): one SIMD macro-instruction costs tens of sequential ops, the
    /// front-end-dispatch ratio of a CM-2 vs its SUN-4 front end. That
    /// constant is what places Figure 8's crossover; see DESIGN.md §2.
    fn default() -> Self {
        CostModel {
            alu: 30,
            context: 10,
            news: 60,
            router: 600,
            scan: 120,
            front_end: 10,
            tree_step: 20,
        }
    }
}

impl CostModel {
    /// Cycles charged for one instruction of class `class` issued to a VP
    /// set of `vp_size` virtual processors on `phys_procs` physical ones.
    pub fn charge(&self, class: OpClass, vp_size: usize, phys_procs: usize) -> u64 {
        let ratio = vp_ratio(vp_size, phys_procs);
        let base = match class {
            OpClass::Alu => self.alu,
            OpClass::Context => self.context,
            OpClass::News => self.news,
            OpClass::Router => self.router,
            OpClass::Scan => {
                self.scan.saturating_add(self.tree_step.saturating_mul(log2_ceil(phys_procs)))
            }
            OpClass::FrontEnd => return self.front_end, // front end is scalar: no VP ratio
        };
        // Saturating: a hostile VP ratio must exhaust fuel, not wrap the
        // clock back under it (release builds run with overflow-checks).
        base.saturating_mul(ratio)
    }
}

/// `ceil(vp_size / phys_procs)`, minimum 1 — the CM VP ratio.
#[inline]
pub fn vp_ratio(vp_size: usize, phys_procs: usize) -> u64 {
    let p = phys_procs.max(1);
    (vp_size.div_ceil(p)).max(1) as u64
}

/// `ceil(log2(n))`, with `log2_ceil(0|1) = 0`.
#[inline]
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Running tally of instructions issued, by class. Useful for experiments
/// that compare communication structure rather than raw cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounters {
    pub alu: u64,
    pub context: u64,
    pub news: u64,
    pub router: u64,
    pub scan: u64,
    pub front_end: u64,
}

impl OpCounters {
    pub(crate) fn bump(&mut self, class: OpClass) {
        match class {
            OpClass::Alu => self.alu += 1,
            OpClass::Context => self.context += 1,
            OpClass::News => self.news += 1,
            OpClass::Router => self.router += 1,
            OpClass::Scan => self.scan += 1,
            OpClass::FrontEnd => self.front_end += 1,
        }
    }

    /// Total instructions of every class.
    pub fn total(&self) -> u64 {
        self.alu + self.context + self.news + self.router + self.scan + self.front_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_ratio_rounds_up() {
        assert_eq!(vp_ratio(1, 16), 1);
        assert_eq!(vp_ratio(16, 16), 1);
        assert_eq!(vp_ratio(17, 16), 2);
        assert_eq!(vp_ratio(0, 16), 1);
        assert_eq!(vp_ratio(100, 0), 100); // degenerate: 1 "physical" proc
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16384), 14);
        assert_eq!(log2_ceil(16385), 15);
    }

    #[test]
    fn class_ordering_preserved() {
        let c = CostModel::default();
        let p = 16384;
        let alu = c.charge(OpClass::Alu, p, p);
        let news = c.charge(OpClass::News, p, p);
        let router = c.charge(OpClass::Router, p, p);
        assert!(alu < news && news < router, "alu < news < router must hold");
    }

    #[test]
    fn vp_ratio_scales_charges() {
        let c = CostModel::default();
        let one = c.charge(OpClass::Alu, 16384, 16384);
        let four = c.charge(OpClass::Alu, 4 * 16384, 16384);
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn front_end_flat() {
        let c = CostModel::default();
        assert_eq!(c.charge(OpClass::FrontEnd, 1 << 20, 16), c.front_end);
    }

    #[test]
    fn counters_bump_and_total() {
        let mut k = OpCounters::default();
        k.bump(OpClass::Alu);
        k.bump(OpClass::Alu);
        k.bump(OpClass::Router);
        k.bump(OpClass::Scan);
        k.bump(OpClass::News);
        k.bump(OpClass::Context);
        k.bump(OpClass::FrontEnd);
        assert_eq!(k.alu, 2);
        assert_eq!(k.router, 1);
        assert_eq!(k.total(), 7);
    }
}
