//! Host-side data-parallel kernels.
//!
//! The simulator executes elementwise SIMD instructions with rayon when the
//! VP set is large enough to amortise fork/join overhead, and sequentially
//! otherwise. Every kernel is a pure elementwise map, so the results (and
//! the cycle clock, which is charged *before* execution) are identical for
//! any thread count — simulations stay deterministic.

use rayon::prelude::*;

/// Below this many elements the sequential path is used.
pub const PAR_THRESHOLD: usize = 1 << 13;

/// Elementwise map of one slice.
pub fn map1<A, O, F>(a: &[A], f: F) -> Vec<O>
where
    A: Sync,
    O: Send,
    F: Fn(&A) -> O + Sync + Send,
{
    if a.len() >= PAR_THRESHOLD {
        a.par_iter().map(&f).collect()
    } else {
        a.iter().map(&f).collect()
    }
}

/// Elementwise map of two equal-length slices.
///
/// Panics if lengths differ; the machine validates shapes before calling.
pub fn map2<A, B, O, F>(a: &[A], b: &[B], f: F) -> Vec<O>
where
    A: Sync,
    B: Sync,
    O: Send,
    F: Fn(&A, &B) -> O + Sync + Send,
{
    assert_eq!(a.len(), b.len(), "map2 length mismatch");
    if a.len() >= PAR_THRESHOLD {
        a.par_iter().zip(b.par_iter()).map(|(x, y)| f(x, y)).collect()
    } else {
        a.iter().zip(b.iter()).map(|(x, y)| f(x, y)).collect()
    }
}

/// Elementwise map of three equal-length slices.
pub fn map3<A, B, C, O, F>(a: &[A], b: &[B], c: &[C], f: F) -> Vec<O>
where
    A: Sync,
    B: Sync,
    C: Sync,
    O: Send,
    F: Fn(&A, &B, &C) -> O + Sync + Send,
{
    assert_eq!(a.len(), b.len(), "map3 length mismatch");
    assert_eq!(a.len(), c.len(), "map3 length mismatch");
    if a.len() >= PAR_THRESHOLD {
        a.par_iter()
            .zip(b.par_iter())
            .zip(c.par_iter())
            .map(|((x, y), z)| f(x, y, z))
            .collect()
    } else {
        a.iter()
            .zip(b.iter())
            .zip(c.iter())
            .map(|((x, y), z)| f(x, y, z))
            .collect()
    }
}

/// Indexed elementwise map: `out[i] = f(i)`.
pub fn map_index<O, F>(len: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync + Send,
{
    if len >= PAR_THRESHOLD {
        (0..len).into_par_iter().map(&f).collect()
    } else {
        (0..len).map(&f).collect()
    }
}

/// Masked in-place commit: `dst[i] = src[i]` wherever `mask[i]`.
pub fn commit_masked<T: Copy + Send + Sync>(dst: &mut [T], src: &[T], mask: &[bool]) {
    assert_eq!(dst.len(), src.len(), "commit length mismatch");
    assert_eq!(dst.len(), mask.len(), "commit mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter())
            .zip(mask.par_iter())
            .for_each(|((d, s), &m)| {
                if m {
                    *d = *s;
                }
            });
    } else {
        for ((d, s), &m) in dst.iter_mut().zip(src).zip(mask) {
            if m {
                *d = *s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map1_small_and_large() {
        let small: Vec<i64> = (0..100).collect();
        assert_eq!(map1(&small, |&x| x + 1)[99], 100);
        let large: Vec<i64> = (0..(PAR_THRESHOLD as i64 + 5)).collect();
        let out = map1(&large, |&x| x * 2);
        assert_eq!(out.len(), large.len());
        assert_eq!(out[PAR_THRESHOLD], 2 * PAR_THRESHOLD as i64);
    }

    #[test]
    fn map2_and_map3() {
        let a = vec![1i64, 2, 3];
        let b = vec![10i64, 20, 30];
        let c = vec![true, false, true];
        assert_eq!(map2(&a, &b, |x, y| x + y), vec![11, 22, 33]);
        assert_eq!(map3(&a, &b, &c, |x, y, &m| if m { *x } else { *y }), vec![1, 20, 3]);
    }

    #[test]
    fn map_index_identity() {
        assert_eq!(map_index(4, |i| i as i64), vec![0, 1, 2, 3]);
    }

    #[test]
    fn commit_respects_mask() {
        let mut d = vec![0i64; 4];
        commit_masked(&mut d, &[1, 2, 3, 4], &[true, false, true, false]);
        assert_eq!(d, vec![1, 0, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn map2_length_mismatch_panics() {
        map2(&[1], &[1, 2], |a: &i32, b: &i32| a + b);
    }
}
