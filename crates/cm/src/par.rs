//! Host-side data-parallel kernels.
//!
//! The simulator executes elementwise SIMD instructions on rayon's
//! work-stealing pool when the VP set is large enough to amortise
//! fork/join overhead, and sequentially otherwise (the pool honours the
//! `UC_THREADS` environment variable; see the `rayon` shim). Every kernel
//! here is either a pure elementwise map — identical for any thread count
//! by construction — or an order-sensitive fold (scan/reduce building
//! blocks) that is chunked by [`chunk_at`], a pure function of the
//! element count alone. Chunk layout never depends on the thread count,
//! so even float folds, which are sensitive to association order, are
//! bit-identical under any `UC_THREADS` — simulations stay deterministic.
//! (The cycle clock is charged *before* execution, so cost accounting is
//! thread-count-independent too.)
//!
//! The chunked fan-outs are allocation-free: per-chunk partials land in
//! caller-provided stack arrays (chunk counts are bounded by
//! [`MAX_CHUNKS`]) and the pool's batch dispatch queues `Copy` chunk
//! descriptors rather than boxed closures, so a warm simulator performs
//! zero heap allocations per parallel op at **any** size and thread
//! count — `crates/cm/tests/alloc_count.rs` asserts this on both sides
//! of `PAR_THRESHOLD`.

use rayon::prelude::*;
use std::ops::Range;

/// Below this many elements the sequential path is used.
pub const PAR_THRESHOLD: usize = 1 << 13;

/// Smallest number of elements one pool job processes (the
/// `with_min_len` chunking hint on every parallel pipeline here).
pub const CHUNK_MIN: usize = 1 << 10;

/// Upper bound on the number of chunks [`chunk_count`] produces. Bounds
/// the sequential chunk-combine step of scans/reductions while leaving
/// enough chunks for every realistic pool size to balance load.
pub const MAX_CHUNKS: usize = 64;

/// Elements per chunk for a `len`-element partition: at least
/// [`CHUNK_MIN`], at most [`MAX_CHUNKS`] chunks.
fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(CHUNK_MIN)
}

/// Number of chunks `0..len` partitions into — a pure function of `len`
/// alone, **never** of the thread count, so order-sensitive folds over
/// these chunks (float scans/reductions) associate identically under any
/// `UC_THREADS` setting. Always `<=` [`MAX_CHUNKS`].
pub fn chunk_count(len: usize) -> usize {
    if len == 0 {
        0
    } else {
        len.div_ceil(chunk_size(len))
    }
}

/// The `k`-th chunk of the `0..len` partition (`k < chunk_count(len)`).
pub fn chunk_at(len: usize, k: usize) -> Range<usize> {
    let c = chunk_size(len);
    (k * c)..((k + 1) * c).min(len)
}

/// Apply `f` to every chunk of `0..len` in parallel, writing chunk `k`'s
/// result to `out[k]`; returns the chunk count. `out` is caller-provided
/// (a stack array, typically `[id; MAX_CHUNKS]`) so the fan-out performs
/// no heap allocation. Chunk layout is [`chunk_at`]'s, so the results
/// are deterministic for any thread count.
pub fn map_chunks_into<O, F>(len: usize, out: &mut [O; MAX_CHUNKS], f: F) -> usize
where
    O: Send,
    F: Fn(Range<usize>) -> O + Sync,
{
    let n = chunk_count(len);
    if n <= 1 || len < PAR_THRESHOLD {
        for (k, slot) in out.iter_mut().enumerate().take(n) {
            *slot = f(chunk_at(len, k));
        }
    } else {
        (0..n)
            .into_par_iter()
            .zip(out[..n].par_iter_mut())
            .with_min_len(1)
            .for_each(|(k, slot)| *slot = f(chunk_at(len, k)));
    }
    n
}

/// Run `f(k, chunk, &mut data[chunk])` for every chunk of
/// `0..data.len()` in parallel — the in-place sibling of
/// [`map_chunks_into`] for per-chunk passes that write disjoint regions
/// (the blocked scan's second pass). Allocation-free.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    let len = data.len();
    let n = chunk_count(len);
    if n <= 1 || len < PAR_THRESHOLD {
        let mut rest = data;
        for k in 0..n {
            let r = chunk_at(len, k);
            let (head, tail) = rest.split_at_mut(r.len());
            f(k, r, head);
            rest = tail;
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    (0..n).into_par_iter().with_min_len(1).for_each(|k| {
        let r = chunk_at(len, k);
        // Chunks are disjoint, so the derived `&mut` slices never alias.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
        f(k, r, chunk);
    });
}

/// Raw pointer that may cross threads; writes are to disjoint chunks.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Elementwise map of one slice.
pub fn map1<A, O, F>(a: &[A], f: F) -> Vec<O>
where
    A: Sync,
    O: Send,
    F: Fn(&A) -> O + Sync + Send,
{
    if a.len() >= PAR_THRESHOLD {
        a.par_iter().with_min_len(CHUNK_MIN).map(&f).collect()
    } else {
        a.iter().map(&f).collect()
    }
}

/// Elementwise map of two equal-length slices.
///
/// Panics if lengths differ; the machine validates shapes before calling.
pub fn map2<A, B, O, F>(a: &[A], b: &[B], f: F) -> Vec<O>
where
    A: Sync,
    B: Sync,
    O: Send,
    F: Fn(&A, &B) -> O + Sync + Send,
{
    assert_eq!(a.len(), b.len(), "map2 length mismatch");
    if a.len() >= PAR_THRESHOLD {
        a.par_iter()
            .zip(b.par_iter())
            .with_min_len(CHUNK_MIN)
            .map(|(x, y)| f(x, y))
            .collect()
    } else {
        a.iter().zip(b.iter()).map(|(x, y)| f(x, y)).collect()
    }
}

/// Elementwise map of three equal-length slices.
pub fn map3<A, B, C, O, F>(a: &[A], b: &[B], c: &[C], f: F) -> Vec<O>
where
    A: Sync,
    B: Sync,
    C: Sync,
    O: Send,
    F: Fn(&A, &B, &C) -> O + Sync + Send,
{
    assert_eq!(a.len(), b.len(), "map3 length mismatch");
    assert_eq!(a.len(), c.len(), "map3 length mismatch");
    if a.len() >= PAR_THRESHOLD {
        a.par_iter()
            .zip(b.par_iter())
            .zip(c.par_iter())
            .with_min_len(CHUNK_MIN)
            .map(|((x, y), z)| f(x, y, z))
            .collect()
    } else {
        a.iter()
            .zip(b.iter())
            .zip(c.iter())
            .map(|((x, y), z)| f(x, y, z))
            .collect()
    }
}

/// Indexed elementwise map: `out[i] = f(i)`.
pub fn map_index<O, F>(len: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync + Send,
{
    if len >= PAR_THRESHOLD {
        (0..len).into_par_iter().with_min_len(CHUNK_MIN).map(&f).collect()
    } else {
        (0..len).map(&f).collect()
    }
}

/// Masked in-place commit: `dst[i] = src[i]` wherever `mask[i]`.
pub fn commit_masked<T: Copy + Send + Sync>(dst: &mut [T], src: &[T], mask: &[bool]) {
    assert_eq!(dst.len(), src.len(), "commit length mismatch");
    assert_eq!(dst.len(), mask.len(), "commit mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(src.par_iter())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((d, s), &m)| {
                if m {
                    *d = *s;
                }
            });
    } else {
        for ((d, s), &m) in dst.iter_mut().zip(src).zip(mask) {
            if m {
                *d = *s;
            }
        }
    }
}

/// Masked in-place elementwise map of one source: `dst[i] = f(a[i])`
/// wherever `mask[i]`. Writes nothing at inactive positions, so `dst` is
/// never read — callers pass the destination field's storage directly.
pub fn apply1_masked<A, T, F>(dst: &mut [T], a: &[A], mask: &[bool], f: F)
where
    A: Sync,
    T: Send,
    F: Fn(&A) -> T + Sync + Send,
{
    assert_eq!(dst.len(), a.len(), "apply1 length mismatch");
    assert_eq!(dst.len(), mask.len(), "apply1 mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(a.par_iter())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((d, x), &m)| {
                if m {
                    *d = f(x);
                }
            });
    } else {
        for ((d, x), &m) in dst.iter_mut().zip(a).zip(mask) {
            if m {
                *d = f(x);
            }
        }
    }
}

/// Masked in-place elementwise map of two sources:
/// `dst[i] = f(a[i], b[i])` wherever `mask[i]`.
pub fn apply2_masked<A, B, T, F>(dst: &mut [T], a: &[A], b: &[B], mask: &[bool], f: F)
where
    A: Sync,
    B: Sync,
    T: Send,
    F: Fn(&A, &B) -> T + Sync + Send,
{
    assert_eq!(dst.len(), a.len(), "apply2 length mismatch");
    assert_eq!(dst.len(), b.len(), "apply2 length mismatch");
    assert_eq!(dst.len(), mask.len(), "apply2 mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(a.par_iter())
            .zip(b.par_iter())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|(((d, x), y), &m)| {
                if m {
                    *d = f(x, y);
                }
            });
    } else {
        for (((d, x), y), &m) in dst.iter_mut().zip(a).zip(b).zip(mask) {
            if m {
                *d = f(x, y);
            }
        }
    }
}

/// Masked in-place elementwise map of three sources:
/// `dst[i] = f(a[i], b[i], c[i])` wherever `mask[i]` (the `select` op).
pub fn apply3_masked<A, B, C, T, F>(dst: &mut [T], a: &[A], b: &[B], c: &[C], mask: &[bool], f: F)
where
    A: Sync,
    B: Sync,
    C: Sync,
    T: Send,
    F: Fn(&A, &B, &C) -> T + Sync + Send,
{
    assert_eq!(dst.len(), a.len(), "apply3 length mismatch");
    assert_eq!(dst.len(), b.len(), "apply3 length mismatch");
    assert_eq!(dst.len(), c.len(), "apply3 length mismatch");
    assert_eq!(dst.len(), mask.len(), "apply3 mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(a.par_iter())
            .zip(b.par_iter())
            .zip(c.par_iter())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((((d, x), y), z), &m)| {
                if m {
                    *d = f(x, y, z);
                }
            });
    } else {
        for ((((d, x), y), z), &m) in dst.iter_mut().zip(a).zip(b).zip(c).zip(mask) {
            if m {
                *d = f(x, y, z);
            }
        }
    }
}

/// Masked in-place indexed map: `dst[i] = f(i)` wherever `mask[i]`
/// (iota, coordinates, per-VP PRNG).
pub fn apply_index_masked<T, F>(dst: &mut [T], mask: &[bool], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    assert_eq!(dst.len(), mask.len(), "apply_index mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        (0..dst.len())
            .into_par_iter()
            .zip(dst.par_iter_mut())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((i, d), &m)| {
                if m {
                    *d = f(i);
                }
            });
    } else {
        for ((i, d), &m) in dst.iter_mut().enumerate().zip(mask) {
            if m {
                *d = f(i);
            }
        }
    }
}

/// Masked in-place update with index and the previous value:
/// `dst[i] = f(i, dst[i])` wherever `mask[i]` (NEWS shifts with
/// `Border::Keep`, which must preserve the old value at the border).
pub fn update_index_masked<T, F>(dst: &mut [T], mask: &[bool], f: F)
where
    T: Copy + Send + Sync,
    F: Fn(usize, T) -> T + Sync + Send,
{
    assert_eq!(dst.len(), mask.len(), "update_index mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        (0..dst.len())
            .into_par_iter()
            .zip(dst.par_iter_mut())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((i, d), &m)| {
                if m {
                    *d = f(i, *d);
                }
            });
    } else {
        for ((i, d), &m) in dst.iter_mut().enumerate().zip(mask) {
            if m {
                *d = f(i, *d);
            }
        }
    }
}

/// Masked fill: `dst[i] = value` wherever `mask[i]` (`set_imm`).
pub fn fill_masked<T: Copy + Send + Sync>(dst: &mut [T], value: T, mask: &[bool]) {
    assert_eq!(dst.len(), mask.len(), "fill mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|(d, &m)| {
                if m {
                    *d = value;
                }
            });
    } else {
        for (d, &m) in dst.iter_mut().zip(mask) {
            if m {
                *d = value;
            }
        }
    }
}

/// Masked gather: `dst[i] = src[addrs[i]]` wherever `mask[i]` — the
/// router's **get** inner loop. Addresses at active positions must be in
/// bounds (the router validates before calling).
pub fn gather_masked<T: Copy + Send + Sync>(
    dst: &mut [T],
    src: &[T],
    addrs: &[i64],
    mask: &[bool],
) {
    assert_eq!(dst.len(), addrs.len(), "gather address length mismatch");
    assert_eq!(dst.len(), mask.len(), "gather mask length mismatch");
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut()
            .zip(addrs.par_iter())
            .zip(mask.par_iter())
            .with_min_len(CHUNK_MIN)
            .for_each(|((d, &a), &m)| {
                if m {
                    *d = src[a as usize];
                }
            });
    } else {
        for ((d, &a), &m) in dst.iter_mut().zip(addrs).zip(mask) {
            if m {
                *d = src[a as usize];
            }
        }
    }
}

/// Unmasked fill: `dst[i] = value` everywhere.
pub fn fill<T: Copy + Send + Sync>(dst: &mut [T], value: T) {
    if dst.len() >= PAR_THRESHOLD {
        dst.par_iter_mut().with_min_len(CHUNK_MIN).for_each(|d| *d = value);
    } else {
        dst.iter_mut().for_each(|d| *d = value);
    }
}

/// Parallel existence test over two slices: does `f(a[i], b[i])` hold
/// anywhere? The boolean answer is chunking-independent, so callers that
/// need a *deterministic witness* (e.g. the first offending router
/// address) re-scan sequentially after a `true` answer.
pub fn any2<A, B, F>(a: &[A], b: &[B], f: F) -> bool
where
    A: Sync,
    B: Sync,
    F: Fn(&A, &B) -> bool + Sync,
{
    assert_eq!(a.len(), b.len(), "any2 length mismatch");
    if a.len() < PAR_THRESHOLD {
        return a.iter().zip(b).any(|(x, y)| f(x, y));
    }
    let mut hits = [false; MAX_CHUNKS];
    let n = map_chunks_into(a.len(), &mut hits, |r| r.into_iter().any(|i| f(&a[i], &b[i])));
    hits[..n].iter().any(|&hit| hit)
}

/// Parallel fold of the `mask`-active elements of `v` with an associative
/// `fold`, starting from `id`: per-chunk folds run on the pool (partials
/// landing in a stack array), then the partials are folded in chunk
/// order. Chunk layout is [`chunk_at`], so the association — and hence
/// even float results — is identical for any thread count.
pub fn fold_active<T, F>(v: &[T], mask: &[bool], id: T, fold: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    assert_eq!(v.len(), mask.len(), "fold mask length mismatch");
    if v.len() < PAR_THRESHOLD {
        return v
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .fold(id, |acc, (&x, _)| fold(acc, x));
    }
    let mut parts = [id; MAX_CHUNKS];
    let n = map_chunks_into(v.len(), &mut parts, |r| {
        r.into_iter()
            .filter(|&i| mask[i])
            .fold(id, |acc, i| fold(acc, v[i]))
    });
    parts[..n].iter().fold(id, |acc, &x| fold(acc, x))
}

/// Index of the first `mask`-active element, scanning chunks in parallel.
pub fn first_active(mask: &[bool]) -> Option<usize> {
    if mask.len() < PAR_THRESHOLD {
        return mask.iter().position(|&m| m);
    }
    let mut parts = [None; MAX_CHUNKS];
    let n = map_chunks_into(mask.len(), &mut parts, |r| r.into_iter().find(|&i| mask[i]));
    parts[..n].iter().find_map(|&hit| hit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map1_small_and_large() {
        let small: Vec<i64> = (0..100).collect();
        assert_eq!(map1(&small, |&x| x + 1)[99], 100);
        let large: Vec<i64> = (0..(PAR_THRESHOLD as i64 + 5)).collect();
        let out = map1(&large, |&x| x * 2);
        assert_eq!(out.len(), large.len());
        assert_eq!(out[PAR_THRESHOLD], 2 * PAR_THRESHOLD as i64);
    }

    #[test]
    fn map2_and_map3() {
        let a = vec![1i64, 2, 3];
        let b = vec![10i64, 20, 30];
        let c = vec![true, false, true];
        assert_eq!(map2(&a, &b, |x, y| x + y), vec![11, 22, 33]);
        assert_eq!(map3(&a, &b, &c, |x, y, &m| if m { *x } else { *y }), vec![1, 20, 3]);
    }

    #[test]
    fn map_index_identity() {
        assert_eq!(map_index(4, |i| i as i64), vec![0, 1, 2, 3]);
    }

    #[test]
    fn commit_respects_mask() {
        let mut d = vec![0i64; 4];
        commit_masked(&mut d, &[1, 2, 3, 4], &[true, false, true, false]);
        assert_eq!(d, vec![1, 0, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn map2_length_mismatch_panics() {
        map2(&[1], &[1, 2], |a: &i32, b: &i32| a + b);
    }

    #[test]
    fn chunks_cover_exactly() {
        for len in [0usize, 1, CHUNK_MIN - 1, CHUNK_MIN, PAR_THRESHOLD, 1 << 16, (1 << 16) + 7] {
            let n = chunk_count(len);
            assert!(n <= MAX_CHUNKS);
            let mut next = 0;
            for k in 0..n {
                let r = chunk_at(len, k);
                assert_eq!(r.start, next, "contiguous at len={len}");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len, "covers 0..len for len={len}");
        }
    }

    #[test]
    fn map_chunks_into_orders_partials() {
        let len = PAR_THRESHOLD + 17;
        let mut parts = [0usize; MAX_CHUNKS];
        let n = map_chunks_into(len, &mut parts, |r| r.len());
        assert_eq!(n, chunk_count(len));
        assert_eq!(parts[..n].iter().sum::<usize>(), len);
        for (k, &got) in parts[..n].iter().enumerate() {
            assert_eq!(got, chunk_at(len, k).len());
        }
    }

    #[test]
    fn gather_and_fill() {
        let mut d = vec![0i64; 4];
        gather_masked(&mut d, &[10, 20, 30], &[2, 0, 1, 2], &[true, true, false, true]);
        assert_eq!(d, vec![30, 10, 0, 30]);
        fill(&mut d, 7);
        assert_eq!(d, vec![7; 4]);
    }

    #[test]
    fn any2_small_and_large() {
        let a: Vec<i64> = (0..(PAR_THRESHOLD as i64 + 3)).collect();
        let b = vec![0i64; a.len()];
        assert!(any2(&a, &b, |&x, _| x == PAR_THRESHOLD as i64));
        assert!(!any2(&a, &b, |&x, _| x < 0));
        assert!(any2(&a[..3], &b[..3], |&x, &y| x > y));
    }

    #[test]
    fn fold_active_matches_sequential() {
        let n = PAR_THRESHOLD + 123;
        let v: Vec<i64> = (0..n as i64).collect();
        let mask: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let par = fold_active(&v, &mask, 0i64, |a, b| a.wrapping_add(b));
        let seq: i64 = v.iter().zip(&mask).filter(|(_, &m)| m).map(|(&x, _)| x).sum();
        assert_eq!(par, seq);
        assert_eq!(fold_active(&v, &vec![false; n], i64::MAX, i64::min), i64::MAX);
    }

    #[test]
    fn first_active_finds_first() {
        let n = PAR_THRESHOLD + 50;
        let mut mask = vec![false; n];
        assert_eq!(first_active(&mask), None);
        mask[n - 2] = true;
        assert_eq!(first_active(&mask), Some(n - 2));
        mask[3] = true;
        assert_eq!(first_active(&mask), Some(3));
        assert_eq!(first_active(&[false, true]), Some(1));
    }

    #[test]
    fn for_each_chunk_mut_writes_disjoint_chunks() {
        for len in [10usize, PAR_THRESHOLD + 33] {
            let mut data = vec![0usize; len];
            for_each_chunk_mut(&mut data, |k, r, chunk| {
                assert_eq!(chunk.len(), r.len());
                for (off, d) in chunk.iter_mut().enumerate() {
                    *d = k * 1_000_000 + r.start + off;
                }
            });
            for (i, &x) in data.iter().enumerate() {
                let k = if len < PAR_THRESHOLD { 0 } else { i / chunk_at(len, 0).len() };
                assert_eq!(x, k * 1_000_000 + i, "slot {i}");
            }
        }
    }
}
