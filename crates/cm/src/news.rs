//! NEWS-grid communication.
//!
//! The CM-2 arranges processors in a grid; each can exchange data with its
//! North/East/West/South neighbours far more cheaply than through the
//! general router. The simulator generalises this to any axis of the VP-set
//! geometry and any constant offset (offset ±1 is one NEWS hop; larger
//! offsets model repeated hops but are charged once — the UC compiler emits
//! power-of-two shift chains itself where it matters).

use crate::cost::OpClass;
use crate::field::{FieldData, FieldId};
use crate::machine::Machine;
use crate::par;
use crate::{CmError, Result, Scalar};

/// What an off-grid fetch produces for non-toroidal shifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Border {
    /// Coordinates wrap around (toroidal grid).
    Wrap,
    /// Off-grid fetches yield this value.
    Fill(Scalar),
    /// Off-grid positions keep their previous destination value.
    Keep,
}

impl Machine {
    /// NEWS fetch: for every active VP `p`, `dst[p] = src[q]` where `q` is
    /// the VP `offset` steps along `axis` from `p` (so `offset = +1` makes
    /// `dst[i] = src[i+1]` along that axis).
    ///
    /// `dst` and `src` must live on the same VP set and share a type.
    pub fn news_shift(
        &mut self,
        dst: FieldId,
        src: FieldId,
        axis: usize,
        offset: i64,
        border: Border,
    ) -> Result<()> {
        if dst.vp != src.vp {
            return Err(CmError::VpSetMismatch);
        }
        self.vp(dst.vp)?.geom.extent(axis)?; // validate axis
        let size = self.vp(dst.vp)?.geom.size();

        let dst_ty = self.field(dst)?.elem_type();
        let src_ty = self.field(src)?.elem_type();
        if dst_ty != src_ty {
            return Err(CmError::TypeMismatch { expected: dst_ty, found: src_ty });
        }
        if let Border::Fill(s) = border {
            if s.elem_type() != dst_ty {
                return Err(CmError::TypeMismatch { expected: dst_ty, found: s.elem_type() });
            }
        }

        // An in-place shift reads a scratch copy of the pre-shift values.
        let tmp = if src == dst { Some(self.scratch_copy(dst)?) } else { None };
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let geom = peers.geom(dst.vp)?;
            let sdata =
                if src == dst { tmp.as_ref().expect("alias copied") } else { peers.src(src)? };
            // The source address of destination VP `p`; `None` is off-grid
            // (resolved per the border policy). Resolved on the fly — no
            // precomputed address vector.
            let source = |p: usize| -> Option<usize> {
                match border {
                    Border::Wrap => {
                        Some(geom.neighbor_wrap(p, axis, offset).expect("axis checked"))
                    }
                    _ => geom.neighbor(p, axis, offset).expect("axis checked"),
                }
            };
            macro_rules! shift {
                ($variant:ident, $fill:expr) => {{
                    let FieldData::$variant(d) = d else { unreachable!() };
                    let FieldData::$variant(s) = sdata else { unreachable!() };
                    let fill = $fill;
                    par::update_index_masked(d, mask, |p, old| match source(p) {
                        Some(q) => s[q],
                        // Border::Keep retains the old destination value.
                        None => fill.unwrap_or(old),
                    });
                }};
            }
            match dst_ty {
                crate::field::ElemType::Int => shift!(
                    I64,
                    match border {
                        Border::Fill(s) => Some(s.as_int()),
                        _ => None,
                    }
                ),
                crate::field::ElemType::Float => shift!(
                    F64,
                    match border {
                        Border::Fill(s) => Some(s.as_float()),
                        _ => None,
                    }
                ),
                crate::field::ElemType::Bool => shift!(
                    Bool,
                    match border {
                        Border::Fill(s) => Some(s.as_bool()),
                        _ => None,
                    }
                ),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res?;

        self.tick(OpClass::News, size)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn line(n: usize) -> (Machine, FieldId, FieldId) {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        m.iota(a).unwrap();
        (m, a, b)
    }

    #[test]
    fn shift_right_fetches_left_neighbor() {
        let (mut m, a, b) = line(4);
        // b[i] = a[i-1], border filled with -1
        m.news_shift(b, a, 0, -1, Border::Fill(Scalar::Int(-1))).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[-1, 0, 1, 2]);
    }

    #[test]
    fn shift_left_fetches_right_neighbor() {
        let (mut m, a, b) = line(4);
        m.news_shift(b, a, 0, 1, Border::Fill(Scalar::Int(99))).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[1, 2, 3, 99]);
    }

    #[test]
    fn wrap_is_toroidal() {
        let (mut m, a, b) = line(4);
        m.news_shift(b, a, 0, 1, Border::Wrap).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[1, 2, 3, 0]);
        m.news_shift(b, a, 0, -1, Border::Wrap).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[3, 0, 1, 2]);
    }

    #[test]
    fn keep_leaves_border_untouched() {
        let (mut m, a, b) = line(3);
        m.set_imm(b, Scalar::Int(7)).unwrap();
        m.news_shift(b, a, 0, 1, Border::Keep).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[1, 2, 7]);
    }

    #[test]
    fn two_dimensional_axes() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("g", &[2, 3]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let b = m.alloc_int(vp, "b").unwrap();
        m.iota(a).unwrap(); // [0 1 2; 3 4 5]
        m.news_shift(b, a, 0, 1, Border::Fill(Scalar::Int(0))).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[3, 4, 5, 0, 0, 0]);
        m.news_shift(b, a, 1, -1, Border::Fill(Scalar::Int(0))).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[0, 0, 1, 0, 3, 4]);
    }

    #[test]
    fn context_masks_news_writes() {
        let (mut m, a, b) = line(4);
        let vp = a.vp_set();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false])).unwrap();
        m.set_imm(b, Scalar::Int(-7)).unwrap();
        m.push_context(mask).unwrap();
        m.news_shift(b, a, 0, 1, Border::Wrap).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.int_data(b).unwrap(), &[1, -7, 3, -7]);
    }

    #[test]
    fn errors() {
        let (mut m, a, b) = line(4);
        assert!(m.news_shift(b, a, 1, 1, Border::Wrap).is_err(), "bad axis");
        let f = m.alloc_float(a.vp_set(), "f").unwrap();
        assert!(m.news_shift(f, a, 0, 1, Border::Wrap).is_err(), "type mismatch");
        assert!(
            m.news_shift(f, a, 0, 1, Border::Fill(Scalar::Int(0))).is_err(),
            "fill type mismatch"
        );
    }

    #[test]
    fn news_charges_news_class() {
        let (mut m, a, b) = line(4);
        let before = m.counters().news;
        m.news_shift(b, a, 0, 1, Border::Wrap).unwrap();
        assert_eq!(m.counters().news, before + 1);
    }
}
