//! The general router.
//!
//! The CM router lets any processor read from or write to any other
//! processor's memory, with optional combining of colliding messages. It is
//! the expensive communication path (see [`crate::cost`]): the UC mapping
//! optimizations of §4 of the paper exist precisely to turn router traffic
//! into local or NEWS traffic.
//!
//! Delivery is deterministic: messages are combined in increasing order of
//! the sender's send address, so `Combine::Overwrite` means "highest-
//! addressed active sender wins" and every combiner gives reproducible
//! results even for non-commutative uses.

use crate::cost::OpClass;
use crate::field::{ElemType, FieldData, FieldId};
use crate::machine::Machine;
use crate::par;
use crate::{CmError, Result};

/// Validate that every *active* address targets `size`. The existence
/// test fans out on the thread pool; on failure the first offender is
/// re-found sequentially so the reported address never depends on the
/// thread count.
fn check_addrs(addrs: &[i64], mask: &[bool], size: usize) -> Result<()> {
    let out_of_range = |a: i64| a < 0 || a as usize >= size;
    if par::any2(addrs, mask, |&a, &m| m && out_of_range(a)) {
        for (&a, &m) in addrs.iter().zip(mask) {
            if m && out_of_range(a) {
                return Err(CmError::AddressOutOfRange { addr: a, size });
            }
        }
        unreachable!("parallel and sequential bounds scans disagree");
    }
    Ok(())
}

/// How colliding messages to one destination VP are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Combine {
    /// Last message (in sender order) wins.
    Overwrite,
    Add,
    Mul,
    Min,
    Max,
    /// Logical OR (bool fields only).
    Or,
    /// Logical AND (bool fields only).
    And,
}

impl Machine {
    /// Router **send**: for every VP `i` active on the *source* VP set,
    /// deliver `src[i]` to `dst[addr[i]]`, combining collisions with
    /// `combine`. `src` and `addr` share a VP set; `dst` may live on a
    /// different VP set (this is how arrays on differently-shaped UC index
    /// sets exchange data). Destination VPs that receive no message keep
    /// their old value regardless of their own context.
    pub fn send(&mut self, dst: FieldId, addr: FieldId, src: FieldId, combine: Combine) -> Result<()> {
        self.send_detect(dst, addr, src, combine)?;
        Ok(())
    }

    /// Like [`Machine::send`] but also reports whether two active senders
    /// delivered *distinct* values to the same destination VP. UC uses this
    /// to enforce the `par` rule that multiple assignments to one variable
    /// must assign identical values.
    pub fn send_detect(
        &mut self,
        dst: FieldId,
        addr: FieldId,
        src: FieldId,
        combine: Combine,
    ) -> Result<bool> {
        if src.vp != addr.vp {
            return Err(CmError::VpSetMismatch);
        }
        let src_size = self.vp_size(src.vp)?;
        let dst_size = self.vp_size(dst.vp)?;
        let dst_ty = self.field(dst)?.elem_type();
        let src_ty = self.field(src)?.elem_type();
        if dst_ty != src_ty {
            return Err(CmError::TypeMismatch { expected: dst_ty, found: src_ty });
        }
        {
            // Address validation borrows the address field and the sender
            // mask side by side; nothing is copied.
            let addrs = self.int_data(addr)?;
            let mask = self.vp(src.vp)?.context.current();
            check_addrs(addrs, mask, dst_size)?;
        }
        let combiner_ok = matches!(
            (src_ty, combine),
            (
                ElemType::Int | ElemType::Float,
                Combine::Overwrite | Combine::Add | Combine::Mul | Combine::Min | Combine::Max
            ) | (ElemType::Bool, Combine::Or | Combine::And | Combine::Overwrite)
        );
        if !combiner_ok {
            return Err(CmError::Unsupported("combiner not defined for this field type"));
        }

        // Any alias (src and/or addr equal to dst) is de-aliased with one
        // scratch copy: aliased operands are all the same field as dst.
        let mut hit = self.scratch.take_bools_zeroed(dst_size);
        let tmp = if src == dst || addr == dst { Some(self.scratch_copy(dst)?) } else { None };

        // Delivery is simulated sequentially in sender order: combining
        // order is part of the documented semantics (`Overwrite` = last
        // sender wins), so the combining loop must not be parallelised —
        // only the address validation above fans out.
        let mut conflict = false;
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(src.vp)?;
            let addr_data =
                if addr == dst { tmp.as_ref().expect("alias copied") } else { peers.src(addr)? };
            let FieldData::I64(addrs) = addr_data else { unreachable!("addr type checked") };
            let values =
                if src == dst { tmp.as_ref().expect("alias copied") } else { peers.src(src)? };
            macro_rules! deliver {
                ($variant:ident, $combine_fn:expr) => {{
                    let FieldData::$variant(d) = d else { unreachable!() };
                    let FieldData::$variant(values) = values else { unreachable!() };
                    for i in 0..src_size {
                        if !mask[i] {
                            continue;
                        }
                        let a = addrs[i] as usize;
                        let v = values[i];
                        if hit[a] {
                            if d[a] != v {
                                conflict = true;
                            }
                            d[a] = $combine_fn(d[a], v);
                        } else {
                            d[a] = v;
                            hit[a] = true;
                        }
                    }
                }};
            }
            match (src_ty, combine) {
                (ElemType::Int, Combine::Overwrite) => deliver!(I64, |_old, new| new),
                (ElemType::Int, Combine::Add) => deliver!(I64, |o: i64, n: i64| o.wrapping_add(n)),
                (ElemType::Int, Combine::Mul) => deliver!(I64, |o: i64, n: i64| o.wrapping_mul(n)),
                (ElemType::Int, Combine::Min) => deliver!(I64, |o: i64, n: i64| o.min(n)),
                (ElemType::Int, Combine::Max) => deliver!(I64, |o: i64, n: i64| o.max(n)),
                (ElemType::Float, Combine::Overwrite) => deliver!(F64, |_o, n| n),
                (ElemType::Float, Combine::Add) => deliver!(F64, |o: f64, n: f64| o + n),
                (ElemType::Float, Combine::Mul) => deliver!(F64, |o: f64, n: f64| o * n),
                (ElemType::Float, Combine::Min) => deliver!(F64, |o: f64, n: f64| o.min(n)),
                (ElemType::Float, Combine::Max) => deliver!(F64, |o: f64, n: f64| o.max(n)),
                (ElemType::Bool, Combine::Or) => deliver!(Bool, |o, n| o || n),
                (ElemType::Bool, Combine::And) => deliver!(Bool, |o, n| o && n),
                (ElemType::Bool, Combine::Overwrite) => deliver!(Bool, |_o, n| n),
                _ => unreachable!("combiner validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        self.scratch.put_bools(hit);
        res?;

        self.tick(OpClass::Router, src_size.max(dst_size))?;
        Ok(conflict)
    }

    /// Router **get**: for every VP `i` active on the *destination* VP set,
    /// `dst[i] = src[addr[i]]`. `dst` and `addr` share a VP set; `src` may
    /// live elsewhere. This is the CM's general gather and what a UC
    /// expression like `a[f(i)]` compiles to when `f(i)` is not a local or
    /// NEWS-regular access.
    pub fn get(&mut self, dst: FieldId, addr: FieldId, src: FieldId) -> Result<()> {
        if dst.vp != addr.vp {
            return Err(CmError::VpSetMismatch);
        }
        let dst_size = self.vp_size(dst.vp)?;
        let src_size = self.vp_size(src.vp)?;
        let dst_ty = self.field(dst)?.elem_type();
        let src_ty = self.field(src)?.elem_type();
        if dst_ty != src_ty {
            return Err(CmError::TypeMismatch { expected: dst_ty, found: src_ty });
        }
        {
            let addrs = self.int_data(addr)?;
            let mask = self.vp(dst.vp)?.context.current();
            check_addrs(addrs, mask, src_size)?;
        }

        let tmp = if src == dst || addr == dst { Some(self.scratch_copy(dst)?) } else { None };
        // Unlike send, the gather has no collisions — every destination
        // reads independently — so it fans out on the thread pool.
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let addr_data =
                if addr == dst { tmp.as_ref().expect("alias copied") } else { peers.src(addr)? };
            let FieldData::I64(addrs) = addr_data else { unreachable!("addr type checked") };
            let values =
                if src == dst { tmp.as_ref().expect("alias copied") } else { peers.src(src)? };
            match (d, values) {
                (FieldData::I64(d), FieldData::I64(v)) => par::gather_masked(d, v, addrs, mask),
                (FieldData::F64(d), FieldData::F64(v)) => par::gather_masked(d, v, addrs, mask),
                (FieldData::Bool(d), FieldData::Bool(v)) => par::gather_masked(d, v, addrs, mask),
                _ => unreachable!("types validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res?;

        self.tick(OpClass::Router, dst_size.max(src_size))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::Scalar;

    #[test]
    fn send_permutation() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.iota(src).unwrap(); // 0 1 2 3
        // reverse permutation: addr[i] = 3 - i
        m.iota(addr).unwrap();
        m.binop_imm_l(crate::ops::BinOp::Sub, addr, Scalar::Int(3), addr).unwrap();
        let conflict = m.send_detect(dst, addr, src, Combine::Overwrite).unwrap();
        assert!(!conflict);
        assert_eq!(m.int_data(dst).unwrap(), &[3, 2, 1, 0]);
    }

    #[test]
    fn send_combines_collisions() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.iota(src).unwrap();
        m.set_imm(addr, Scalar::Int(0)).unwrap(); // everyone sends to VP 0
        m.set_imm(dst, Scalar::Int(-1)).unwrap();
        m.send(dst, addr, src, Combine::Add).unwrap();
        assert_eq!(m.read_elem(dst, 0).unwrap(), Scalar::Int(6)); // 0+1+2+3, not -1
        m.send(dst, addr, src, Combine::Max).unwrap();
        assert_eq!(m.read_elem(dst, 0).unwrap(), Scalar::Int(3));
        m.send(dst, addr, src, Combine::Min).unwrap();
        assert_eq!(m.read_elem(dst, 0).unwrap(), Scalar::Int(0));
        let conflict = m.send_detect(dst, addr, src, Combine::Overwrite).unwrap();
        assert!(conflict, "distinct values to one address must be flagged");
        assert_eq!(m.read_elem(dst, 0).unwrap(), Scalar::Int(3)); // last sender wins
    }

    #[test]
    fn identical_values_no_conflict() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.set_imm(src, Scalar::Int(7)).unwrap();
        m.set_imm(addr, Scalar::Int(2)).unwrap();
        let conflict = m.send_detect(dst, addr, src, Combine::Overwrite).unwrap();
        assert!(!conflict);
        assert_eq!(m.read_elem(dst, 2).unwrap(), Scalar::Int(7));
    }

    #[test]
    fn inactive_senders_do_not_send() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.iota(src).unwrap();
        m.iota(addr).unwrap();
        m.set_imm(dst, Scalar::Int(-1)).unwrap();
        m.write_all(mask, FieldData::Bool(vec![false, true, false, true])).unwrap();
        m.push_context(mask).unwrap();
        m.send(dst, addr, src, Combine::Overwrite).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.int_data(dst).unwrap(), &[-1, 1, -1, 3]);
    }

    #[test]
    fn get_gathers() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.iota(src).unwrap();
        m.binop_imm(crate::ops::BinOp::Mul, src, src, Scalar::Int(10)).unwrap(); // 0 10 20 30
        m.set_imm(addr, Scalar::Int(2)).unwrap();
        m.get(dst, addr, src).unwrap();
        assert_eq!(m.int_data(dst).unwrap(), &[20, 20, 20, 20]);
    }

    #[test]
    fn cross_vp_set_transfer() {
        let mut m = Machine::with_defaults();
        let v1 = m.new_vp_set("v1", &[2, 3]).unwrap();
        let v2 = m.new_vp_set("v2", &[3]).unwrap();
        let src = m.alloc_int(v2, "s").unwrap();
        m.iota(src).unwrap();
        m.binop_imm(crate::ops::BinOp::Add, src, src, Scalar::Int(100)).unwrap();
        // Gather the k-th element of v2 into column k of v1.
        let addr = m.alloc_int(v1, "a").unwrap();
        let dst = m.alloc_int(v1, "d").unwrap();
        m.axis_coord(addr, 1).unwrap();
        m.get(dst, addr, src).unwrap();
        assert_eq!(m.int_data(dst).unwrap(), &[100, 101, 102, 100, 101, 102]);
        // And scatter a row of v1 back to v2.
        let a2 = m.alloc_int(v2, "a2").unwrap();
        let d2 = m.alloc_int(v2, "d2").unwrap();
        m.iota(a2).unwrap();
        let s2 = m.alloc_int(v2, "s2").unwrap();
        m.set_imm(s2, Scalar::Int(5)).unwrap();
        m.send(d2, a2, s2, Combine::Overwrite).unwrap();
        assert_eq!(m.int_data(d2).unwrap(), &[5, 5, 5]);
    }

    #[test]
    fn address_bounds_checked() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[2]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.set_imm(addr, Scalar::Int(5)).unwrap();
        assert!(matches!(
            m.send(dst, addr, src, Combine::Overwrite),
            Err(CmError::AddressOutOfRange { .. })
        ));
        assert!(matches!(m.get(dst, addr, src), Err(CmError::AddressOutOfRange { .. })));
        m.set_imm(addr, Scalar::Int(-1)).unwrap();
        assert!(matches!(
            m.send(dst, addr, src, Combine::Overwrite),
            Err(CmError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn send_mul_combiner() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.iota(src).unwrap();
        m.binop_imm(crate::ops::BinOp::Add, src, src, Scalar::Int(1)).unwrap(); // 1 2 3 4
        m.set_imm(addr, Scalar::Int(0)).unwrap();
        m.send(dst, addr, src, Combine::Mul).unwrap();
        assert_eq!(m.read_elem(dst, 0).unwrap(), Scalar::Int(24));
        // Float mul combine too.
        let fs = m.alloc_float(vp, "fs").unwrap();
        let fd = m.alloc_float(vp, "fd").unwrap();
        m.write_all(fs, FieldData::F64(vec![2.0, 0.5, 3.0, 1.0])).unwrap();
        m.send(fd, addr, fs, Combine::Mul).unwrap();
        assert_eq!(m.read_elem(fd, 0).unwrap(), Scalar::Float(3.0));
    }

    #[test]
    fn bool_send_with_or_combiner() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[4]).unwrap();
        let src = m.alloc_bool(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_bool(vp, "d").unwrap();
        m.write_all(src, FieldData::Bool(vec![false, true, false, false])).unwrap();
        m.set_imm(addr, Scalar::Int(1)).unwrap();
        m.send(dst, addr, src, Combine::Or).unwrap();
        assert_eq!(m.read_elem(dst, 1).unwrap(), Scalar::Bool(true));
        m.send(dst, addr, src, Combine::And).unwrap();
        assert_eq!(m.read_elem(dst, 1).unwrap(), Scalar::Bool(false));
        // Arithmetic combiners are undefined on bool fields.
        assert!(m.send(dst, addr, src, Combine::Add).is_err());
    }

    #[test]
    fn router_is_expensive() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[16]).unwrap();
        let src = m.alloc_int(vp, "s").unwrap();
        let addr = m.alloc_int(vp, "a").unwrap();
        let dst = m.alloc_int(vp, "d").unwrap();
        m.iota(addr).unwrap();
        m.reset_clock();
        m.send(dst, addr, src, Combine::Overwrite).unwrap();
        let router_cycles = m.cycles();
        m.reset_clock();
        m.binop(crate::ops::BinOp::Add, dst, src, src).unwrap();
        let alu_cycles = m.cycles();
        assert!(router_cycles > 5 * alu_cycles);
    }
}
