//! Per-VP memory fields.
//!
//! A *field* is one named slot of local memory replicated across every
//! virtual processor of a VP set — the CM analogue of "an array mapped one
//! element per processor". Fields are strongly typed; UC integers map to
//! `i64`, UC floats to `f64`, and test results to `bool`.

use crate::machine::VpSetId;

/// Element type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    Int,
    Float,
    Bool,
}

/// The storage of one field: a homogeneous vector with one element per VP.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldData {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
}

impl FieldData {
    /// Allocate zero-initialised storage of the given type and length.
    pub fn zeroed(ty: ElemType, len: usize) -> Self {
        match ty {
            ElemType::Int => FieldData::I64(vec![0; len]),
            ElemType::Float => FieldData::F64(vec![0.0; len]),
            ElemType::Bool => FieldData::Bool(vec![false; len]),
        }
    }

    /// The element type of this storage.
    pub fn elem_type(&self) -> ElemType {
        match self {
            FieldData::I64(_) => ElemType::Int,
            FieldData::F64(_) => ElemType::Float,
            FieldData::Bool(_) => ElemType::Bool,
        }
    }

    /// Number of elements (= VP-set size).
    pub fn len(&self) -> usize {
        match self {
            FieldData::I64(v) => v.len(),
            FieldData::F64(v) => v.len(),
            FieldData::Bool(v) => v.len(),
        }
    }

    /// Whether the field has no elements (never true for a live VP set).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overwrite `self` with `src`'s contents, reusing the existing
    /// capacity (no heap allocation once the capacity fits). Panics on a
    /// variant mismatch; callers type-check first.
    pub(crate) fn clone_from_reusing(&mut self, src: &FieldData) {
        match (self, src) {
            (FieldData::I64(d), FieldData::I64(s)) => {
                d.clear();
                d.extend_from_slice(s);
            }
            (FieldData::F64(d), FieldData::F64(s)) => {
                d.clear();
                d.extend_from_slice(s);
            }
            (FieldData::Bool(d), FieldData::Bool(s)) => {
                d.clear();
                d.extend_from_slice(s);
            }
            _ => unreachable!("clone_from_reusing across element types"),
        }
    }
}

/// A field: named, typed, per-VP storage belonging to one VP set.
#[derive(Debug, Clone)]
pub struct Field {
    pub(crate) name: String,
    pub(crate) data: FieldData,
}

impl Field {
    /// Test-only constructor; `Machine::alloc` builds fields from pooled
    /// storage instead.
    #[cfg(test)]
    pub(crate) fn new(name: &str, ty: ElemType, len: usize) -> Self {
        Field { name: name.to_string(), data: FieldData::zeroed(ty, len) }
    }

    /// The debug name given at allocation time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element type.
    pub fn elem_type(&self) -> ElemType {
        self.data.elem_type()
    }
}

/// Handle to a field. Carries its VP set so cross-set misuse is caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldId {
    pub(crate) vp: VpSetId,
    pub(crate) index: usize,
}

impl FieldId {
    /// The VP set this field lives on.
    pub fn vp_set(&self) -> VpSetId {
        self.vp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_storage() {
        let d = FieldData::zeroed(ElemType::Int, 4);
        assert_eq!(d, FieldData::I64(vec![0; 4]));
        assert_eq!(d.elem_type(), ElemType::Int);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());

        let d = FieldData::zeroed(ElemType::Float, 2);
        assert_eq!(d.elem_type(), ElemType::Float);
        let d = FieldData::zeroed(ElemType::Bool, 3);
        assert_eq!(d.elem_type(), ElemType::Bool);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn field_metadata() {
        let f = Field::new("rank", ElemType::Int, 8);
        assert_eq!(f.name(), "rank");
        assert_eq!(f.elem_type(), ElemType::Int);
    }
}
