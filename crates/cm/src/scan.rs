//! Global reductions and parallel-prefix scans.
//!
//! The CM-2 had hardware support for reductions ("global" operations) and
//! scans along the NEWS ordering. UC's reduction operator `$op(...)`
//! bottoms out here. Reductions are computed over the *active* VPs only,
//! and return the operator's identity when no VP is active — exactly the
//! paper's rule ("the identity value is returned when the reduction
//! operator is applied to an empty set of operands").
//!
//! Above `par::PAR_THRESHOLD` both primitives run on the host thread
//! pool: reductions fold [`par::chunk_at`] chunks in parallel and
//! combine the per-chunk results in chunk order, and unsegmented scans use
//! the classic two-pass blocked algorithm (parallel per-chunk folds, a
//! sequential exclusive scan of the chunk sums, then a parallel per-chunk
//! prefix pass seeded with each chunk's carry). The chunk layout is a pure
//! function of the VP-set size, so results — including float scans, which
//! are sensitive to association order — are bit-identical for any
//! `UC_THREADS` setting. Segmented scans stay sequential (segment
//! restarts make the carry non-uniform and they are rare in practice).

use crate::cost::OpClass;
use crate::field::{ElemType, FieldData, FieldId};
use crate::machine::Machine;
use crate::par;
use crate::{CmError, Result, Scalar};

/// The UC reduction operators of §3.2 of the paper.
///
/// `And`/`Or`/`Xor` are *logical* (the paper's `&&`, `||`, `^` reductions):
/// on integer fields they treat operands as C truth values and yield 0/1.
/// `Arb` is the paper's `$,` — "value of an arbitrary operand"; this
/// simulator deterministically picks the lowest-addressed active operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Add,
    Mul,
    Min,
    Max,
    And,
    Or,
    Xor,
    Arb,
}

/// The paper's predefined `INF` constant for integer reductions.
pub const INT_INF: i64 = i64::MAX;
/// Negative infinity for integer max-reductions.
pub const INT_NEG_INF: i64 = i64::MIN;

impl ReduceOp {
    /// Identity value of the operator for a given element type
    /// (the paper's table in §3.2).
    pub fn identity(self, ty: ElemType) -> Scalar {
        match (self, ty) {
            (ReduceOp::Add, ElemType::Int) => Scalar::Int(0),
            (ReduceOp::Add, ElemType::Float) => Scalar::Float(0.0),
            (ReduceOp::Mul, ElemType::Int) => Scalar::Int(1),
            (ReduceOp::Mul, ElemType::Float) => Scalar::Float(1.0),
            (ReduceOp::Min, ElemType::Int) => Scalar::Int(INT_INF),
            (ReduceOp::Min, ElemType::Float) => Scalar::Float(f64::INFINITY),
            (ReduceOp::Max, ElemType::Int) => Scalar::Int(INT_NEG_INF),
            (ReduceOp::Max, ElemType::Float) => Scalar::Float(f64::NEG_INFINITY),
            (ReduceOp::And, ElemType::Int) => Scalar::Int(1),
            (ReduceOp::Or, ElemType::Int) => Scalar::Int(0),
            (ReduceOp::Xor, ElemType::Int) => Scalar::Int(0),
            (ReduceOp::And, _) => Scalar::Bool(true),
            (ReduceOp::Or, _) => Scalar::Bool(false),
            (ReduceOp::Xor, _) => Scalar::Bool(false),
            (ReduceOp::Arb, ElemType::Int) => Scalar::Int(INT_INF),
            (ReduceOp::Arb, ElemType::Float) => Scalar::Float(f64::INFINITY),
            (_, ElemType::Bool) => Scalar::Bool(false),
        }
    }
}

impl Machine {
    /// Reduce the active elements of `src` with `op`, returning a
    /// front-end scalar. Empty active set ⇒ the operator identity.
    pub fn reduce(&mut self, src: FieldId, op: ReduceOp) -> Result<Scalar> {
        let size = self.vp_size(src.vp)?;
        let result = {
            // Mask and data are two shared borrows; nothing is copied.
            let mask = self.vp(src.vp)?.context.current();
            match &self.field(src)?.data {
                FieldData::I64(v) => reduce_int(v, mask, op),
                FieldData::F64(v) => reduce_float(v, mask, op)?,
                FieldData::Bool(v) => reduce_bool(v, mask, op)?,
            }
        };
        self.tick(OpClass::Scan, size)?;
        Ok(result)
    }

    /// Reduce then broadcast into `dst` (under `dst`'s context). `dst` may
    /// live on a different VP set than `src`.
    pub fn reduce_spread(&mut self, dst: FieldId, src: FieldId, op: ReduceOp) -> Result<()> {
        let s = self.reduce(src, op)?;
        let dst_ty = self.field(dst)?.elem_type();
        let coerced = match dst_ty {
            ElemType::Int => Scalar::Int(s.as_int()),
            ElemType::Float => Scalar::Float(s.as_float()),
            ElemType::Bool => Scalar::Bool(s.as_bool()),
        };
        self.set_imm(dst, coerced)
    }

    /// Prefix scan in send-address order over the **active** elements of
    /// `src`: inactive positions neither contribute nor receive. With
    /// `inclusive = false` each active element receives the fold of the
    /// active elements strictly before it (identity for the first).
    ///
    /// `segments`, if given, is a bool field whose `true` bits restart the
    /// scan (segmented scan, a CM-2 hardware primitive).
    pub fn scan(
        &mut self,
        dst: FieldId,
        src: FieldId,
        op: ReduceOp,
        inclusive: bool,
        segments: Option<FieldId>,
    ) -> Result<()> {
        if dst.vp != src.vp {
            return Err(CmError::VpSetMismatch);
        }
        let size = self.vp_size(src.vp)?;
        let dst_ty = self.field(dst)?.elem_type();
        let src_ty = self.field(src)?.elem_type();
        if dst_ty != src_ty {
            return Err(CmError::TypeMismatch { expected: dst_ty, found: src_ty });
        }
        if let Some(s) = segments {
            if s.vp != src.vp {
                return Err(CmError::VpSetMismatch);
            }
            self.bool_data(s)?; // type check
        }
        let op_ok = match src_ty {
            ElemType::Int | ElemType::Float => {
                matches!(op, ReduceOp::Add | ReduceOp::Mul | ReduceOp::Min | ReduceOp::Max)
            }
            ElemType::Bool => matches!(op, ReduceOp::Or | ReduceOp::And | ReduceOp::Xor),
        };
        if !op_ok {
            return Err(CmError::Unsupported(match src_ty {
                ElemType::Int => "scan op on int field",
                ElemType::Float => "scan op on float field",
                ElemType::Bool => "scan op on bool field",
            }));
        }

        // Any aliased operand (source or segment field equal to dst) reads
        // a single scratch copy of dst's pre-scan contents.
        let aliased = src == dst || segments == Some(dst);
        let tmp = if aliased { Some(self.scratch_copy(dst)?) } else { None };
        let res: Result<()> = (|| {
            let (d, peers) = self.split_dst(dst)?;
            let mask = peers.mask(dst.vp)?;
            let sdata =
                if src == dst { tmp.as_ref().expect("alias copied") } else { peers.src(src)? };
            let segs: Option<&[bool]> = match segments {
                Some(s) => {
                    let sd =
                        if s == dst { tmp.as_ref().expect("alias copied") } else { peers.src(s)? };
                    let FieldData::Bool(sv) = sd else { unreachable!("seg type checked") };
                    Some(sv.as_slice())
                }
                None => None,
            };
            macro_rules! scan_impl {
                ($variant:ident, $id:expr, $fold:expr) => {{
                    let FieldData::$variant(d) = d else { unreachable!() };
                    let FieldData::$variant(v) = sdata else { unreachable!() };
                    scan_values_into(d, v, mask, segs, $id, $fold, inclusive);
                }};
            }
            match (src_ty, op) {
                (ElemType::Int, ReduceOp::Add) => {
                    scan_impl!(I64, 0i64, |a: i64, b: i64| a.wrapping_add(b))
                }
                (ElemType::Int, ReduceOp::Mul) => {
                    scan_impl!(I64, 1i64, |a: i64, b: i64| a.wrapping_mul(b))
                }
                (ElemType::Int, ReduceOp::Min) => {
                    scan_impl!(I64, INT_INF, |a: i64, b: i64| a.min(b))
                }
                (ElemType::Int, ReduceOp::Max) => {
                    scan_impl!(I64, INT_NEG_INF, |a: i64, b: i64| a.max(b))
                }
                (ElemType::Float, ReduceOp::Add) => {
                    scan_impl!(F64, 0.0f64, |a: f64, b: f64| a + b)
                }
                (ElemType::Float, ReduceOp::Mul) => {
                    scan_impl!(F64, 1.0f64, |a: f64, b: f64| a * b)
                }
                (ElemType::Float, ReduceOp::Min) => {
                    scan_impl!(F64, f64::INFINITY, |a: f64, b: f64| a.min(b))
                }
                (ElemType::Float, ReduceOp::Max) => {
                    scan_impl!(F64, f64::NEG_INFINITY, |a: f64, b: f64| a.max(b))
                }
                (ElemType::Bool, ReduceOp::Or) => {
                    scan_impl!(Bool, false, |a: bool, b: bool| a || b)
                }
                (ElemType::Bool, ReduceOp::And) => {
                    scan_impl!(Bool, true, |a: bool, b: bool| a && b)
                }
                (ElemType::Bool, ReduceOp::Xor) => {
                    scan_impl!(Bool, false, |a: bool, b: bool| a ^ b)
                }
                _ => unreachable!("op validated above"),
            }
            Ok(())
        })();
        if let Some(t) = tmp {
            self.scratch.put_data(t);
        }
        res?;

        self.tick(OpClass::Scan, size)?;
        Ok(())
    }
}

/// Prefix-scan the active elements of `v` directly into `out` (the
/// destination field's storage): only active positions are written, so
/// inactive destinations keep their old values with no separate
/// commit pass. Unsegmented scans of at least `par::PAR_THRESHOLD`
/// elements use the blocked two-pass algorithm over [`par::chunk_at`]
/// chunks; chunk layout depends only on `v.len()`, keeping results
/// thread-count-invariant. Below the threshold (and for segmented scans)
/// the sequential path runs and allocates nothing.
fn scan_values_into<T>(
    out: &mut [T],
    v: &[T],
    mask: &[bool],
    segs: Option<&[bool]>,
    id: T,
    fold: impl Fn(T, T) -> T + Sync,
    inclusive: bool,
) where
    T: Copy + Send + Sync,
{
    let size = v.len();
    if segs.is_none() && size >= par::PAR_THRESHOLD && par::chunk_count(size) > 1 {
        // Pass 1: fold each chunk's active elements (partials in a
        // stack array — the blocked path allocates nothing).
        let mut sums = [id; par::MAX_CHUNKS];
        let n = par::map_chunks_into(size, &mut sums, |r| {
            r.into_iter().filter(|&i| mask[i]).fold(id, |acc, i| fold(acc, v[i]))
        });
        // Exclusive scan of the chunk sums: chunk k's carry-in.
        let mut carries = [id; par::MAX_CHUNKS];
        let mut acc = id;
        for k in 0..n {
            carries[k] = acc;
            acc = fold(acc, sums[k]);
        }
        // Pass 2: sequential prefix inside each chunk, seeded by its
        // carry, chunks running in parallel on the pool.
        par::for_each_chunk_mut(out, |k, r, chunk| {
            let mut acc = carries[k];
            for (off, slot) in chunk.iter_mut().enumerate() {
                let i = r.start + off;
                if mask[i] {
                    if inclusive {
                        acc = fold(acc, v[i]);
                        *slot = acc;
                    } else {
                        *slot = acc;
                        acc = fold(acc, v[i]);
                    }
                }
            }
        });
        return;
    }
    let mut acc = id;
    for i in 0..size {
        if let Some(sg) = segs {
            if sg[i] {
                acc = id;
            }
        }
        if mask[i] {
            if inclusive {
                acc = fold(acc, v[i]);
                out[i] = acc;
            } else {
                out[i] = acc;
                acc = fold(acc, v[i]);
            }
        }
    }
}

fn reduce_int(v: &[i64], mask: &[bool], op: ReduceOp) -> Scalar {
    match op {
        ReduceOp::Add => Scalar::Int(par::fold_active(v, mask, 0i64, |a, b| a.wrapping_add(b))),
        ReduceOp::Mul => Scalar::Int(par::fold_active(v, mask, 1i64, |a, b| a.wrapping_mul(b))),
        ReduceOp::Min => Scalar::Int(par::fold_active(v, mask, INT_INF, i64::min)),
        ReduceOp::Max => Scalar::Int(par::fold_active(v, mask, INT_NEG_INF, i64::max)),
        // Logical reductions treat operands as C truth values; the 0/1
        // partials combine with the same fold, so chunking is transparent.
        ReduceOp::And => {
            Scalar::Int(par::fold_active(v, mask, 1i64, |a, b| (a != 0 && b != 0) as i64))
        }
        ReduceOp::Or => {
            Scalar::Int(par::fold_active(v, mask, 0i64, |a, b| (a != 0 || b != 0) as i64))
        }
        ReduceOp::Xor => {
            Scalar::Int(par::fold_active(v, mask, 0i64, |a, b| ((a != 0) ^ (b != 0)) as i64))
        }
        ReduceOp::Arb => {
            Scalar::Int(par::first_active(mask).map_or(INT_INF, |i| v[i]))
        }
    }
}

fn reduce_float(v: &[f64], mask: &[bool], op: ReduceOp) -> Result<Scalar> {
    Ok(match op {
        ReduceOp::Add => Scalar::Float(par::fold_active(v, mask, 0.0, |a, b| a + b)),
        ReduceOp::Mul => Scalar::Float(par::fold_active(v, mask, 1.0, |a, b| a * b)),
        ReduceOp::Min => Scalar::Float(par::fold_active(v, mask, f64::INFINITY, f64::min)),
        ReduceOp::Max => {
            Scalar::Float(par::fold_active(v, mask, f64::NEG_INFINITY, f64::max))
        }
        ReduceOp::Arb => {
            Scalar::Float(par::first_active(mask).map_or(f64::INFINITY, |i| v[i]))
        }
        _ => return Err(CmError::Unsupported("logical reduction on float field")),
    })
}

fn reduce_bool(v: &[bool], mask: &[bool], op: ReduceOp) -> Result<Scalar> {
    Ok(match op {
        ReduceOp::And => Scalar::Bool(par::fold_active(v, mask, true, |a, b| a && b)),
        ReduceOp::Or => Scalar::Bool(par::fold_active(v, mask, false, |a, b| a || b)),
        ReduceOp::Xor => Scalar::Bool(par::fold_active(v, mask, false, |a, b| a ^ b)),
        ReduceOp::Arb => Scalar::Bool(par::first_active(mask).is_some_and(|i| v[i])),
        _ => return Err(CmError::Unsupported("arithmetic reduction on bool field")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::ops::BinOp;

    fn setup(n: usize) -> (Machine, FieldId) {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        m.iota(a).unwrap();
        (m, a)
    }

    #[test]
    fn basic_reductions() {
        let (mut m, a) = setup(5); // 0..4
        assert_eq!(m.reduce(a, ReduceOp::Add).unwrap(), Scalar::Int(10));
        assert_eq!(m.reduce(a, ReduceOp::Max).unwrap(), Scalar::Int(4));
        assert_eq!(m.reduce(a, ReduceOp::Min).unwrap(), Scalar::Int(0));
        assert_eq!(m.reduce(a, ReduceOp::Mul).unwrap(), Scalar::Int(0));
        assert_eq!(m.reduce(a, ReduceOp::Arb).unwrap(), Scalar::Int(0));
        assert_eq!(m.reduce(a, ReduceOp::Or).unwrap(), Scalar::Int(1));
        assert_eq!(m.reduce(a, ReduceOp::And).unwrap(), Scalar::Int(0)); // 0 is false
    }

    #[test]
    fn empty_active_set_yields_identity() {
        let (mut m, a) = setup(4);
        let vp = a.vp_set();
        let none = m.alloc_bool(vp, "none").unwrap(); // all false
        m.push_context(none).unwrap();
        assert_eq!(m.reduce(a, ReduceOp::Add).unwrap(), Scalar::Int(0));
        assert_eq!(m.reduce(a, ReduceOp::Min).unwrap(), Scalar::Int(INT_INF));
        assert_eq!(m.reduce(a, ReduceOp::Max).unwrap(), Scalar::Int(INT_NEG_INF));
        assert_eq!(m.reduce(a, ReduceOp::Mul).unwrap(), Scalar::Int(1));
        assert_eq!(m.reduce(a, ReduceOp::And).unwrap(), Scalar::Int(1));
        assert_eq!(m.reduce(a, ReduceOp::Arb).unwrap(), Scalar::Int(INT_INF));
        m.pop_context(vp).unwrap();
    }

    #[test]
    fn masked_reduction() {
        let (mut m, a) = setup(6);
        let vp = a.vp_set();
        let even = m.alloc_bool(vp, "even").unwrap();
        let t = m.alloc_int(vp, "t").unwrap();
        m.binop_imm(BinOp::Mod, t, a, Scalar::Int(2)).unwrap();
        m.binop_imm(BinOp::Eq, even, t, Scalar::Int(0)).unwrap();
        m.push_context(even).unwrap();
        assert_eq!(m.reduce(a, ReduceOp::Add).unwrap(), Scalar::Int(2 + 4));
        m.pop_context(vp).unwrap();
    }

    #[test]
    fn float_reductions() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[3]).unwrap();
        let f = m.alloc_float(vp, "f").unwrap();
        m.write_all(f, FieldData::F64(vec![1.5, -2.0, 4.0])).unwrap();
        assert_eq!(m.reduce(f, ReduceOp::Add).unwrap(), Scalar::Float(3.5));
        assert_eq!(m.reduce(f, ReduceOp::Min).unwrap(), Scalar::Float(-2.0));
        assert_eq!(m.reduce(f, ReduceOp::Mul).unwrap(), Scalar::Float(-12.0));
        assert!(m.reduce(f, ReduceOp::Xor).is_err());
    }

    #[test]
    fn bool_reductions() {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[3]).unwrap();
        let b = m.alloc_bool(vp, "b").unwrap();
        m.write_all(b, FieldData::Bool(vec![true, false, true])).unwrap();
        assert_eq!(m.reduce(b, ReduceOp::Or).unwrap(), Scalar::Bool(true));
        assert_eq!(m.reduce(b, ReduceOp::And).unwrap(), Scalar::Bool(false));
        assert_eq!(m.reduce(b, ReduceOp::Xor).unwrap(), Scalar::Bool(false)); // parity of 2
        assert_eq!(m.reduce(b, ReduceOp::Arb).unwrap(), Scalar::Bool(true));
        assert!(m.reduce(b, ReduceOp::Add).is_err());
    }

    #[test]
    fn reduce_spread_broadcasts() {
        let (mut m, a) = setup(4);
        let vp = a.vp_set();
        let d = m.alloc_int(vp, "d").unwrap();
        m.reduce_spread(d, a, ReduceOp::Add).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[6, 6, 6, 6]);
        // Spread into a float field coerces.
        let f = m.alloc_float(vp, "f").unwrap();
        m.reduce_spread(f, a, ReduceOp::Max).unwrap();
        assert_eq!(m.float_data(f).unwrap(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn inclusive_and_exclusive_scans() {
        let (mut m, a) = setup(4); // 0 1 2 3
        let vp = a.vp_set();
        let d = m.alloc_int(vp, "d").unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 3, 6]);
        m.scan(d, a, ReduceOp::Add, false, None).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 0, 1, 3]);
        m.scan(d, a, ReduceOp::Max, true, None).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 2, 3]);
    }

    #[test]
    fn masked_scan_skips_inactive() {
        let (mut m, a) = setup(5); // 0 1 2 3 4
        let vp = a.vp_set();
        let d = m.alloc_int(vp, "d").unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        m.set_imm(d, Scalar::Int(-1)).unwrap();
        m.write_all(mask, FieldData::Bool(vec![true, false, true, false, true])).unwrap();
        m.push_context(mask).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        m.pop_context(vp).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, -1, 2, -1, 6]);
    }

    #[test]
    fn segmented_scan_restarts() {
        let (mut m, a) = setup(6); // 0 1 2 3 4 5
        let vp = a.vp_set();
        let d = m.alloc_int(vp, "d").unwrap();
        let seg = m.alloc_bool(vp, "seg").unwrap();
        m.write_all(seg, FieldData::Bool(vec![true, false, false, true, false, false]))
            .unwrap();
        m.scan(d, a, ReduceOp::Add, true, Some(seg)).unwrap();
        assert_eq!(m.int_data(d).unwrap(), &[0, 1, 3, 3, 7, 12]);
    }

    #[test]
    fn scan_type_checks() {
        let (mut m, a) = setup(3);
        let vp = a.vp_set();
        let f = m.alloc_float(vp, "f").unwrap();
        assert!(m.scan(f, a, ReduceOp::Add, true, None).is_err());
        let b = m.alloc_bool(vp, "b").unwrap();
        let d = m.alloc_bool(vp, "d").unwrap();
        m.scan(d, b, ReduceOp::Or, true, None).unwrap();
        assert!(m.scan(d, b, ReduceOp::Add, true, None).is_err());
    }

    /// Blocked parallel scans and reductions must agree exactly with the
    /// sequential definition above the parallel threshold.
    #[test]
    fn large_scan_matches_sequential_reference() {
        let n = crate::par::PAR_THRESHOLD + 257;
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_int(vp, "a").unwrap();
        let d = m.alloc_int(vp, "d").unwrap();
        let mask = m.alloc_bool(vp, "m").unwrap();
        let data: Vec<i64> = (0..n as i64).map(|x| (x * 7919) % 1000 - 500).collect();
        let mbits: Vec<bool> = (0..n).map(|i| i % 5 != 3).collect();
        m.write_all(a, FieldData::I64(data.clone())).unwrap();
        m.write_all(mask, FieldData::Bool(mbits.clone())).unwrap();
        m.push_context(mask).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        let got_scan = m.int_data(d).unwrap().to_vec();
        let got_sum = m.reduce(a, ReduceOp::Add).unwrap();
        let got_min = m.reduce(a, ReduceOp::Min).unwrap();
        let got_arb = m.reduce(a, ReduceOp::Arb).unwrap();
        m.pop_context(vp).unwrap();

        let mut acc = 0i64;
        let mut want_scan = vec![0i64; n];
        for i in 0..n {
            if mbits[i] {
                acc = acc.wrapping_add(data[i]);
                want_scan[i] = acc;
            }
        }
        for i in 0..n {
            if mbits[i] {
                assert_eq!(got_scan[i], want_scan[i], "scan diverges at {i}");
            }
        }
        let active = || data.iter().zip(&mbits).filter(|(_, &m)| m).map(|(&x, _)| x);
        assert_eq!(got_sum, Scalar::Int(active().fold(0i64, |a, b| a.wrapping_add(b))));
        assert_eq!(got_min, Scalar::Int(active().fold(INT_INF, i64::min)));
        assert_eq!(got_arb, Scalar::Int(active().next().unwrap()));
    }

    /// Float scans associate by chunk above the threshold; the result must
    /// nevertheless be identical run-to-run (chunking depends on the size
    /// alone). Compare against an explicitly chunk-folded reference.
    #[test]
    fn large_float_scan_is_reproducible() {
        let n = crate::par::PAR_THRESHOLD + 11;
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("v", &[n]).unwrap();
        let a = m.alloc_float(vp, "a").unwrap();
        let d = m.alloc_float(vp, "d").unwrap();
        let data: Vec<f64> = (0..n).map(|i| ((i * 37) % 97) as f64 * 0.125 - 6.0).collect();
        m.write_all(a, FieldData::F64(data.clone())).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        let first = m.float_data(d).unwrap().to_vec();
        let sum1 = m.reduce(a, ReduceOp::Add).unwrap();
        m.scan(d, a, ReduceOp::Add, true, None).unwrap();
        assert_eq!(first, m.float_data(d).unwrap());
        assert_eq!(sum1, m.reduce(a, ReduceOp::Add).unwrap());
    }
}
