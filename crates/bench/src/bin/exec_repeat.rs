//! Regenerate the executor-backend A/B: compile-once/run-many wall
//! clock for the Figure 6/7 kernels under the AST tree-walker and the
//! compiled register IR, measured back to back in one process. Usage:
//! `exec_repeat [--json]`.

fn main() {
    let ns = [4, 8, 16];
    let fig = uc_bench::exec_repeat(&ns, 50);
    print!("{}", uc_bench::render(&fig));
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
