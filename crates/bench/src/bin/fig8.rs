//! Regenerate Figure 8: grid shortest path with the Figure 11 obstacle —
//! sequential C, `-O` sequential C, and UC on the 16K CM.
//!
//! The paper sweeps rows up to ~120; the sequential curves blow up while
//! the CM curve stays nearly flat until the VP ratio exceeds 1.
//! Usage: `fig8 [--json]`.

fn main() {
    let sizes = [8, 16, 24, 32, 48, 64, 96, 128];
    let fig = uc_bench::fig8(&sizes);
    print!("{}", uc_bench::render(&fig));
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
