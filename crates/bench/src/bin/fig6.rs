//! Regenerate Figure 6: shortest path, O(N²) parallelism, UC vs C*.
//!
//! The paper sweeps the node count up to 32 on a 16K CM-2 and shows the
//! two curves tracking each other. Usage: `fig6 [--json]`.

fn main() {
    let ns = [4, 8, 12, 16, 20, 24, 28, 32];
    let fig = uc_bench::fig6(&ns);
    print!("{}", uc_bench::render(&fig));
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
