//! Regenerate Figure 7: shortest path, O(N³) parallelism, UC vs C*.
//!
//! Same sweep as Figure 6 but with the log-round min-reduction algorithm
//! (Figure 5 / Figure 10 of the paper). Usage: `fig7 [--json]`.

fn main() {
    let ns = [4, 8, 12, 16, 20, 24, 28, 32];
    let fig = uc_bench::fig7(&ns);
    print!("{}", uc_bench::render(&fig));
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
