//! The §4 processor-optimization ablation: the digit-histogram reduction
//! with the optimization on (N virtual processors) vs off (10·N).
//!
//! Usage: `procopt_ablation [--json]`.

fn main() {
    let ns = [256, 1024, 4096, 16384];
    let fig = uc_bench::procopt_ablation(&ns);
    print!("{}", uc_bench::render(&fig));
    let on = fig.series[0].points.last().unwrap().1 as f64;
    let off = fig.series[1].points.last().unwrap().1 as f64;
    println!("\nspeed-up at N=16384: {:.1}x", off / on);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
