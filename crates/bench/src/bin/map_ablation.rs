//! The §4 mapping ablation behind the paper's "improved by a factor of
//! 10, simply by specifying an efficient mapping" claim.
//!
//! Sweeps the shifted-access kernel `a[i] = a[i] + b[i+1]` under three
//! regimes: unoptimized (router), default mapping (NEWS) and the permute
//! mapping of §4 (local). Usage: `map_ablation [--json]`.

fn main() {
    // 32768 and 65536 exceed the 16K physical machine: the VP-ratio kink
    // appears in all three series.
    let ns = [256, 1024, 4096, 16384, 32768, 65536];
    let fig = uc_bench::map_ablation(&ns, 64);
    print!("{}", uc_bench::render(&fig));
    let at_16k = 3; // index of N=16384
    let router = fig.series[0].points[at_16k].1 as f64;
    let local = fig.series[2].points[at_16k].1 as f64;
    println!("\nrouter/local speed-up at N=16384: {:.1}x", router / local);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", uc_bench::to_json(&fig));
    }
}
