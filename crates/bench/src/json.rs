//! Hand-rolled JSON for [`Figure`](crate::Figure) dumps.
//!
//! The build environment has no registry access, so instead of
//! serde/serde_json this module prints and parses the one fixed schema the
//! figure harness needs. The emitted layout matches what
//! `serde_json::to_string_pretty` would produce for the same structs, so
//! downstream consumers of EXPERIMENTS.md dumps see no difference.

use crate::{Figure, Series};

// ---- serialisation -------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Pretty-print a figure (2-space indent, serde_json-compatible).
pub fn to_string_pretty(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"id\": \"{}\",\n", escape(&fig.id)));
    out.push_str(&format!("  \"title\": \"{}\",\n", escape(&fig.title)));
    out.push_str(&format!("  \"x_label\": \"{}\",\n", escape(&fig.x_label)));
    out.push_str("  \"series\": [");
    for (si, s) in fig.series.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", escape(&s.label)));
        out.push_str("      \"points\": [");
        for (pi, (x, y)) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n        [\n          {x},\n          {y}\n        ]"));
        }
        if !s.points.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !fig.series.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

// ---- parsing -------------------------------------------------------------

/// Minimal recursive-descent JSON value: figures round-trip through it,
/// and other workspace tools (e.g. `uc check --format json`) use it to
/// validate their output against a real parse.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse any JSON value (the schema-free counterpart of [`from_str`]).
pub fn parse_value(s: &str) -> Result<Value, String> {
    let mut parser = Parser::new(s);
    let v = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing data");
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("invalid \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected number");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>().map(Value::Num).map_err(|e| e.to_string())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Result<&'v Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn as_str(v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!("expected string, got {other:?}")),
    }
}

fn as_u64(v: &Value) -> Result<u64, String> {
    match v {
        Value::Num(n) => Ok(*n),
        other => Err(format!("expected number, got {other:?}")),
    }
}

fn series_from(v: &Value) -> Result<Series, String> {
    let Value::Obj(fields) = v else {
        return Err(format!("expected series object, got {v:?}"));
    };
    let Value::Arr(raw_points) = get(fields, "points")? else {
        return Err("`points` must be an array".to_string());
    };
    let mut points = Vec::with_capacity(raw_points.len());
    for p in raw_points {
        let Value::Arr(pair) = p else {
            return Err(format!("expected [x, y] point, got {p:?}"));
        };
        if pair.len() != 2 {
            return Err(format!("expected 2-element point, got {} elements", pair.len()));
        }
        points.push((as_u64(&pair[0])? as usize, as_u64(&pair[1])?));
    }
    Ok(Series { label: as_str(get(fields, "label")?)?, points })
}

/// Parse a figure from JSON in the layout [`to_string_pretty`] emits
/// (whitespace-insensitive).
pub fn from_str(s: &str) -> Result<Figure, String> {
    let mut parser = Parser::new(s);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing data");
    }
    let Value::Obj(fields) = &root else {
        return Err("top level must be an object".to_string());
    };
    let Value::Arr(raw_series) = get(fields, "series")? else {
        return Err("`series` must be an array".to_string());
    };
    Ok(Figure {
        id: as_str(get(fields, "id")?)?,
        title: as_str(get(fields, "title")?)?,
        x_label: as_str(get(fields, "x_label")?)?,
        series: raw_series.iter().map(series_from).collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "fig6".into(),
            title: "Shortest \"Path\"".into(),
            x_label: "N\nnodes".into(),
            series: vec![
                Series { label: "UC".into(), points: vec![(4, 100), (8, 400)] },
                Series { label: "C*".into(), points: vec![] },
            ],
        }
    }

    #[test]
    fn roundtrip_with_escapes_and_empty_series() {
        let fig = sample();
        let json = to_string_pretty(&fig);
        assert_eq!(from_str(&json).unwrap(), fig);
    }

    #[test]
    fn parses_compact_layout() {
        let compact = r#"{"id":"t","title":"T","x_label":"n","series":[{"label":"a","points":[[1,10]]}]}"#;
        let fig = from_str(compact).unwrap();
        assert_eq!(fig.series[0].points, vec![(1, 10)]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str(r#"{"id": "t"}"#).is_err());
        assert!(from_str(r#"{"id":"t","title":"T","x_label":"n","series":[{}]}"#).is_err());
    }

    #[test]
    fn parse_value_and_accessors() {
        let v = parse_value(r#"[{"code": "UC101", "line": 3}, {"line": 4}]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("code").and_then(Value::as_str), Some("UC101"));
        assert_eq!(items[0].get("line").and_then(Value::as_u64), Some(3));
        assert_eq!(items[1].get("code"), None);
        assert!(parse_value("[1, 2] trailing").is_err());
    }
}
