//! # uc-bench — the paper's evaluation, regenerated
//!
//! One entry point per figure of §5 of the paper, plus ablations for the
//! §4 optimizations. Each returns a [`Figure`]: labelled series of
//! `(problem size, simulated cycles)` points that can be printed as a
//! table (`render`) or dumped as JSON for EXPERIMENTS.md.
//!
//! Binaries: `fig6`, `fig7`, `fig8`, `map_ablation`, `procopt_ablation`.
//!
//! Methodology (matches the paper):
//! * UC and C\* run on the **same** simulated 16K-processor CM and the
//!   same deterministic input graphs;
//! * cycles count the computation proper — initialisation is measured
//!   separately and subtracted for UC (the C\* programs reset the clock
//!   after initialisation);
//! * the sequential baselines of Figure 8 charge abstract ops in the same
//!   cycle unit (see `uc-seqc`).

use uc_core::{ExecConfig, Program};
use uc_seqc::{grid, oracle, SeqMachine};

pub mod json;

/// One labelled series of (size, cycles) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    pub points: Vec<(usize, u64)>,
}

/// One reproduced figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    pub id: String,
    pub title: String,
    /// What the x axis means ("N nodes", "rows", ...).
    pub x_label: String,
    pub series: Vec<Series>,
}

/// Physical processors of the simulated machine (the paper's 16K CM).
pub const PHYS_PROCS: usize = 16 * 1024;

// ---- UC benchmark programs (verbatim §3 programs with deterministic
// ---- initialisation so UC and C* see identical graphs) -----------------

/// Figure 4's program: APSP, O(N²) parallelism (seq over k).
pub const UC_APSP_N2: &str = r#"
    #define N 8
    index_set I:i = {0..N-1}, J:j = I, K:k = I;
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
        seq (K)
            par (I, J)
                st (d[i][k] + d[k][j] < d[i][j])
                    d[i][j] = d[i][k] + d[k][j];
    }
"#;

/// The initialisation-only prefix of [`UC_APSP_N2`], used to subtract
/// setup cycles from the measurement.
pub const UC_APSP_INIT: &str = r#"
    #define N 8
    index_set I:i = {0..N-1}, J:j = I;
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
    }
"#;

/// Figure 5's program: APSP, O(N³) parallelism (log N min-reduction
/// rounds).
pub const UC_APSP_N3: &str = r#"
    #define N 8
    #define LOGN 3
    index_set I:i = {0..N-1}, J:j = I, K:k = I;
    index_set L:l = {0..LOGN-1};
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
        seq (L)
            par (I, J)
                d[i][j] = $<(K; d[i][k] + d[k][j]);
    }
"#;

/// The grid-goal program with the Figure 11 obstacle (§5's third
/// benchmark): iterate neighbour relaxation to the fixed point with *par.
/// `WALLV` marks obstacle cells; `DMAX` is the unreached sentinel.
pub const UC_GRID_GOAL: &str = r#"
    #define N 16
    #define DMAX 1073741824
    #define WALLV 2147483648
    index_set I:i = {0..N-1}, J:j = I;
    int a[N][N];
    main() {
        par (I, J)
            st (i + j == N - 1 && ABS(i - N/2) <= N/4) a[i][j] = WALLV;
            others a[i][j] = DMAX;
        par (I, J) st (i == 0 && j == 0) a[i][j] = 0;
        *par (I, J)
            st (a[i][j] != WALLV && (i != 0 || j != 0)
                && min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1 < a[i][j])
            a[i][j] = min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1;
    }
"#;

/// Initialisation-only prefix of [`UC_GRID_GOAL`].
pub const UC_GRID_INIT: &str = r#"
    #define N 16
    #define DMAX 1073741824
    #define WALLV 2147483648
    index_set I:i = {0..N-1}, J:j = I;
    int a[N][N];
    main() {
        par (I, J)
            st (i + j == N - 1 && ABS(i - N/2) <= N/4) a[i][j] = WALLV;
            others a[i][j] = DMAX;
        par (I, J) st (i == 0 && j == 0) a[i][j] = 0;
    }
"#;

fn config() -> ExecConfig {
    ExecConfig { phys_procs: PHYS_PROCS, ..ExecConfig::default() }
}

/// Run a UC program with `N` (and optional extra defines), returning
/// total cycles.
pub fn run_uc_cycles(src: &str, defines: &[(&str, i64)]) -> u64 {
    let mut p = Program::compile_with_defines(src, config(), defines)
        .unwrap_or_else(|d| panic!("benchmark program failed to compile:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("benchmark program failed: {e}"));
    p.cycles()
}

/// UC cycles net of initialisation.
pub fn uc_net_cycles(full: &str, init_only: &str, defines: &[(&str, i64)]) -> u64 {
    let total = run_uc_cycles(full, defines);
    let setup = run_uc_cycles(init_only, defines);
    total.saturating_sub(setup)
}

fn log2_ceil(n: usize) -> i64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as i64
    }
}

/// Figure 6: shortest path with O(N²) parallelism, UC vs C\*.
pub fn fig6(ns: &[usize]) -> Figure {
    let mut uc = Series { label: "UC".into(), points: Vec::new() };
    let mut cstar = Series { label: "C*".into(), points: Vec::new() };
    for &n in ns {
        let defines = [("N", n as i64)];
        uc.points.push((n, uc_net_cycles(UC_APSP_N2, UC_APSP_INIT, &defines)));
        let graph = oracle::bench_graph(n);
        let (result, cycles) = uc_cstar::programs::apsp_n2(&graph, n, PHYS_PROCS);
        debug_assert_eq!(result, oracle::floyd_warshall(graph, n));
        cstar.points.push((n, cycles));
    }
    Figure {
        id: "fig6".into(),
        title: "Shortest Path O(N^2) Parallelism".into(),
        x_label: "N (nodes)".into(),
        series: vec![uc, cstar],
    }
}

/// Figure 7: shortest path with O(N³) parallelism, UC vs C\*.
pub fn fig7(ns: &[usize]) -> Figure {
    let mut uc = Series { label: "UC".into(), points: Vec::new() };
    let mut cstar = Series { label: "C*".into(), points: Vec::new() };
    for &n in ns {
        let defines = [("N", n as i64), ("LOGN", log2_ceil(n).max(1))];
        uc.points.push((n, uc_net_cycles(UC_APSP_N3, UC_APSP_INIT, &defines)));
        let graph = oracle::bench_graph(n);
        let (result, cycles) = uc_cstar::programs::apsp_n3(&graph, n, PHYS_PROCS);
        debug_assert_eq!(result, oracle::floyd_warshall(graph, n));
        cstar.points.push((n, cycles));
    }
    Figure {
        id: "fig7".into(),
        title: "Shortest Path O(N^3) Parallelism".into(),
        x_label: "N (nodes)".into(),
        series: vec![uc, cstar],
    }
}

/// Figure 8: grid shortest path with the Figure 11 obstacle — sequential
/// C, optimized sequential C, and UC on the CM.
pub fn fig8(sizes: &[usize]) -> Figure {
    let mut seq = Series { label: "C (sequential)".into(), points: Vec::new() };
    let mut opt = Series { label: "C -O (sequential)".into(), points: Vec::new() };
    let mut uc = Series { label: "UC (16K CM)".into(), points: Vec::new() };
    for &n in sizes {
        let walls = oracle::figure11_walls(n);
        let mut m = SeqMachine::new();
        let run = grid::grid_goal(&mut m, n, n, &walls, 1 << 30);
        seq.points.push((n, run.cycles));
        let mut m = SeqMachine::optimized();
        let run = grid::grid_goal(&mut m, n, n, &walls, 1 << 30);
        opt.points.push((n, run.cycles));
        let defines = [("N", n as i64)];
        uc.points.push((n, uc_net_cycles(UC_GRID_GOAL, UC_GRID_INIT, &defines)));
    }
    Figure {
        id: "fig8".into(),
        title: "Shortest Path with obstacle".into(),
        x_label: "rows".into(),
        series: vec![seq, opt, uc],
    }
}

// ---- §4 ablations -------------------------------------------------------

/// The shifted-access kernel for the mapping ablation: `ITERS` sweeps of
/// `a[i] = a[i] + b[i+1]`.
pub const UC_SHIFT_KERNEL: &str = r#"
    #define N 4096
    #define ITERS 32
    index_set I:i = {0..N-1}, T:t = {0..ITERS-1};
    int a[N], b[N];
    main() {
        par (I) { a[i] = i; b[i] = i * 2; }
        seq (T)
            par (I) st (i < N - 1)
                a[i] = a[i] + b[i+1];
    }
"#;

/// The same kernel with the paper's permute mapping applied.
pub const UC_SHIFT_KERNEL_MAPPED: &str = r#"
    #define N 4096
    #define ITERS 32
    index_set I:i = {0..N-1}, T:t = {0..ITERS-1};
    int a[N], b[N];
    map (I) { permute (I) b[i+1] :- a[i]; }
    main() {
        par (I) { a[i] = i; b[i] = i * 2; }
        seq (T)
            par (I) st (i < N - 1)
                a[i] = a[i] + b[i+1];
    }
"#;

/// Mapping ablation (§4's communication-cost optimization, the "factor
/// of 10" claim): the shifted kernel under three regimes — no access
/// optimization (every access routed), default mapping (NEWS), and the
/// permute mapping (local).
pub fn map_ablation(ns: &[usize], iters: i64) -> Figure {
    let mut router = Series { label: "router (no comm. optimization)".into(), points: Vec::new() };
    let mut news = Series { label: "default mapping (NEWS)".into(), points: Vec::new() };
    let mut local = Series { label: "permute mapping (local)".into(), points: Vec::new() };
    for &n in ns {
        let defines = [("N", n as i64), ("ITERS", iters)];
        let mut cfg = config();
        cfg.optimize_access = false;
        let mut p = Program::compile_with_defines(UC_SHIFT_KERNEL, cfg, &defines).unwrap();
        p.run().unwrap();
        router.points.push((n, p.cycles()));

        news.points.push((n, run_uc_cycles(UC_SHIFT_KERNEL, &defines)));
        local.points.push((n, run_uc_cycles(UC_SHIFT_KERNEL_MAPPED, &defines)));
    }
    Figure {
        id: "map10x".into(),
        title: "Mapping ablation: a[i] = a[i] + b[i+1]".into(),
        x_label: "N (elements)".into(),
        series: vec![router, news, local],
    }
}

/// §4's histogram program for the processor-optimization ablation.
pub const UC_HISTOGRAM: &str = r#"
    #define N 1024
    index_set I:i = {0..N-1}, J:j = {0..9};
    int samples[N];
    int count[10];
    main() {
        par (I) samples[i] = (i * i) % 10;
        par (J)
            count[j] = $+(I st (samples[i] == j) 1);
    }
"#;

/// Processor-optimization ablation (§4's 10·N → N example).
pub fn procopt_ablation(ns: &[usize]) -> Figure {
    let mut on = Series { label: "processor optimization on (N VPs)".into(), points: Vec::new() };
    let mut off =
        Series { label: "processor optimization off (10*N VPs)".into(), points: Vec::new() };
    for &n in ns {
        let defines = [("N", n as i64)];
        on.points.push((n, run_uc_cycles(UC_HISTOGRAM, &defines)));
        let mut cfg = config();
        cfg.procopt = false;
        let mut p = Program::compile_with_defines(UC_HISTOGRAM, cfg, &defines).unwrap();
        p.run().unwrap();
        off.points.push((n, p.cycles()));
    }
    Figure {
        id: "procopt".into(),
        title: "Processor optimization: digit histogram".into(),
        x_label: "N (samples)".into(),
        series: vec![on, off],
    }
}

// ---- executor backend A/B ------------------------------------------------

/// Compile a benchmark program once with an explicitly pinned executor
/// backend (so ambient `UC_EXEC` / `UC_IR_OPT` cannot skew an A/B run).
pub fn compile_pinned(
    src: &str,
    defines: &[(&str, i64)],
    backend: uc_core::ExecBackend,
) -> Program {
    let cfg = ExecConfig {
        backend,
        ir_opt: uc_core::IrOpt::Balanced,
        ..config()
    };
    Program::compile_with_defines(src, cfg, defines)
        .unwrap_or_else(|d| panic!("benchmark program failed to compile:\n{d}"))
}

/// Mean wall-clock nanoseconds per repeat execution: compile (and, for
/// the IR backend, lower + optimize) once, then run `main` `reps` times
/// on the warmed program. This is the serving-loop shape `uc serve`
/// needs — the per-run cost is pure execution, no front-end work.
pub fn repeat_exec_ns(
    src: &str,
    defines: &[(&str, i64)],
    backend: uc_core::ExecBackend,
    reps: u32,
) -> u64 {
    let mut p = compile_pinned(src, defines, backend);
    p.run().unwrap_or_else(|e| panic!("benchmark program failed: {e}"));
    let start = std::time::Instant::now();
    for _ in 0..reps {
        p.run().unwrap_or_else(|e| panic!("benchmark program failed: {e}"));
    }
    (start.elapsed().as_nanos() / u128::from(reps.max(1))) as u64
}

/// Compile-once/run-many throughput of the two executor backends on the
/// Figure 6/7 APSP kernels, measured in the same session so the A/B is
/// honest. Points are mean ns per execution; lower is better.
pub fn exec_repeat(ns: &[usize], reps: u32) -> Figure {
    let mut series = Vec::new();
    for (kernel, src) in [("fig6 O(N^2)", UC_APSP_N2), ("fig7 O(N^3)", UC_APSP_N3)] {
        for (tag, backend) in [
            ("AST walker", uc_core::ExecBackend::Ast),
            ("register IR", uc_core::ExecBackend::Ir),
        ] {
            let mut s =
                Series { label: format!("{kernel} — {tag}"), points: Vec::new() };
            for &n in ns {
                let defines = [("N", n as i64), ("LOGN", log2_ceil(n).max(1))];
                s.points.push((n, repeat_exec_ns(src, &defines, backend, reps)));
            }
            series.push(s);
        }
    }
    Figure {
        id: "exec_repeat".into(),
        title: "Executor backends: mean wall-clock (ns) per repeat execution".into(),
        x_label: "N (nodes)".into(),
        series,
    }
}

// ---- output helpers ------------------------------------------------------

/// Render a figure as an aligned text table.
pub fn render(fig: &Figure) -> String {
    let mut out = format!("# {} ({})\n", fig.title, fig.id);
    out.push_str(&format!("{:>10}", fig.x_label));
    for s in &fig.series {
        out.push_str(&format!("  {:>24}", s.label));
    }
    out.push('\n');
    let npoints = fig.series.first().map(|s| s.points.len()).unwrap_or(0);
    for k in 0..npoints {
        out.push_str(&format!("{:>10}", fig.series[0].points[k].0));
        for s in &fig.series {
            out.push_str(&format!("  {:>24}", s.points[k].1));
        }
        out.push('\n');
    }
    out
}

/// Serialise a figure to pretty JSON.
pub fn to_json(fig: &Figure) -> String {
    json::to_string_pretty(fig)
}

/// Parse a figure back from the JSON that [`to_json`] emits.
pub fn from_json(s: &str) -> Result<Figure, String> {
    json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_uc_matches_cstar_shape() {
        let fig = fig6(&[4, 8]);
        assert_eq!(fig.series.len(), 2);
        let uc = &fig.series[0].points;
        let cs = &fig.series[1].points;
        // Both grow with N.
        assert!(uc[1].1 > uc[0].1);
        assert!(cs[1].1 > cs[0].1);
        // UC within a small constant of C* (the paper: "performance of UC
        // programs matches that of C*").
        for (u, c) in uc.iter().zip(cs) {
            let ratio = u.1 as f64 / c.1 as f64;
            assert!((0.3..6.0).contains(&ratio), "UC/C* ratio {ratio} out of band");
        }
    }

    #[test]
    fn fig8_crossover() {
        let fig = fig8(&[8, 64]);
        let seq = &fig.series[0].points;
        let uc = &fig.series[2].points;
        // Sequential beats the CM at tiny sizes; the CM wins at 64.
        assert!(uc[1].1 < seq[1].1, "CM must win at 64 rows: {uc:?} vs {seq:?}");
        // Sequential grows much faster than the CM curve.
        let seq_growth = seq[1].1 as f64 / seq[0].1 as f64;
        let uc_growth = uc[1].1 as f64 / uc[0].1 as f64;
        assert!(seq_growth > 3.0 * uc_growth, "growth {seq_growth} vs {uc_growth}");
    }

    #[test]
    fn mapping_hierarchy() {
        // Long enough that the per-sweep kernel dominates the one-time
        // (router) initialisation of the re-mapped array.
        let fig = map_ablation(&[1024], 64);
        let router = fig.series[0].points[0].1;
        let news = fig.series[1].points[0].1;
        let local = fig.series[2].points[0].1;
        assert!(local < news, "permute-local must beat NEWS: {local} vs {news}");
        assert!(news < router, "NEWS must beat the router: {news} vs {router}");
        assert!(
            router as f64 / local as f64 >= 6.0,
            "mapping should win ~10x over unoptimized access: {router} vs {local}"
        );
    }

    #[test]
    fn procopt_wins() {
        let fig = procopt_ablation(&[512]);
        let on = fig.series[0].points[0].1;
        let off = fig.series[1].points[0].1;
        assert!(on < off, "procopt must reduce cycles: {on} vs {off}");
    }

    #[test]
    fn render_and_json() {
        let fig = Figure {
            id: "t".into(),
            title: "T".into(),
            x_label: "n".into(),
            series: vec![Series { label: "a".into(), points: vec![(1, 10), (2, 20)] }],
        };
        let text = render(&fig);
        assert!(text.contains("T (t)"));
        assert!(text.contains("10"));
        let json = to_json(&fig);
        let back: Figure = from_json(&json).unwrap();
        assert_eq!(back, fig);
    }
}
