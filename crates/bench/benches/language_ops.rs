//! Criterion micro-benchmarks of the language pipeline itself: compile
//! time and per-construct execution on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::Program;

const RANKSORT: &str = r#"
    #define N 64
    index_set I:i = {0..N-1}, J:j = I;
    int a[N], sorted[N];
    main() {
        par (I) a[i] = (7 * i + 5) % N;
        par (I) {
            int rank;
            rank = $+(J st (a[j] < a[i]) 1);
            sorted[rank] = a[i];
        }
    }
"#;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("compile_ranksort", |b| {
        b.iter(|| black_box(Program::compile(RANKSORT).unwrap()))
    });
    group.bench_function("run_ranksort", |b| {
        b.iter(|| {
            let mut p = Program::compile(RANKSORT).unwrap();
            p.run().unwrap();
            black_box(p.cycles())
        })
    });
    group.finish();
}

fn bench_constructs(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructs");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let cases: &[(&str, &str)] = &[
        (
            "par_assign",
            "#define N 4096\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { par (I) a[i] = i * 3 + 1; }",
        ),
        (
            "reduction",
            "#define N 4096\nindex_set I:i = {0..N-1};\nint a[N], s;\nmain() { par (I) a[i] = i; s = $+(I; a[i]); }",
        ),
        (
            "solve_wavefront",
            "#define N 16\nindex_set I:i = {0..N-1}, J:j = I;\nint a[N][N];\nmain() { solve (I,J) a[i][j] = (i==0||j==0) ? 1 : a[i-1][j] + a[i][j-1]; }",
        ),
    ];
    for (name, src) in cases {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut p = Program::compile(src).unwrap();
                p.run().unwrap();
                black_box(p.cycles())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_constructs);
criterion_main!(benches);
