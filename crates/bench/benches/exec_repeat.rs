//! Criterion bench for compile-once/run-many execution throughput.
//!
//! Each benchmark compiles a Figure 6/7 kernel once — for the IR
//! backend that includes lowering and the pass pipeline — then measures
//! repeat executions of the warmed program. The comparison isolates the
//! front-end interpretation cost (plus the worker-thread spawn the IR
//! backend elides when a program lowers completely) from compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uc_bench::{compile_pinned, UC_APSP_N2, UC_APSP_N3};
use uc_core::ExecBackend;

fn bench_kernel(c: &mut Criterion, group_name: &str, src: &str) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let defines =
            [("N", n as i64), ("LOGN", (usize::BITS - (n - 1).leading_zeros()) as i64)];
        for (tag, backend) in
            [("ast", ExecBackend::Ast), ("ir", ExecBackend::Ir)]
        {
            let mut p = compile_pinned(src, &defines, backend);
            p.run().unwrap();
            group.bench_with_input(
                BenchmarkId::new(tag, n),
                &n,
                |b, _| b.iter(|| p.run().unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    bench_kernel(c, "exec_repeat_fig6", UC_APSP_N2);
}

fn bench_fig7(c: &mut Criterion) {
    bench_kernel(c, "exec_repeat_fig7", UC_APSP_N3);
}

criterion_group!(benches, bench_fig6, bench_fig7);
criterion_main!(benches);
