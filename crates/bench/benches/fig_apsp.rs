//! Criterion bench for Figures 6 and 7: wall-clock of the simulated
//! APSP programs (UC and C*), one benchmark group per figure.
//!
//! The *figures* plot simulated cycles (run the `fig6`/`fig7` binaries);
//! these benches track the simulator's host performance so regressions
//! in the implementation itself are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uc_seqc::oracle;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_apsp_n2");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("uc", n), &n, |b, &n| {
            b.iter(|| {
                black_box(uc_bench::run_uc_cycles(
                    uc_bench::UC_APSP_N2,
                    &[("N", n as i64)],
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("cstar", n), &n, |b, &n| {
            let graph = oracle::bench_graph(n);
            b.iter(|| {
                black_box(uc_cstar::programs::apsp_n2(&graph, n, uc_bench::PHYS_PROCS))
            })
        });
    }
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_apsp_n3");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for n in [8usize, 16] {
        let logn = (usize::BITS - (n - 1).leading_zeros()) as i64;
        group.bench_with_input(BenchmarkId::new("uc", n), &n, |b, &n| {
            b.iter(|| {
                black_box(uc_bench::run_uc_cycles(
                    uc_bench::UC_APSP_N3,
                    &[("N", n as i64), ("LOGN", logn)],
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("cstar", n), &n, |b, &n| {
            let graph = oracle::bench_graph(n);
            b.iter(|| {
                black_box(uc_cstar::programs::apsp_n3(&graph, n, uc_bench::PHYS_PROCS))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6, bench_fig7);
criterion_main!(benches);
