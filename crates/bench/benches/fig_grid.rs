//! Criterion bench for Figure 8: the grid-goal workload across its three
//! implementations (sequential, optimized sequential, UC on the CM) plus
//! the C*-DSL rendition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uc_seqc::{grid, oracle, SeqMachine};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_grid_goal");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 32] {
        let walls = oracle::figure11_walls(n);
        let walls2 = walls.clone();
        let walls3 = walls.clone();
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = SeqMachine::new();
                black_box(grid::grid_goal(&mut m, n, n, &walls, 1 << 30))
            })
        });
        group.bench_with_input(BenchmarkId::new("seq_opt", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = SeqMachine::optimized();
                black_box(grid::grid_goal(&mut m, n, n, &walls2, 1 << 30))
            })
        });
        group.bench_with_input(BenchmarkId::new("uc_cm", n), &n, |b, &n| {
            b.iter(|| {
                black_box(uc_bench::run_uc_cycles(
                    uc_bench::UC_GRID_GOAL,
                    &[("N", n as i64)],
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("cstar_cm", n), &n, |b, &n| {
            b.iter(|| {
                black_box(uc_cstar::programs::grid_goal(
                    n,
                    n,
                    &walls3,
                    1 << 30,
                    uc_bench::PHYS_PROCS,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
