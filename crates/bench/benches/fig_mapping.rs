//! Criterion bench for the §4 ablations: the mapping kernel under its
//! three communication regimes, and the histogram with/without the
//! processor optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::{ExecConfig, Program};

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_ablation");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let defines = [("N", 1024i64), ("ITERS", 32i64)];
    group.bench_function("router", |b| {
        b.iter(|| {
            let cfg = ExecConfig { optimize_access: false, ..ExecConfig::default() };
            let mut p =
                Program::compile_with_defines(uc_bench::UC_SHIFT_KERNEL, cfg, &defines).unwrap();
            p.run().unwrap();
            black_box(p.cycles())
        })
    });
    group.bench_function("news_default", |b| {
        b.iter(|| black_box(uc_bench::run_uc_cycles(uc_bench::UC_SHIFT_KERNEL, &defines)))
    });
    group.bench_function("permute_local", |b| {
        b.iter(|| {
            black_box(uc_bench::run_uc_cycles(uc_bench::UC_SHIFT_KERNEL_MAPPED, &defines))
        })
    });
    group.finish();
}

fn bench_procopt(c: &mut Criterion) {
    let mut group = c.benchmark_group("procopt_ablation");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let defines = [("N", 1024i64)];
    group.bench_function("on", |b| {
        b.iter(|| black_box(uc_bench::run_uc_cycles(uc_bench::UC_HISTOGRAM, &defines)))
    });
    group.bench_function("off", |b| {
        b.iter(|| {
            let cfg = ExecConfig { procopt: false, ..ExecConfig::default() };
            let mut p =
                Program::compile_with_defines(uc_bench::UC_HISTOGRAM, cfg, &defines).unwrap();
            p.run().unwrap();
            black_box(p.cycles())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mapping, bench_procopt);
criterion_main!(benches);
