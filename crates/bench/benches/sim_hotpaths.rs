//! Criterion bench for the simulator's hot paths: router sends/gets and
//! scans are where the CM simulator spends its time for any non-trivial
//! program (see `uc_cm::router` and `uc_cm::scan`). These benches track
//! host wall-clock of those primitives in isolation so optimizations and
//! regressions show up without the compiler pipeline in the way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uc_cm::{BinOp, Combine, Machine, ReduceOp};

fn router_roundtrip(n: usize) -> i64 {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[n]).unwrap();
    let src = m.alloc_int(vp, "src").unwrap();
    let addr = m.alloc_int(vp, "addr").unwrap();
    let dst = m.alloc_int(vp, "dst").unwrap();
    m.iota(src).unwrap();
    // Reverse permutation: addr[i] = n - 1 - i.
    m.binop_imm_l(BinOp::Sub, addr, ((n - 1) as i64).into(), src)
        .unwrap();
    m.send(dst, addr, src, Combine::Overwrite).unwrap();
    m.get(src, addr, dst).unwrap();
    m.reduce(src, ReduceOp::Add).unwrap().as_int()
}

fn scan_chain(n: usize) -> i64 {
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("v", &[n]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    let b = m.alloc_int(vp, "b").unwrap();
    m.iota(a).unwrap();
    m.scan(b, a, ReduceOp::Add, false, None).unwrap();
    m.scan(a, b, ReduceOp::Max, true, None).unwrap();
    m.reduce(a, ReduceOp::Add).unwrap().as_int()
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_hotpath");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 14, 1 << 16] {
        group.bench_with_input(BenchmarkId::new("send_get", n), &n, |b, &n| {
            b.iter(|| black_box(router_roundtrip(n)))
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_hotpath");
    group.sample_size(10);
    for n in [1usize << 10, 1 << 14, 1 << 16] {
        group.bench_with_input(BenchmarkId::new("scan_reduce", n), &n, |b, &n| {
            b.iter(|| black_box(scan_chain(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router, bench_scan);
criterion_main!(benches);
