//! UC120/UC121 — context-mask analysis.
//!
//! UC's constructs narrow the activity context with `st` predicates
//! (§3.4): a constant-false predicate empties the context, so the guarded
//! statement can never execute — the same fact the §4 dead-context
//! elimination uses, reported here instead of silently exploited (UC120,
//! also covering `if (0)` / `while (0)`). UC121 flags index sets —
//! virtual-processor sets — that no construct, reduction, alias or map
//! declaration ever names: they only cost processors (§4 processor
//! optimization).

use std::collections::HashSet;

use super::{const_false, Finding, Pass};
use crate::ast::*;
use crate::sema::Checked;
use crate::span::Span;

pub(crate) struct ContextPass;

impl Pass for ContextPass {
    fn name(&self) -> &'static str {
        "context"
    }

    fn lints(&self) -> &'static [&'static str] {
        &["UC120", "UC121"]
    }

    fn run(&self, checked: &Checked, out: &mut Vec<Finding>) {
        let mut w = Walker { checked, defs: Vec::new(), used: HashSet::new(), out: Vec::new() };
        for item in &checked.unit.items {
            match item {
                Item::IndexSets(defs) => w.sets(defs),
                Item::Func(f) => {
                    for s in &f.body.stmts {
                        w.stmt(s);
                    }
                }
                Item::Map(ms) => {
                    w.use_sets(&ms.idxs);
                    for d in &ms.decls {
                        w.use_sets(&d.idxs);
                    }
                }
                Item::Var(v) => {
                    if let Some(init) = &v.init {
                        w.expr(init);
                    }
                }
            }
        }
        for (name, span) in &w.defs {
            if !w.used.contains(name) {
                w.out.push(Finding {
                    code: "UC121",
                    span: *span,
                    message: format!(
                        "index set `{name}` is never used by any construct, reduction, \
                         alias or map declaration (§4 processor optimization)"
                    ),
                });
            }
        }
        out.append(&mut w.out);
    }
}

struct Walker<'c> {
    checked: &'c Checked,
    /// Every index-set definition seen, with its span.
    defs: Vec<(String, Span)>,
    /// Every index-set name mentioned as a use.
    used: HashSet<String>,
    out: Vec<Finding>,
}

impl<'c> Walker<'c> {
    fn sets(&mut self, defs: &[IndexSetDef]) {
        for def in defs {
            self.defs.push((def.name.clone(), def.span));
            match &def.init {
                IndexSetInit::Alias(src) => {
                    self.used.insert(src.clone());
                }
                IndexSetInit::Range(lo, hi) => {
                    self.expr(lo);
                    self.expr(hi);
                }
                IndexSetInit::List(items) => {
                    for e in items {
                        self.expr(e);
                    }
                }
            }
        }
    }

    fn use_sets(&mut self, idxs: &[String]) {
        for name in idxs {
            self.used.insert(name.clone());
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr(e),
            Stmt::Decl(v) => {
                if let Some(init) = &v.init {
                    self.expr(init);
                }
            }
            Stmt::IndexSets(defs) => self.sets(defs),
            Stmt::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.expr(cond);
                if const_false(cond, self.checked) {
                    self.dead(cond.span(), "`if` condition is constant-false");
                }
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                if const_false(cond, self.checked) {
                    self.dead(cond.span(), "`while` condition is constant-false");
                }
                self.stmt(body);
            }
            Stmt::For { init, cond, step, body, .. } => {
                for e in [init, cond, step].into_iter().flatten() {
                    self.expr(e);
                }
                if let Some(c) = cond {
                    if const_false(c, self.checked) {
                        self.dead(c.span(), "`for` condition is constant-false");
                    }
                }
                self.stmt(body);
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Uc(uc) => {
                self.use_sets(&uc.idxs);
                for arm in &uc.arms {
                    if let Some(p) = &arm.pred {
                        self.expr(p);
                        if const_false(p, self.checked) {
                            self.dead(
                                p.span(),
                                "`st` predicate is constant-false: the context is empty",
                            );
                        }
                    }
                    self.stmt(&arm.body);
                }
                if let Some(o) = &uc.others {
                    self.stmt(o);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
        }
    }

    fn dead(&mut self, span: Span, what: &str) {
        self.out.push(Finding {
            code: "UC120",
            span,
            message: format!("{what}; the guarded statement can never execute (§3.4 context)"),
        });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Index { subs, .. } => {
                for s in subs {
                    self.expr(s);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.expr(cond);
                self.expr(then_e);
                self.expr(else_e);
            }
            Expr::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Expr::Reduce(r) => {
                self.use_sets(&r.idxs);
                for (p, o) in &r.arms {
                    if let Some(p) = p {
                        self.expr(p);
                    }
                    self.expr(o);
                }
                if let Some(o) = &r.others {
                    self.expr(o);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_str, codes_of};
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let checked = check_str(src);
        let mut out = Vec::new();
        ContextPass.run(&checked, &mut out);
        out
    }

    #[test]
    fn constant_false_predicate_is_flagged() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8];\nmain() { par (I) st (0) a[i] = 1; }",
        );
        assert_eq!(codes_of(&f), vec!["UC120"]);
        assert_eq!(f[0].span.line, 3);
    }

    #[test]
    fn constant_false_if_and_while_are_flagged() {
        let f = findings("main() { int x; x = 1; if (0) x = 2; while (1 > 2) x = 3; }");
        assert_eq!(codes_of(&f), vec!["UC120", "UC120"]);
    }

    #[test]
    fn runtime_predicates_are_clean() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8];\n\
             main() { int x; x = 0; if (x) x = 2; par (I) st (a[i] > 0) a[i] = 1; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_set_is_flagged() {
        let f = findings(
            "index_set I:i = {0..7}, J:jj = {0..3};\nint a[8];\nmain() { par (I) a[i] = 1; }",
        );
        assert_eq!(codes_of(&f), vec!["UC121"]);
        assert!(f[0].message.contains("`J`"));
        assert_eq!(f[0].span.line, 1);
    }

    #[test]
    fn reduction_and_alias_uses_count() {
        let f = findings(
            "index_set I:i = {0..7}, J:j = I, K:k = {0..3};\nint a[8], s;\n\
             main() { s = $+(J; a[j]); seq (K) s = s + 1; }",
        );
        // I is used as J's alias source; J by the reduction; K by `seq`.
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn map_section_uses_count() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8], b[8];\n\
             map (I) { permute (I) a[i+1] :- b[i]; }\nmain() { int x; x = 0; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
