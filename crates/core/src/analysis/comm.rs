//! UC110/UC111 — communication-pattern lints.
//!
//! The executor classifies every parallel array access as local, NEWS or
//! general-router traffic (`exec/access.rs`). This pass runs the same
//! symbolic classification *statically* and reports the two cases where a
//! provably-regular pattern still pays router cost — the paper's §4
//! communication-cost optimization, surfaced as a diagnostic instead of
//! silently applied:
//!
//! * **UC110** — every subscript is `axis + constant` on the matching
//!   axis, but two or more axes are displaced (`a[i-1][j-1]`). The
//!   runtime's NEWS fast path handles at most one displaced axis, so the
//!   access takes the router even though it is a regular grid shift.
//! * **UC111** — the pattern is regular but misaligned with the iteration
//!   space: transposed axes (`a[j][i]`) or an array whose shape does not
//!   conform to the space. A `map` declaration (permute/fold/copy) could
//!   turn it into local or NEWS traffic.
//!
//! Only full-rank accesses to default-mapped global arrays are
//! classified; partial-rank gathers (e.g. `a[j]` under a reduction that
//! extended the space) and re-mapped arrays legitimately use the router
//! or follow a different transform.

use super::{contiguous_lo, Finding, Pass, SetScopes};
use crate::ast::*;
use crate::sema::{self, Checked};

pub(crate) struct CommPass;

/// Static mirror of the executor's `IdxForm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SIdx {
    /// `coordinate(axis) + offset` on the current iteration space.
    AxisPlus { axis: usize, offset: i64 },
    Const,
    General,
}

/// How a walked binder relates to the iteration space.
#[derive(Debug, Clone, Copy)]
enum Bind {
    /// Element of a space axis; `lo` is `Some` for contiguous sets
    /// (`coordinate + lo`), mirroring `ElemForm::AxisPlus`.
    Axis { axis: usize, lo: Option<i64> },
    /// Sequentially bound (`seq`/`oneof`/`solve` element): a front-end
    /// value at each step, unknown statically.
    Other,
}

struct Walker<'c> {
    checked: &'c Checked,
    scopes: SetScopes<'c>,
    binders: Vec<(String, Bind)>,
    /// Extents of the current space axes (outer constructs are a prefix,
    /// as in the executor).
    dims: Vec<usize>,
    out: Vec<Finding>,
}

impl Pass for CommPass {
    fn name(&self) -> &'static str {
        "comm"
    }

    fn lints(&self) -> &'static [&'static str] {
        &["UC110", "UC111"]
    }

    fn run(&self, checked: &Checked, out: &mut Vec<Finding>) {
        let mut w = Walker {
            checked,
            scopes: SetScopes::new(checked),
            binders: Vec::new(),
            dims: Vec::new(),
            out: Vec::new(),
        };
        for f in checked.funcs_in_order() {
            w.scopes.push();
            for s in &f.body.stmts {
                w.stmt(s);
            }
            w.scopes.pop();
        }
        out.append(&mut w.out);
    }
}

impl<'c> Walker<'c> {
    fn stmt(&mut self, s: &'c Stmt) {
        match s {
            Stmt::Expr(e) => self.expr(e),
            Stmt::Decl(v) => {
                if let Some(init) = &v.init {
                    self.expr(init);
                }
            }
            Stmt::IndexSets(defs) => self.scopes.define_local(defs),
            Stmt::Block(b) => {
                self.scopes.push();
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.scopes.pop();
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.expr(cond);
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.stmt(body);
            }
            Stmt::For { init, cond, step, body, .. } => {
                for e in [init, cond, step].into_iter().flatten() {
                    self.expr(e);
                }
                self.stmt(body);
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Uc(uc) => {
                let pushed = self.push_sets(&uc.idxs, uc.kind == UcKind::Par);
                for arm in &uc.arms {
                    if let Some(p) = &arm.pred {
                        self.expr(p);
                    }
                    self.stmt(&arm.body);
                }
                if let Some(o) = &uc.others {
                    self.stmt(o);
                }
                self.pop_sets(pushed);
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
        }
    }

    /// Bind the constructs' elements; `parallel` sets extend the space.
    /// Returns (binders pushed, axes pushed).
    fn push_sets(&mut self, idxs: &[String], parallel: bool) -> (usize, usize) {
        let mut pushed = (0, 0);
        for name in idxs {
            let Some(info) = self.scopes.lookup(name) else { continue };
            let bind = if parallel {
                let axis = self.dims.len();
                self.dims.push(info.elements.len());
                pushed.1 += 1;
                Bind::Axis { axis, lo: contiguous_lo(&info.elements) }
            } else {
                Bind::Other
            };
            self.binders.push((info.elem.clone(), bind));
            pushed.0 += 1;
        }
        pushed
    }

    fn pop_sets(&mut self, (binders, axes): (usize, usize)) {
        self.binders.truncate(self.binders.len() - binders);
        self.dims.truncate(self.dims.len() - axes);
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Index { base, subs, span } => {
                self.classify(base, subs, *span);
                for s in subs {
                    self.expr(s);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.expr(cond);
                self.expr(then_e);
                self.expr(else_e);
            }
            Expr::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Expr::Reduce(r) => {
                // A reduction evaluates its operands on the space extended
                // by its own sets, exactly like a nested `par`.
                let pushed = self.push_sets(&r.idxs, true);
                for (p, o) in &r.arms {
                    if let Some(p) = p {
                        self.expr(p);
                    }
                    self.expr(o);
                }
                if let Some(o) = &r.others {
                    self.expr(o);
                }
                self.pop_sets(pushed);
            }
            _ => {}
        }
    }

    /// Static mirror of `Program::symbolic_index`.
    fn idx_form(&self, e: &Expr) -> SIdx {
        if let Expr::Ident(name, _) = e {
            if let Some((_, bind)) = self.binders.iter().rev().find(|(n, _)| n == name) {
                return match bind {
                    Bind::Axis { axis, lo: Some(lo) } => {
                        SIdx::AxisPlus { axis: *axis, offset: *lo }
                    }
                    _ => SIdx::General,
                };
            }
        }
        if sema::const_eval(e, &self.checked.consts).is_ok() {
            return SIdx::Const;
        }
        if let Expr::Binary { op, lhs, rhs, .. } = e {
            let l = self.idx_form(lhs);
            let r = self.idx_form(rhs);
            match (op, l, r) {
                (BinaryOp::Add, SIdx::AxisPlus { axis, offset }, SIdx::Const) => {
                    if let Ok(c) = self.const_of(rhs) {
                        return SIdx::AxisPlus { axis, offset: offset + c };
                    }
                }
                (BinaryOp::Add, SIdx::Const, SIdx::AxisPlus { axis, offset }) => {
                    if let Ok(c) = self.const_of(lhs) {
                        return SIdx::AxisPlus { axis, offset: offset + c };
                    }
                }
                (BinaryOp::Sub, SIdx::AxisPlus { axis, offset }, SIdx::Const) => {
                    if let Ok(c) = self.const_of(rhs) {
                        return SIdx::AxisPlus { axis, offset: offset - c };
                    }
                }
                _ => {}
            }
        }
        SIdx::General
    }

    fn const_of(&self, e: &Expr) -> Result<i64, crate::span::Span> {
        sema::const_eval(e, &self.checked.consts)
    }

    /// Classify one access and report UC110/UC111 when a regular pattern
    /// pays router cost.
    fn classify(&mut self, base: &str, subs: &[Expr], span: crate::span::Span) {
        if self.dims.is_empty() {
            return; // front-end access, no communication
        }
        let Some(info) = self.checked.arrays.get(base) else {
            return; // local array (per-VP or front-end scoped)
        };
        if self.checked.maps.iter().any(|m| m.target.array == base) {
            return; // re-mapped arrays follow their own transform
        }
        // Full-rank only: partial-rank gathers are genuine router traffic.
        if subs.len() != info.shape.len() || subs.len() != self.dims.len() {
            return;
        }
        let forms: Vec<SIdx> = subs.iter().map(|s| self.idx_form(s)).collect();
        if !forms.iter().all(|f| matches!(f, SIdx::AxisPlus { .. })) {
            return;
        }
        let axes: Vec<usize> = forms
            .iter()
            .map(|f| match f {
                SIdx::AxisPlus { axis, .. } => *axis,
                _ => unreachable!(),
            })
            .collect();
        let identity_axes = axes.iter().enumerate().all(|(d, &a)| a == d);
        let conforms = info.shape == self.dims;
        let access = access_text(base, subs);
        if identity_axes && conforms {
            let displaced = forms
                .iter()
                .filter(|f| !matches!(f, SIdx::AxisPlus { offset: 0, .. }))
                .count();
            if displaced > 1 {
                self.out.push(Finding {
                    code: "UC110",
                    span,
                    message: format!(
                        "`{access}` is a regular grid shift on {displaced} axes but goes \
                         through the general router; splitting it into single-axis NEWS \
                         shifts (or a `map permute`) is cheaper (§4 communication cost)"
                    ),
                });
            }
            return; // local or single-axis NEWS: optimal
        }
        // Regular but misaligned. Only flag patterns a `map` declaration
        // could actually align: axes forming a permutation of the space.
        let mut sorted = axes.clone();
        sorted.sort_unstable();
        if sorted.iter().enumerate().any(|(d, &a)| a != d) {
            return; // duplicated/partial axes: a true gather
        }
        let reason = if identity_axes {
            "the array's shape does not conform to the iteration space"
        } else {
            "its axes are transposed relative to the iteration space"
        };
        self.out.push(Finding {
            code: "UC111",
            span,
            message: format!(
                "`{access}` is a regular access pattern but {reason}, so it goes through \
                 the general router; a `map` declaration could make it local or NEWS \
                 (§4 communication cost)"
            ),
        });
    }
}

fn access_text(base: &str, subs: &[Expr]) -> String {
    use std::fmt::Write;
    let mut s = String::from(base);
    for sub in subs {
        let _ = write!(s, "[{}]", crate::pretty::expr(sub));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::super::{check_str, codes_of};
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let checked = check_str(src);
        let mut out = Vec::new();
        CommPass.run(&checked, &mut out);
        out
    }

    const GRID: &str = "index_set I:i = {0..7}, J:j = I;\nint a[8][8], b[8][8];\n";

    #[test]
    fn multi_axis_shift_is_flagged() {
        let f = findings(&format!("{GRID}main() {{ par (I, J) b[i][j] = a[i-1][j-1]; }}"));
        assert_eq!(codes_of(&f), vec!["UC110"]);
        assert!(f[0].message.contains("a[i - 1][j - 1]"), "{}", f[0].message);
    }

    #[test]
    fn single_axis_news_is_clean() {
        let f = findings(&format!(
            "{GRID}main() {{ par (I, J) b[i][j] = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]) / 4; }}"
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transposed_axes_are_flagged() {
        let f = findings(&format!("{GRID}main() {{ par (I, J) b[i][j] = a[j][i]; }}"));
        assert_eq!(codes_of(&f), vec!["UC111"]);
        assert!(f[0].message.contains("transposed"), "{}", f[0].message);
    }

    #[test]
    fn shape_mismatch_is_flagged() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[16], b[8];\nmain() { par (I) b[i] = a[i]; }",
        );
        assert_eq!(codes_of(&f), vec!["UC111"]);
        assert!(f[0].message.contains("conform"), "{}", f[0].message);
    }

    #[test]
    fn partial_rank_gather_is_clean() {
        // `a[j]` under the reduction runs on the extended [8, 8] space:
        // genuine router traffic, not a liftable regular pattern.
        let f = findings(
            "index_set I:i = {0..7}, J:j = I;\nint a[8], rank[8];\n\
             main() { par (I) rank[i] = $+(J st (a[j] < a[i]) 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn diagonal_gather_is_clean() {
        let f = findings(&format!("{GRID}main() {{ par (I, J) b[i][j] = a[i][i]; }}"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mapped_arrays_are_skipped() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8], b[8];\n\
             map (I) { permute (I) a[i+1] :- b[i]; }\n\
             main() { par (I) b[i] = a[i-1]; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn front_end_access_is_clean() {
        let f = findings("int a[4][4];\nmain() { a[0][1] = 3; }");
        assert!(f.is_empty(), "{f:?}");
    }
}
