//! Static analysis: the multi-pass lint framework behind `uc check`.
//!
//! The paper's §4 describes three optimization classes — standard code
//! optimizations, processor optimization, and communication-cost
//! optimization. The executor *applies* them silently; this module
//! surfaces the same analyses as compiler diagnostics with stable lint
//! codes, so `uc check` reports what the optimizer knows:
//!
//! | code  | pass      | finding |
//! |-------|-----------|---------|
//! | UC101 | races     | par write-write conflict on a mono/global location |
//! | UC110 | comm      | regular multi-axis grid shift through the general router |
//! | UC111 | comm      | regular access misaligned with the iteration space |
//! | UC120 | context   | statement under a constant-false (empty) context |
//! | UC121 | context   | index set declared but never used |
//! | UC130 | liveness  | local scalar read before initialisation |
//! | UC131 | liveness  | dead store (value overwritten before any read) |
//! | UC132 | liveness  | function never called from `main` |
//!
//! Every pass is a pure function over [`Checked`] — the symbol/type
//! tables sema exports — so the same passes can later run over the
//! compiled IR (ROADMAP item 3) without changing their reporting.

mod comm;
mod context;
mod liveness;
mod races;

use std::collections::HashMap;

use crate::ast::{Expr, IndexSetDef, IndexSetInit};
use crate::diag::{Diagnostic, Diagnostics, Severity};
use crate::sema::{self, Checked, IndexSetInfo};
use crate::span::Span;

/// One lint finding. Findings become [`Diagnostic`]s once a
/// [`LintConfig`] has decided their severity.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub code: &'static str,
    pub span: Span,
    pub message: String,
}

/// Static metadata of one lint code.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    pub code: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
    /// Which §4 optimization class the lint reports on.
    pub paper: &'static str,
}

/// Registry of every lint code the passes can emit.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        code: "UC101",
        name: "par-race",
        summary: "multiple virtual processors store distinct values to one \
                  mono/global location inside a `par` without a combining reduction",
        paper: "§3.4 single-assignment rule / §4 processor optimization",
    },
    LintInfo {
        code: "UC110",
        name: "router-grid-shift",
        summary: "a general-router access is provably a regular grid shift on \
                  several axes; single-axis NEWS shifts would be cheaper",
        paper: "§4 communication cost optimization",
    },
    LintInfo {
        code: "UC111",
        name: "router-misaligned",
        summary: "a regular access pattern is misaligned with the iteration \
                  space and takes the general router; a `map` declaration \
                  could make it local or NEWS",
        paper: "§4 communication cost optimization / map section",
    },
    LintInfo {
        code: "UC120",
        name: "dead-context",
        summary: "statement executes under a provably-empty (constant-false) context",
        paper: "§3.4 context semantics / §4 standard code optimizations",
    },
    LintInfo {
        code: "UC121",
        name: "unused-index-set",
        summary: "index set (virtual-processor set) is declared but never used",
        paper: "§3.1 index sets / §4 processor optimization",
    },
    LintInfo {
        code: "UC130",
        name: "use-before-init",
        summary: "local scalar is read before any assignment on every path",
        paper: "§4 standard code optimizations (dataflow)",
    },
    LintInfo {
        code: "UC131",
        name: "dead-store",
        summary: "stored value is overwritten before it is ever read",
        paper: "§4 standard code optimizations (dataflow)",
    },
    LintInfo {
        code: "UC132",
        name: "unused-function",
        summary: "function is never called (directly or transitively) from `main`",
        paper: "§4 standard code optimizations",
    },
];

/// Look a code up in the registry.
pub fn lint(code: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.code == code)
}

/// One analysis pass over the checked program.
pub trait Pass {
    /// Pass name (used in docs and debugging).
    fn name(&self) -> &'static str;
    /// Lint codes this pass can emit.
    fn lints(&self) -> &'static [&'static str];
    /// Run, appending findings.
    fn run(&self, checked: &Checked, out: &mut Vec<Finding>);
}

/// The default pass registry, in execution order.
pub fn passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(races::RacePass),
        Box::new(comm::CommPass),
        Box::new(context::ContextPass),
        Box::new(liveness::LivenessPass),
    ]
}

/// Run every registered pass and return the findings sorted by source
/// position (then code) — deterministic regardless of pass order or table
/// iteration order.
pub fn analyze(checked: &Checked) -> Vec<Finding> {
    let mut out = Vec::new();
    for pass in passes() {
        let before = out.len();
        pass.run(checked, &mut out);
        debug_assert!(
            out[before..].iter().all(|f| pass.lints().contains(&f.code)),
            "pass {} emitted an unregistered lint code",
            pass.name()
        );
    }
    out.sort_by(|a, b| {
        (a.span.start, a.span.end, a.code, &a.message).cmp(&(
            b.span.start,
            b.span.end,
            b.code,
            &b.message,
        ))
    });
    out
}

/// Per-invocation lint policy: `--deny`/`--allow` flags.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// `--deny warnings`: every warning (lint or sema) becomes an error.
    pub deny_warnings: bool,
    /// Codes promoted to errors.
    pub deny: Vec<String>,
    /// Codes suppressed entirely.
    pub allow: Vec<String>,
}

impl LintConfig {
    /// Record one `--deny` argument. `warnings` is the catch-all.
    pub fn deny(&mut self, what: &str) -> Result<(), String> {
        if what == "warnings" {
            self.deny_warnings = true;
            return Ok(());
        }
        if lint(what).is_none() {
            return Err(format!("unknown lint code `{what}`"));
        }
        self.deny.push(what.to_string());
        Ok(())
    }

    /// Record one `--allow` argument.
    pub fn allow(&mut self, what: &str) -> Result<(), String> {
        if lint(what).is_none() {
            return Err(format!("unknown lint code `{what}`"));
        }
        self.allow.push(what.to_string());
        Ok(())
    }

    fn severity_of(&self, code: &str) -> Option<Severity> {
        if self.allow.iter().any(|c| c == code) {
            return None;
        }
        if self.deny_warnings || self.deny.iter().any(|c| c == code) {
            Some(Severity::Error)
        } else {
            Some(Severity::Warning)
        }
    }

    /// Convert findings to diagnostics under this policy.
    pub fn apply(&self, findings: Vec<Finding>, diags: &mut Diagnostics) {
        for f in findings {
            if let Some(severity) = self.severity_of(f.code) {
                let d = Diagnostic { severity, span: f.span, message: f.message, code: Some(f.code) };
                diags.push(d);
            }
        }
    }
}

/// Front-end + analysis entry point used by `uc check`: parse, constant
/// fold, sema-check, interpret the map section, then run every lint pass
/// under `cfg`. The returned diagnostics are normalized (sorted, deduped);
/// with `--deny warnings` all warnings come back as errors.
pub fn check_source(src: &str, defines: &[(&str, i64)], cfg: &LintConfig) -> Diagnostics {
    let mut diags = Diagnostics::default();
    if let Some(mut unit) = crate::parser::parse(src, &mut diags) {
        for (name, value) in defines {
            if let Some(slot) = unit.defines.iter_mut().find(|(n, _)| n == name) {
                slot.1 = *value;
            } else {
                unit.defines.push((name.to_string(), *value));
            }
        }
        crate::opt::fold_unit(&mut unit);
        if let Some(checked) = sema::check(unit, &mut diags) {
            let _ = crate::mapping::interpret_maps(&checked, &mut diags);
            if !diags.has_errors() {
                cfg.apply(analyze(&checked), &mut diags);
            }
        }
    }
    if cfg.deny_warnings {
        diags.promote_warnings();
    }
    diags.normalize();
    diags
}

// ---- JSON output ---------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialise diagnostics as a JSON array (`uc check --format json`). The
/// layout uses only objects, strings and non-negative integers so it
/// round-trips through the workspace's shared hand-rolled JSON module
/// (`uc_bench::json`); `code` is omitted for uncoded (parse/sema)
/// diagnostics.
pub fn diagnostics_to_json(diags: &Diagnostics) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\n");
        if let Some(code) = d.code {
            out.push_str(&format!("    \"code\": \"{}\",\n", json_escape(code)));
        }
        let sev = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str(&format!("    \"severity\": \"{sev}\",\n"));
        out.push_str(&format!("    \"message\": \"{}\",\n", json_escape(&d.message)));
        out.push_str(&format!("    \"line\": {},\n", d.span.line));
        out.push_str(&format!("    \"col\": {},\n", d.span.col));
        out.push_str(&format!("    \"start\": {},\n", d.span.start));
        out.push_str(&format!("    \"end\": {}\n  }}", d.span.end));
    }
    if !diags.items.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

// ---- shared pass helpers -------------------------------------------------

/// Scope-aware index-set lookup shared by the passes: global sets from
/// [`Checked`] plus `index_set` statements encountered while walking, the
/// same shadowing rules sema applies.
pub(crate) struct SetScopes<'c> {
    checked: &'c Checked,
    stack: Vec<HashMap<String, IndexSetInfo>>,
}

impl<'c> SetScopes<'c> {
    pub fn new(checked: &'c Checked) -> Self {
        SetScopes { checked, stack: Vec::new() }
    }

    pub fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    pub fn pop(&mut self) {
        self.stack.pop();
    }

    pub fn lookup(&self, name: &str) -> Option<&IndexSetInfo> {
        for scope in self.stack.iter().rev() {
            if let Some(info) = scope.get(name) {
                return Some(info);
            }
        }
        self.checked.index_set(name)
    }

    /// Evaluate a local `index_set` statement's definitions into the
    /// innermost scope (errors were already reported by sema; evaluation
    /// failures are silently skipped here).
    pub fn define_local(&mut self, defs: &'c [IndexSetDef]) {
        for def in defs {
            if let Some(info) = self.eval_def(def) {
                if let Some(scope) = self.stack.last_mut() {
                    scope.insert(def.name.clone(), info);
                }
            }
        }
    }

    fn eval_def(&self, def: &IndexSetDef) -> Option<IndexSetInfo> {
        let consts = &self.checked.consts;
        let elements = match &def.init {
            IndexSetInit::Range(lo, hi) => {
                let lo = sema::const_eval(lo, consts).ok()?;
                let hi = sema::const_eval(hi, consts).ok()?;
                if hi < lo {
                    return None;
                }
                (lo..=hi).collect()
            }
            IndexSetInit::List(items) => items
                .iter()
                .map(|e| sema::const_eval(e, consts).ok())
                .collect::<Option<Vec<i64>>>()?,
            IndexSetInit::Alias(src) => self.lookup(src)?.elements.clone(),
        };
        if elements.is_empty() {
            return None;
        }
        Some(IndexSetInfo { elem: def.elem.clone(), elements })
    }
}

/// `lo` of a contiguous ascending element list (`{lo..hi}`), mirroring the
/// executor's `ElemForm::AxisPlus` condition.
pub(crate) fn contiguous_lo(elements: &[i64]) -> Option<i64> {
    let lo = *elements.first()?;
    for (k, &v) in elements.iter().enumerate() {
        if v != lo + k as i64 {
            return None;
        }
    }
    Some(lo)
}

/// Whether `e` is a compile-time constant equal to zero (a provably-false
/// predicate / provably-empty context).
pub(crate) fn const_false(e: &Expr, checked: &Checked) -> bool {
    sema::const_eval(e, &checked.consts) == Ok(0)
}

#[cfg(test)]
pub(crate) fn check_str(src: &str) -> Checked {
    let mut d = Diagnostics::default();
    let mut unit = crate::parser::parse(src, &mut d).expect("parse");
    crate::opt::fold_unit(&mut unit);
    sema::check(unit, &mut d).unwrap_or_else(|| panic!("sema failed:\n{d}"))
}

#[cfg(test)]
pub(crate) fn codes_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.code).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        // Codes are unique and sorted registrations resolve.
        let mut codes: Vec<_> = LINTS.iter().map(|l| l.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LINTS.len());
        for p in passes() {
            for c in p.lints() {
                assert!(lint(c).is_some(), "pass {} lists unknown code {c}", p.name());
            }
        }
        assert!(lint("UC101").is_some());
        assert!(lint("UC999").is_none());
    }

    #[test]
    fn lint_config_policies() {
        let mut cfg = LintConfig::default();
        assert!(cfg.deny("UC101").is_ok());
        assert!(cfg.allow("UC131").is_ok());
        assert!(cfg.deny("bogus").is_err());
        assert!(cfg.allow("bogus").is_err());
        let findings = vec![
            Finding { code: "UC101", span: Span::default(), message: "a".into() },
            Finding { code: "UC120", span: Span::default(), message: "b".into() },
            Finding { code: "UC131", span: Span::default(), message: "c".into() },
        ];
        let mut diags = Diagnostics::default();
        cfg.apply(findings, &mut diags);
        assert_eq!(diags.items.len(), 2, "allowed code dropped");
        assert_eq!(diags.items[0].severity, Severity::Error, "denied code escalated");
        assert_eq!(diags.items[1].severity, Severity::Warning);
    }

    #[test]
    fn check_source_reports_and_denies() {
        let src = "index_set I:i = {0..7};\nint s;\nmain() { par (I) s = i; }";
        let diags = check_source(src, &[], &LintConfig::default());
        assert!(!diags.has_errors());
        assert!(diags.items.iter().any(|d| d.code == Some("UC101")), "{diags}");

        let mut deny = LintConfig::default();
        deny.deny("warnings").unwrap();
        let diags = check_source(src, &[], &deny);
        assert!(diags.has_errors());
    }

    #[test]
    fn check_source_applies_defines() {
        // With the default N=4 the guard `N > 2` is constant-true; the
        // `-D N=1` override makes it constant-false (dead context).
        let src = "#define N 4\nindex_set I:i = {0..7};\nint a[8];\nmain() { par (I) st (N > 2) a[i] = 1; }";
        let clean = check_source(src, &[], &LintConfig::default());
        assert!(!clean.items.iter().any(|d| d.code == Some("UC120")), "{clean}");
        let dead = check_source(src, &[("N", 1)], &LintConfig::default());
        assert!(dead.items.iter().any(|d| d.code == Some("UC120")), "{dead}");
    }

    #[test]
    fn json_output_shape() {
        let src = "index_set I:i = {0..7};\nint s;\nmain() { par (I) s = i; }";
        let diags = check_source(src, &[], &LintConfig::default());
        let json = diagnostics_to_json(&diags);
        assert!(json.starts_with('['));
        assert!(json.contains("\"code\": \"UC101\""));
        assert!(json.contains("\"severity\": \"warning\""));
        // Empty list prints a bare array.
        assert_eq!(diagnostics_to_json(&Diagnostics::default()), "[]");
    }

    #[test]
    fn contiguity() {
        assert_eq!(contiguous_lo(&[3, 4, 5]), Some(3));
        assert_eq!(contiguous_lo(&[0]), Some(0));
        assert_eq!(contiguous_lo(&[4, 2, 9]), None);
        assert_eq!(contiguous_lo(&[]), None);
    }
}
