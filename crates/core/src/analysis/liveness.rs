//! UC130/UC131/UC132 — init/liveness dataflow.
//!
//! Classic forward dataflow over each function body (§4's "standard code
//! optimizations" applied as diagnostics):
//!
//! * **UC130** — a local scalar is read while *definitely* uninitialised:
//!   no path from its declaration assigns it first. Branch merges
//!   intersect (a variable stays definitely-uninitialised only when every
//!   branch leaves it so), so maybe-initialised reads are never flagged.
//! * **UC131** — a store to a local scalar is overwritten before any read
//!   within the same straight-line run; any control flow conservatively
//!   clears the tracking.
//! * **UC132** — a function that `main` never reaches through the call
//!   graph.

use std::collections::{HashMap, HashSet};

use super::{Finding, Pass};
use crate::ast::*;
use crate::sema::Checked;
use crate::span::Span;

pub(crate) struct LivenessPass;

impl Pass for LivenessPass {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn lints(&self) -> &'static [&'static str] {
        &["UC130", "UC131", "UC132"]
    }

    fn run(&self, checked: &Checked, out: &mut Vec<Finding>) {
        for f in checked.funcs_in_order() {
            let mut w = FnWalker {
                uninit: HashSet::new(),
                locals: HashSet::new(),
                reported: HashSet::new(),
                pending: HashMap::new(),
                out: Vec::new(),
            };
            for s in &f.body.stmts {
                w.stmt(s);
            }
            out.append(&mut w.out);
        }
        unused_functions(checked, out);
    }
}

/// Call-graph reachability from `main` (UC132).
fn unused_functions(checked: &Checked, out: &mut Vec<Finding>) {
    if !checked.funcs.contains_key("main") {
        return;
    }
    let mut reachable = HashSet::new();
    let mut queue = vec!["main".to_string()];
    while let Some(name) = queue.pop() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        if let Some(f) = checked.funcs.get(&name) {
            let mut callees = HashSet::new();
            for s in &f.body.stmts {
                calls_in_stmt(s, &mut callees);
            }
            queue.extend(callees);
        }
    }
    for f in checked.funcs_in_order() {
        if !reachable.contains(&f.name) {
            out.push(Finding {
                code: "UC132",
                span: f.span,
                message: format!(
                    "function `{}` is never called from `main` (§4 dead code)",
                    f.name
                ),
            });
        }
    }
}

fn calls_in_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match s {
        Stmt::Expr(e) => calls_in_expr(e, out),
        Stmt::Decl(v) => {
            if let Some(init) = &v.init {
                calls_in_expr(init, out);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                calls_in_stmt(s, out);
            }
        }
        Stmt::If { cond, then_branch, else_branch, .. } => {
            calls_in_expr(cond, out);
            calls_in_stmt(then_branch, out);
            if let Some(e) = else_branch {
                calls_in_stmt(e, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            calls_in_expr(cond, out);
            calls_in_stmt(body, out);
        }
        Stmt::For { init, cond, step, body, .. } => {
            for e in [init, cond, step].into_iter().flatten() {
                calls_in_expr(e, out);
            }
            calls_in_stmt(body, out);
        }
        Stmt::Return(Some(e), _) => calls_in_expr(e, out),
        Stmt::Uc(uc) => {
            for arm in &uc.arms {
                if let Some(p) = &arm.pred {
                    calls_in_expr(p, out);
                }
                calls_in_stmt(&arm.body, out);
            }
            if let Some(o) = &uc.others {
                calls_in_stmt(o, out);
            }
        }
        _ => {}
    }
}

fn calls_in_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Call { name, args, .. } => {
            out.insert(name.clone());
            for a in args {
                calls_in_expr(a, out);
            }
        }
        Expr::Index { subs, .. } => {
            for s in subs {
                calls_in_expr(s, out);
            }
        }
        Expr::Unary { expr, .. } => calls_in_expr(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            calls_in_expr(lhs, out);
            calls_in_expr(rhs, out);
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            calls_in_expr(cond, out);
            calls_in_expr(then_e, out);
            calls_in_expr(else_e, out);
        }
        Expr::Assign { target, value, .. } => {
            calls_in_expr(target, out);
            calls_in_expr(value, out);
        }
        Expr::Reduce(r) => {
            for (p, o) in &r.arms {
                if let Some(p) = p {
                    calls_in_expr(p, out);
                }
                calls_in_expr(o, out);
            }
            if let Some(o) = &r.others {
                calls_in_expr(o, out);
            }
        }
        _ => {}
    }
}

struct FnWalker {
    /// Local scalars definitely uninitialised at this program point.
    uninit: HashSet<String>,
    /// Every local scalar declared so far (reads of anything else are
    /// globals/params/elements and never flagged).
    locals: HashSet<String>,
    /// Variables already reported for UC130 (one report per variable).
    reported: HashSet<String>,
    /// Straight-line pending stores: variable → span of the last store
    /// with no read since (UC131).
    pending: HashMap<String, Span>,
    out: Vec<Finding>,
}

impl FnWalker {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr(e),
            Stmt::Decl(v) => {
                if !v.dims.is_empty() {
                    for d in &v.dims {
                        self.expr(d);
                    }
                    return; // arrays: element state is not tracked
                }
                match &v.init {
                    Some(init) => {
                        self.expr(init);
                        self.locals.insert(v.name.clone());
                        self.store(&v.name, v.span);
                    }
                    None => {
                        self.locals.insert(v.name.clone());
                        self.uninit.insert(v.name.clone());
                    }
                }
            }
            Stmt::IndexSets(_) => {}
            Stmt::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.expr(cond);
                self.pending.clear();
                let before = self.uninit.clone();
                self.stmt(then_branch);
                let after_then = std::mem::replace(&mut self.uninit, before);
                self.pending.clear();
                match else_branch {
                    Some(e) => {
                        self.stmt(e);
                        // Definitely-uninit iff uninit on both branches.
                        self.uninit.retain(|v| after_then.contains(v));
                    }
                    None => {
                        // The fall-through path keeps `before`; intersect
                        // with the then-branch outcome.
                        self.uninit.retain(|v| after_then.contains(v));
                    }
                }
                self.pending.clear();
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.pending.clear();
                let before = self.uninit.clone();
                self.stmt(body);
                // Zero iterations keep `before`; >0 keep the body outcome.
                let after_body = std::mem::replace(&mut self.uninit, before);
                self.uninit.retain(|v| after_body.contains(v));
                self.pending.clear();
            }
            Stmt::For { init, cond, step, body, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                if let Some(e) = cond {
                    self.expr(e);
                }
                self.pending.clear();
                let before = self.uninit.clone();
                self.stmt(body);
                if let Some(e) = step {
                    self.expr(e);
                }
                let after_body = std::mem::replace(&mut self.uninit, before);
                self.uninit.retain(|v| after_body.contains(v));
                self.pending.clear();
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e);
                }
                self.pending.clear();
            }
            Stmt::Uc(uc) => {
                self.pending.clear();
                let before = self.uninit.clone();
                let mut merged: Option<HashSet<String>> = None;
                for arm in &uc.arms {
                    self.uninit = before.clone();
                    self.pending.clear();
                    if let Some(p) = &arm.pred {
                        self.expr(p);
                    }
                    self.stmt(&arm.body);
                    let out = std::mem::take(&mut self.uninit);
                    merged = Some(match merged {
                        None => out,
                        Some(m) => m.intersection(&out).cloned().collect(),
                    });
                }
                if let Some(o) = &uc.others {
                    self.uninit = before.clone();
                    self.stmt(o);
                    let out = std::mem::take(&mut self.uninit);
                    merged = Some(match merged {
                        None => out,
                        Some(m) => m.intersection(&out).cloned().collect(),
                    });
                }
                self.uninit = merged.unwrap_or(before);
                self.pending.clear();
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
        }
    }

    /// Record a store to a local scalar, reporting the previous store in
    /// this straight-line run if it was never read (UC131).
    fn store(&mut self, name: &str, span: Span) {
        if !self.locals.contains(name) {
            return;
        }
        self.uninit.remove(name);
        if let Some(prev) = self.pending.insert(name.to_string(), span) {
            self.out.push(Finding {
                code: "UC131",
                span: prev,
                message: format!(
                    "value stored to `{name}` is overwritten before it is ever read \
                     (§4 dead code)"
                ),
            });
        }
    }

    /// Record a read of `name` (UC130 when definitely uninitialised).
    fn read(&mut self, name: &str, span: Span) {
        self.pending.remove(name);
        if self.uninit.contains(name) && self.reported.insert(name.to_string()) {
            self.out.push(Finding {
                code: "UC130",
                span,
                message: format!(
                    "local `{name}` is read before any assignment initialises it \
                     (§4 dataflow)"
                ),
            });
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(name, span) => self.read(name, *span),
            Expr::Index { subs, .. } => {
                for s in subs {
                    self.expr(s);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.expr(cond);
                self.expr(then_e);
                self.expr(else_e);
            }
            Expr::Assign { target, op, value, span } => {
                self.expr(value);
                match target.as_ref() {
                    Expr::Ident(name, tspan) => {
                        if op.is_some() {
                            self.read(name, *tspan);
                        }
                        self.store(name, *span);
                    }
                    Expr::Index { subs, .. } => {
                        for s in subs {
                            self.expr(s);
                        }
                    }
                    other => self.expr(other),
                }
            }
            Expr::Reduce(r) => {
                for (p, o) in &r.arms {
                    if let Some(p) = p {
                        self.expr(p);
                    }
                    self.expr(o);
                }
                if let Some(o) = &r.others {
                    self.expr(o);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_str, codes_of};
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let checked = check_str(src);
        let mut out = Vec::new();
        LivenessPass.run(&checked, &mut out);
        out
    }

    #[test]
    fn use_before_init_detected() {
        let f = findings("main() { int x, y; y = x + 1; }");
        assert_eq!(codes_of(&f), vec!["UC130"]);
        assert!(f[0].message.contains("`x`"));
    }

    #[test]
    fn init_on_every_branch_is_clean() {
        let f = findings(
            "main() { int x, y; y = 0; if (y) x = 1; else x = 2; y = x; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn init_on_one_branch_is_not_definite() {
        // Maybe-uninitialised is not flagged (no false positives).
        let f = findings("main() { int x, y; y = 0; if (y) x = 1; y = x; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn par_assignment_initialises() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8];\n\
             main() { int x; par (I) st (i == 0) x = 0; x = x + 1; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dead_store_detected() {
        let f = findings("main() { int x, y; x = 1; x = 2; y = x; }");
        assert_eq!(codes_of(&f), vec!["UC131"]);
        assert_eq!(f[0].span.line, 1);
    }

    #[test]
    fn read_between_stores_is_clean() {
        let f = findings("main() { int x, y; x = 1; y = x; x = 2; y = y + x; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn control_flow_clears_dead_store_tracking() {
        // The read happens inside the loop: not a dead store.
        let f = findings(
            "main() { int x, y, i; x = 1; for (i = 0; i < 3; i = i + 1) y = x; x = 2; y = x; }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_function_detected() {
        let f = findings(
            "int helper(int v) { return v + 1; }\nint orphan() { return 3; }\n\
             main() { int x; x = helper(1); }",
        );
        assert_eq!(codes_of(&f), vec!["UC132"]);
        assert!(f[0].message.contains("`orphan`"));
    }

    #[test]
    fn transitive_calls_are_reachable() {
        let f = findings(
            "int inner() { return 1; }\nint outer() { return inner(); }\n\
             main() { int x; x = outer(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
