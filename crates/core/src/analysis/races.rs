//! UC101 — par-assignment race detection.
//!
//! Inside a `par`, every enabled index element executes each assignment
//! synchronously. A store whose *target location* does not vary with some
//! index element the *stored value* varies with makes several virtual
//! processors write distinct values to one mono/global location — the
//! write-write conflict the paper's §3.4 single-assignment rule forbids
//! (the runtime detects it with the router's collision detection; this
//! pass reports it statically).
//!
//! Conservative suppressions keep the lint quiet on correct programs:
//! values combined by a reduction bind their own elements (not free), and
//! a store guarded by a predicate that mentions the offending element is
//! assumed to narrow the context (e.g. `st (i == 0)`).

use std::collections::{HashMap, HashSet};

use super::{Finding, Pass, SetScopes};
use crate::ast::*;
use crate::sema::Checked;
use crate::span::Span;

pub(crate) struct RacePass;

/// How a construct binds its index elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinderKind {
    /// `par` / `*par`: every enabled element runs synchronously.
    Par,
    /// `seq`, `oneof`, `solve`: one element (at a time) executes, or the
    /// construct has its own single-assignment discipline.
    Sequential,
    /// Reduction-bound: values are combined, not raced.
    Combined,
}

struct Walker<'c> {
    checked: &'c Checked,
    scopes: SetScopes<'c>,
    /// Innermost-last element binders.
    binders: Vec<(String, BinderKind)>,
    /// Local variables in scope → number of enclosing `par`s at declaration.
    locals: Vec<HashMap<String, usize>>,
    /// Elements mentioned by enclosing predicates (`st`, `if`, loop conds).
    guards: Vec<HashSet<String>>,
    par_depth: usize,
    out: Vec<Finding>,
}

impl Pass for RacePass {
    fn name(&self) -> &'static str {
        "races"
    }

    fn lints(&self) -> &'static [&'static str] {
        &["UC101"]
    }

    fn run(&self, checked: &Checked, out: &mut Vec<Finding>) {
        let mut w = Walker {
            checked,
            scopes: SetScopes::new(checked),
            binders: Vec::new(),
            locals: Vec::new(),
            guards: Vec::new(),
            par_depth: 0,
            out: Vec::new(),
        };
        for f in checked.funcs_in_order() {
            w.locals.push(f.params.iter().map(|(_, n)| (n.clone(), 0)).collect());
            w.scopes.push();
            for s in &f.body.stmts {
                w.stmt(s);
            }
            w.scopes.pop();
            w.locals.pop();
        }
        out.append(&mut w.out);
    }
}

impl<'c> Walker<'c> {
    fn stmt(&mut self, s: &'c Stmt) {
        match s {
            Stmt::Expr(e) => self.expr(e),
            Stmt::Decl(v) => {
                if let Some(init) = &v.init {
                    self.expr(init);
                }
                if let Some(scope) = self.locals.last_mut() {
                    scope.insert(v.name.clone(), self.par_depth);
                }
            }
            Stmt::IndexSets(defs) => self.scopes.define_local(defs),
            Stmt::Block(b) => {
                self.scopes.push();
                self.locals.push(HashMap::new());
                for s in &b.stmts {
                    self.stmt(s);
                }
                self.locals.pop();
                self.scopes.pop();
            }
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.expr(cond);
                self.push_guard(cond);
                self.stmt(then_branch);
                if let Some(e) = else_branch {
                    self.stmt(e);
                }
                self.guards.pop();
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                self.push_guard(cond);
                self.stmt(body);
                self.guards.pop();
            }
            Stmt::For { init, cond, step, body, .. } => {
                for e in [init, cond, step].into_iter().flatten() {
                    self.expr(e);
                }
                match cond {
                    Some(c) => self.push_guard(c),
                    None => self.guards.push(HashSet::new()),
                }
                self.stmt(body);
                self.guards.pop();
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Uc(uc) => self.uc(uc),
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
        }
    }

    fn uc(&mut self, uc: &'c UcStmt) {
        let kind = match uc.kind {
            UcKind::Par => BinderKind::Par,
            UcKind::Seq | UcKind::Solve | UcKind::Oneof => BinderKind::Sequential,
        };
        let pushed = self.push_elems(&uc.idxs, kind);
        if kind == BinderKind::Par {
            self.par_depth += 1;
        }
        for arm in &uc.arms {
            match &arm.pred {
                Some(p) => {
                    self.expr(p);
                    self.push_guard(p);
                }
                None => self.guards.push(HashSet::new()),
            }
            self.stmt(&arm.body);
            self.guards.pop();
        }
        if let Some(o) = &uc.others {
            // `others` runs under the negation of every arm predicate:
            // still a narrowed context mentioning the same elements.
            let mut mentioned = HashSet::new();
            for arm in &uc.arms {
                if let Some(p) = &arm.pred {
                    self.free_par_elems(p, &mut mentioned);
                }
            }
            self.guards.push(mentioned);
            self.stmt(o);
            self.guards.pop();
        }
        if kind == BinderKind::Par {
            self.par_depth -= 1;
        }
        self.binders.truncate(self.binders.len() - pushed);
    }

    /// Bind the elements of the named sets; returns how many were pushed.
    fn push_elems(&mut self, idxs: &[String], kind: BinderKind) -> usize {
        let mut pushed = 0;
        for name in idxs {
            if let Some(info) = self.scopes.lookup(name) {
                self.binders.push((info.elem.clone(), kind));
                pushed += 1;
            }
        }
        pushed
    }

    fn push_guard(&mut self, pred: &Expr) {
        let mut mentioned = HashSet::new();
        self.free_par_elems(pred, &mut mentioned);
        self.guards.push(mentioned);
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Assign { target, op, value, span } => {
                self.check_assign(target, *op, value, *span);
                if let Expr::Index { subs, .. } = target.as_ref() {
                    for s in subs {
                        self.expr(s);
                    }
                }
                self.expr(value);
            }
            Expr::Index { subs, .. } => {
                for s in subs {
                    self.expr(s);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.expr(cond);
                self.expr(then_e);
                self.expr(else_e);
            }
            Expr::Reduce(r) => {
                let pushed = self.push_elems(&r.idxs, BinderKind::Combined);
                for (p, o) in &r.arms {
                    if let Some(p) = p {
                        self.expr(p);
                    }
                    self.expr(o);
                }
                if let Some(o) = &r.others {
                    self.expr(o);
                }
                self.binders.truncate(self.binders.len() - pushed);
            }
            _ => {}
        }
    }

    fn check_assign(&mut self, target: &Expr, op: Option<BinaryOp>, value: &Expr, span: Span) {
        if self.par_depth == 0 {
            return;
        }
        // Where does the store land, and which par elements select the
        // location?
        let mut loc_elems = HashSet::new();
        let target_text = match target {
            Expr::Ident(name, _) => {
                if self.is_per_vp_local(name) {
                    return; // one location per virtual processor
                }
                name.clone()
            }
            Expr::Index { base, subs, .. } => {
                for s in subs {
                    self.free_par_elems(s, &mut loc_elems);
                }
                let mut t = base.clone();
                for s in subs {
                    t.push_str(&format!("[{}]", crate::pretty::expr(s)));
                }
                t
            }
            _ => return,
        };
        let mut val_elems = HashSet::new();
        self.free_par_elems(value, &mut val_elems);
        if op.is_some() {
            // Compound assignment also reads the target location.
            for e in &loc_elems {
                val_elems.remove(e);
            }
        }
        let mut missing: Vec<&String> = val_elems
            .iter()
            .filter(|e| !loc_elems.contains(*e))
            .filter(|e| !self.guards.iter().any(|g| g.contains(*e)))
            .collect();
        missing.sort();
        if let Some(elem) = missing.first() {
            self.out.push(Finding {
                code: "UC101",
                span,
                message: format!(
                    "write-write race in `par`: the stored value varies with `{elem}` but \
                     every enabled element stores to the same location `{target_text}` — \
                     distinct values collide without a combining reduction (§3.4)"
                ),
            });
        }
    }

    /// Is `name` a local declared inside the current par nest (one copy
    /// per virtual processor)?
    fn is_per_vp_local(&self, name: &str) -> bool {
        for scope in self.locals.iter().rev() {
            if let Some(&depth) = scope.get(name) {
                return depth > 0;
            }
        }
        false
    }

    /// Collect `par`-bound element names free in `e` (reduction-bound and
    /// sequentially-bound elements shadow and are excluded).
    fn free_par_elems(&self, e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::Ident(name, _) => {
                if self.checked.consts.contains_key(name) {
                    return;
                }
                if let Some((_, kind)) = self.binders.iter().rev().find(|(n, _)| n == name) {
                    if *kind == BinderKind::Par {
                        out.insert(name.clone());
                    }
                }
            }
            Expr::Index { subs, .. } => {
                for s in subs {
                    self.free_par_elems(s, out);
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.free_par_elems(a, out);
                }
            }
            Expr::Unary { expr, .. } => self.free_par_elems(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                self.free_par_elems(lhs, out);
                self.free_par_elems(rhs, out);
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.free_par_elems(cond, out);
                self.free_par_elems(then_e, out);
                self.free_par_elems(else_e, out);
            }
            Expr::Assign { target, value, .. } => {
                self.free_par_elems(target, out);
                self.free_par_elems(value, out);
            }
            Expr::Reduce(r) => {
                // Elements the reduction itself binds are combined, not
                // free; shadow them during the sub-walk.
                let shadowed: Vec<String> = r
                    .idxs
                    .iter()
                    .filter_map(|s| self.scopes.lookup(s).map(|i| i.elem.clone()))
                    .collect();
                let mut inner = HashSet::new();
                for (p, o) in &r.arms {
                    if let Some(p) = p {
                        self.free_par_elems(p, &mut inner);
                    }
                    self.free_par_elems(o, &mut inner);
                }
                if let Some(o) = &r.others {
                    self.free_par_elems(o, &mut inner);
                }
                for name in inner {
                    if !shadowed.contains(&name) {
                        out.insert(name);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_str, codes_of};
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let checked = check_str(src);
        let mut out = Vec::new();
        RacePass.run(&checked, &mut out);
        out
    }

    #[test]
    fn scalar_race_detected() {
        let f = findings("index_set I:i = {0..7};\nint s;\nmain() { par (I) s = i; }");
        assert_eq!(codes_of(&f), vec!["UC101"]);
        assert!(f[0].message.contains("`s`"));
        assert_eq!(f[0].span.line, 3);
    }

    #[test]
    fn constant_element_race_detected() {
        let f = findings("index_set I:i = {0..7};\nint a[8];\nmain() { par (I) a[0] = i; }");
        assert_eq!(codes_of(&f), vec!["UC101"]);
        assert!(f[0].message.contains("a[0]"));
    }

    #[test]
    fn missing_axis_race_detected() {
        let f = findings(
            "index_set I:i = {0..3}, J:j = I;\nint a[4];\nmain() { par (I, J) a[i] = j; }",
        );
        assert_eq!(codes_of(&f), vec!["UC101"]);
        assert!(f[0].message.contains("`j`"));
    }

    #[test]
    fn same_value_stores_are_clean() {
        // Every element stores 1 — identical values are allowed (§3.4).
        let f = findings("index_set I:i = {0..7};\nint s, a[8];\nmain() { par (I) st (a[i] > 0) s = 1; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_mentioning_element_suppresses() {
        let f = findings("index_set I:i = {0..7};\nint s;\nmain() { par (I) st (i == 0) s = i; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reduction_combines_cleanly() {
        let f = findings(
            "index_set I:i = {0..7}, J:j = I;\nint a[8], rank[8];\n\
             main() { par (I) rank[i] = $+(J st (a[j] < a[i]) 1); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn per_vp_locals_are_clean() {
        let f = findings(
            "index_set I:i = {0..7};\nint a[8];\nmain() { par (I) { int t; t = i; a[i] = t; } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn seq_is_sequential() {
        let f = findings("index_set I:i = {0..7};\nint s;\nmain() { seq (I) s = i; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn compound_assignment_reads_target() {
        // a[i] += i varies with i in both value and location: clean.
        let f = findings("index_set I:i = {0..7};\nint a[8];\nmain() { par (I) a[i] += i; }");
        assert!(f.is_empty(), "{f:?}");
        // s += i still races on the shared location.
        let f = findings("index_set I:i = {0..7};\nint s;\nmain() { par (I) s += i; }");
        assert_eq!(codes_of(&f), vec!["UC101"]);
    }
}
