//! Reduction evaluation (§3.2 of the paper).
//!
//! A reduction extends the current iteration space with its index sets,
//! evaluates each arm's operand synchronously for the enabled elements,
//! and folds the results:
//!
//! * at the front end the fold is one machine `reduce` (the CM's global
//!   combine tree);
//! * inside a parallel construct each enclosing iteration point needs its
//!   own fold, which compiles to a **combining router send** addressed by
//!   the enclosing point's linear index (`p / rest`).
//!
//! The *processor optimization* of §4 is implemented here too: a
//! histogram-shaped reduction `$op(I st (key[i] == j) e)` evaluated under
//! `par (J)` does not need the full `|J|·|I|` VP set — the operand is
//! computed on `|I|` processors and scattered by key, exactly the
//! `10·N → N` example of the paper.

use uc_cm::{BinOp, Combine, ElemType, FieldId, ReduceOp, Scalar};

use super::{Program, RResult, PV};
use crate::ast::{BinaryOp, Expr, ReduceExpr};
use crate::token::RedOpToken;

impl Program {
    pub(crate) fn eval_reduce(&mut self, r: &ReduceExpr) -> RResult<PV> {
        if self.config.procopt {
            if let Some(pv) = self.try_procopt(r)? {
                return Ok(pv);
            }
        }

        let level = self.push_space(&r.idxs)?;
        let result = self.eval_reduce_arms(r);
        self.pop_space(level)?;
        result
    }

    fn eval_reduce_arms(&mut self, r: &ReduceExpr) -> RResult<PV> {
        let vp = self.ctx.last().unwrap().vp;
        // Evaluate every arm mask synchronously first (they share the
        // unpredicated enabled set).
        let mut masks: Vec<Option<FieldId>> = Vec::with_capacity(r.arms.len());
        for (pred, _) in &r.arms {
            match pred {
                Some(p) => {
                    let m = self.eval(p)?;
                    let m = self.truthify(m)?;
                    let m = self.coerce_field(m, ElemType::Bool)?;
                    let PV::Field { id, .. } = m else { unreachable!() };
                    // Intentionally leak ownership into `masks`; freed below.
                    masks.push(Some(id));
                }
                None => masks.push(None),
            }
        }

        let mut partials: Vec<PV> = Vec::new();
        for ((_, operand), mask) in r.arms.iter().zip(&masks) {
            // Gathers under a predicate mask are only valid where that
            // mask holds — they must not enter the step's CSE cache.
            let fill = self.cse_fill;
            if let Some(m) = mask {
                self.machine.push_context(*m)?;
                self.cse_fill = false;
            }
            let part = self.reduce_operand(operand, r.op);
            if mask.is_some() {
                self.machine.pop_context(vp)?;
                self.cse_fill = fill;
            }
            partials.push(part?);
        }

        if let Some(others) = &r.others {
            // Enabled-for-no-arm elements.
            let or = self.machine.alloc_bool(vp, "~ored")?;
            self.machine.fill_unconditional(or, Scalar::Bool(false))?;
            for m in masks.iter().flatten() {
                self.machine.binop(BinOp::LogOr, or, or, *m)?;
            }
            self.machine.push_context_others(or)?;
            let fill = self.cse_fill;
            self.cse_fill = false;
            let part = self.reduce_operand(others, r.op);
            self.cse_fill = fill;
            self.machine.pop_context(vp)?;
            self.machine.free(or)?;
            partials.push(part?);
        }

        for m in masks.into_iter().flatten() {
            self.machine.free(m)?;
        }

        // Fold the per-arm results with the reduction operator.
        let mut acc = partials.remove(0);
        for p in partials {
            acc = self.combine_partials(r.op, acc, p)?;
        }
        Ok(acc)
    }

    /// Evaluate one operand under the current mask and reduce it into the
    /// enclosing space (or to a front-end scalar).
    fn reduce_operand(&mut self, operand: &Expr, op: RedOpToken) -> RResult<PV> {
        let v = self.eval(operand)?;
        // Type of the reduction: logical ops work on truth values (0/1
        // ints); others on the operand's numeric type.
        let logical = matches!(op, RedOpToken::And | RedOpToken::Or | RedOpToken::Xor);
        let v = if logical {
            let b = self.truthify(v)?;
            self.coerce_field(b, ElemType::Int)?
        } else {
            let ty = match self.pv_type(&v)? {
                ElemType::Float => ElemType::Float,
                _ => ElemType::Int,
            };
            self.coerce_field(v, ty)?
        };
        let PV::Field { id, .. } = v else { unreachable!() };
        let ty = self.machine.elem_type(id)?;

        let result = if self.ctx.len() == 1 {
            // Front-end reduction: one combine-tree instruction.
            let s = self.machine.reduce(id, machine_reduce_op(op))?;
            Ok(PV::Scalar(s))
        } else {
            self.reduce_into_outer(id, op, ty)
        };
        self.release(v);
        result
    }

    /// Per-enclosing-point reduction via a combining send.
    fn reduce_into_outer(&mut self, src: FieldId, op: RedOpToken, ty: ElemType) -> RResult<PV> {
        let outer_level = self.ctx.len() - 2;
        let outer_vp = self.ctx[outer_level].vp;
        let addr = self.lift_addr(outer_level)?;
        let dst = self.machine.alloc(outer_vp, "~red", ty)?;
        let (identity, combine) = identity_combine(op, ty);
        // Pre-fill enabled enclosing points with the identity (so empty
        // operand sets yield it, as §3.2 requires).
        self.machine.set_imm(dst, identity)?;
        self.machine.send(dst, addr, src, combine)?;
        if op == RedOpToken::Xor {
            // Parity of the number of true operands.
            self.machine.binop_imm(BinOp::Mod, dst, dst, Scalar::Int(2))?;
        }
        Ok(PV::owned(dst))
    }

    /// Combine two per-arm partial results with the reduction operator.
    fn combine_partials(&mut self, op: RedOpToken, a: PV, b: PV) -> RResult<PV> {
        match (a, b) {
            (PV::Scalar(x), PV::Scalar(y)) => Ok(PV::Scalar(scalar_reduce(op, x, y))),
            (a, b) => {
                let ty = self.common_type(&a, &b)?;
                // Partials live on the *enclosing* space; combine there.
                let cur = self.ctx.pop().expect("inside reduction space");
                let result = (|| -> RResult<PV> {
                    let a = self.coerce_field(a, ty)?;
                    let b = self.coerce_field(b, ty)?;
                    let (PV::Field { id: ai, .. }, PV::Field { id: bi, .. }) = (&a, &b) else {
                        unreachable!()
                    };
                    let vp = self.ctx.last().unwrap().vp;
                    let dst = self.machine.alloc(vp, "~cmb", ty)?;
                    match op {
                        RedOpToken::Add => self.machine.binop(BinOp::Add, dst, *ai, *bi)?,
                        RedOpToken::Mul => self.machine.binop(BinOp::Mul, dst, *ai, *bi)?,
                        RedOpToken::Min => self.machine.binop(BinOp::Min, dst, *ai, *bi)?,
                        RedOpToken::Max => self.machine.binop(BinOp::Max, dst, *ai, *bi)?,
                        RedOpToken::And => self.machine.binop(BinOp::Min, dst, *ai, *bi)?,
                        RedOpToken::Or => self.machine.binop(BinOp::Max, dst, *ai, *bi)?,
                        RedOpToken::Xor => {
                            self.machine.binop(BinOp::Add, dst, *ai, *bi)?;
                            self.machine.binop_imm(BinOp::Mod, dst, dst, Scalar::Int(2))?;
                        }
                        RedOpToken::Arb => {
                            // Prefer `a` where it is not the identity INF.
                            let isinf = self.machine.alloc_bool(vp, "~isinf")?;
                            self.machine.binop_imm(
                                BinOp::Ne,
                                isinf,
                                *ai,
                                super::access::inf_of(ty),
                            )?;
                            self.machine.select(dst, isinf, *ai, *bi)?;
                            self.machine.free(isinf)?;
                        }
                    }
                    self.release(a);
                    self.release(b);
                    Ok(PV::owned(dst))
                })();
                self.ctx.push(cur);
                result
            }
        }
    }

    // ---- processor optimization (§4) --------------------------------------

    /// Histogram peephole: `$op(SETS st (key == elem) operand)` under a
    /// rank-1 enclosing space, where `key` and `operand` use only the
    /// reduction's own sets and `elem` is the enclosing construct's index
    /// element. Evaluated on the reduction-only space and scattered by
    /// key — the paper's `10·N → N` processor optimization.
    fn try_procopt(&mut self, r: &ReduceExpr) -> RResult<Option<PV>> {
        if self.ctx.len() != 1 || self.ctx[0].dims.len() != 1 || r.arms.len() != 1 {
            return Ok(None);
        }
        if r.others.is_some() {
            return Ok(None);
        }
        let (Some(pred), operand) = (&r.arms[0].0, &r.arms[0].1) else {
            return Ok(None);
        };
        let Expr::Binary { op: BinaryOp::Eq, lhs, rhs, .. } = pred else {
            return Ok(None);
        };
        // One side must be the (sole) outer element with identity form.
        let outer_elem = match &self.ctx[0].elems[..] {
            [(name, _, super::space::ElemForm::AxisPlus { axis: 0, lo: 0 })] => name.clone(),
            _ => return Ok(None),
        };
        let (key_expr, elem_side) = if matches!(rhs.as_ref(), Expr::Ident(n, _) if *n == outer_elem)
        {
            (lhs.as_ref(), rhs.as_ref())
        } else if matches!(lhs.as_ref(), Expr::Ident(n, _) if *n == outer_elem) {
            (rhs.as_ref(), lhs.as_ref())
        } else {
            return Ok(None);
        };
        let _ = elem_side;
        // Key and operand must not mention any outer binding.
        let outer_names: Vec<String> =
            self.ctx[0].elems.iter().map(|(n, _, _)| n.clone()).collect();
        if mentions(key_expr, &outer_names) || mentions(operand, &outer_names) {
            return Ok(None);
        }
        let (identity, combine) = match r.op {
            RedOpToken::Add => (Scalar::Int(0), Combine::Add),
            RedOpToken::Mul => (Scalar::Int(1), Combine::Mul),
            RedOpToken::Min => (Scalar::Int(i64::MAX), Combine::Min),
            RedOpToken::Max => (Scalar::Int(i64::MIN), Combine::Max),
            _ => return Ok(None),
        };

        let outer_vp = self.ctx[0].vp;
        let outer_extent = self.ctx[0].dims[0] as i64;
        // Evaluate key and operand on the reduction-only space.
        let saved = std::mem::take(&mut self.ctx);
        let result = (|| -> RResult<PV> {
            let level = self.push_space(&r.idxs)?;
            let inner = (|| -> RResult<PV> {
                let key = self.eval(key_expr)?;
                let key = self.coerce_field(key, ElemType::Int)?;
                let PV::Field { id: keyf, .. } = key else { unreachable!() };
                let val = self.eval(operand)?;
                let val = self.coerce_field(val, ElemType::Int)?;
                let PV::Field { id: valf, .. } = val else { unreachable!() };
                let vp = self.ctx.last().unwrap().vp;
                // Only keys inside the enclosing extent participate.
                let ok = self.machine.alloc_bool(vp, "~kok")?;
                self.machine.binop_imm(BinOp::Ge, ok, keyf, Scalar::Int(0))?;
                let hi = self.machine.alloc_bool(vp, "~khi")?;
                self.machine.binop_imm(BinOp::Lt, hi, keyf, Scalar::Int(outer_extent))?;
                self.machine.binop(BinOp::LogAnd, ok, ok, hi)?;
                self.machine.free(hi)?;
                let dst = self.machine.alloc_int(outer_vp, "~hist")?;
                self.machine.set_imm(dst, identity)?;
                self.machine.push_context(ok)?;
                self.machine.send(dst, keyf, valf, combine)?;
                self.machine.pop_context(vp)?;
                self.machine.free(ok)?;
                self.release(key);
                self.release(val);
                Ok(PV::owned(dst))
            })();
            self.pop_space(level)?;
            inner
        })();
        self.ctx = saved;
        result.map(Some)
    }
}

/// Does the expression mention any of the given names (as identifiers)?
fn mentions(e: &Expr, names: &[String]) -> bool {
    match e {
        Expr::Ident(n, _) => names.iter().any(|x| x == n),
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Inf(_) => false,
        Expr::Index { subs, .. } => subs.iter().any(|s| mentions(s, names)),
        Expr::Call { args, .. } => args.iter().any(|a| mentions(a, names)),
        Expr::Unary { expr, .. } => mentions(expr, names),
        Expr::Binary { lhs, rhs, .. } => mentions(lhs, names) || mentions(rhs, names),
        Expr::Ternary { cond, then_e, else_e, .. } => {
            mentions(cond, names) || mentions(then_e, names) || mentions(else_e, names)
        }
        Expr::Assign { target, value, .. } => mentions(target, names) || mentions(value, names),
        Expr::Reduce(r) => {
            r.arms.iter().any(|(p, o)| {
                p.as_ref().map(|p| mentions(p, names)).unwrap_or(false) || mentions(o, names)
            }) || r.others.as_ref().map(|o| mentions(o, names)).unwrap_or(false)
        }
    }
}

/// The machine reduce op for a reduction token.
fn machine_reduce_op(op: RedOpToken) -> ReduceOp {
    match op {
        RedOpToken::Add => ReduceOp::Add,
        RedOpToken::Mul => ReduceOp::Mul,
        RedOpToken::Min => ReduceOp::Min,
        RedOpToken::Max => ReduceOp::Max,
        RedOpToken::And => ReduceOp::And,
        RedOpToken::Or => ReduceOp::Or,
        RedOpToken::Xor => ReduceOp::Xor,
        RedOpToken::Arb => ReduceOp::Arb,
    }
}

/// Identity value and router combiner for per-point reductions.
fn identity_combine(op: RedOpToken, ty: ElemType) -> (Scalar, Combine) {
    let float = ty == ElemType::Float;
    match op {
        RedOpToken::Add => {
            (if float { Scalar::Float(0.0) } else { Scalar::Int(0) }, Combine::Add)
        }
        RedOpToken::Mul => {
            (if float { Scalar::Float(1.0) } else { Scalar::Int(1) }, Combine::Mul)
        }
        RedOpToken::Min => (
            if float { Scalar::Float(f64::INFINITY) } else { Scalar::Int(i64::MAX) },
            Combine::Min,
        ),
        RedOpToken::Max => (
            if float { Scalar::Float(f64::NEG_INFINITY) } else { Scalar::Int(i64::MIN) },
            Combine::Max,
        ),
        // Logical reductions run on 0/1 ints.
        RedOpToken::And => (Scalar::Int(1), Combine::Min),
        RedOpToken::Or => (Scalar::Int(0), Combine::Max),
        RedOpToken::Xor => (Scalar::Int(0), Combine::Add),
        RedOpToken::Arb => (
            if float { Scalar::Float(f64::INFINITY) } else { Scalar::Int(i64::MAX) },
            Combine::Overwrite,
        ),
    }
}

/// Front-end fold of two partial results.
fn scalar_reduce(op: RedOpToken, a: Scalar, b: Scalar) -> Scalar {
    let float = a.elem_type() == ElemType::Float || b.elem_type() == ElemType::Float;
    if float {
        let (x, y) = (a.as_float(), b.as_float());
        Scalar::Float(match op {
            RedOpToken::Add => x + y,
            RedOpToken::Mul => x * y,
            RedOpToken::Min => x.min(y),
            RedOpToken::Max => x.max(y),
            RedOpToken::And => ((x != 0.0) && (y != 0.0)) as i64 as f64,
            RedOpToken::Or => ((x != 0.0) || (y != 0.0)) as i64 as f64,
            RedOpToken::Xor => ((x != 0.0) ^ (y != 0.0)) as i64 as f64,
            RedOpToken::Arb => {
                if x != f64::INFINITY {
                    x
                } else {
                    y
                }
            }
        })
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        Scalar::Int(match op {
            RedOpToken::Add => x.wrapping_add(y),
            RedOpToken::Mul => x.wrapping_mul(y),
            RedOpToken::Min => x.min(y),
            RedOpToken::Max => x.max(y),
            RedOpToken::And => ((x != 0) && (y != 0)) as i64,
            RedOpToken::Or => ((x != 0) || (y != 0)) as i64,
            RedOpToken::Xor => ((x != 0) ^ (y != 0)) as i64,
            RedOpToken::Arb => {
                if x != i64::MAX {
                    x
                } else {
                    y
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reduce_ops() {
        let i = Scalar::Int;
        assert_eq!(scalar_reduce(RedOpToken::Add, i(2), i(3)), i(5));
        assert_eq!(scalar_reduce(RedOpToken::Min, i(2), i(3)), i(2));
        assert_eq!(scalar_reduce(RedOpToken::Max, i(2), i(3)), i(3));
        assert_eq!(scalar_reduce(RedOpToken::And, i(1), i(0)), i(0));
        assert_eq!(scalar_reduce(RedOpToken::Xor, i(1), i(1)), i(0));
        assert_eq!(scalar_reduce(RedOpToken::Arb, i(i64::MAX), i(7)), i(7));
        assert_eq!(scalar_reduce(RedOpToken::Arb, i(4), i(7)), i(4));
    }

    #[test]
    fn mentions_finds_names() {
        use crate::span::Span;
        let s = Span::default();
        let e = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Ident("i".into(), s)),
            rhs: Box::new(Expr::IntLit(1, s)),
            span: s,
        };
        assert!(mentions(&e, &["i".to_string()]));
        assert!(!mentions(&e, &["j".to_string()]));
    }
}
