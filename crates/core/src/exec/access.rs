//! Array access: the three communication classes.
//!
//! Every subscript is first analysed *symbolically*. If each dimension is
//! `axis-coordinate + constant` and the array conforms to the iteration
//! space, the access is **local** (offset 0 after the mapping transform)
//! or a **NEWS** shift (constant offset). Anything else goes through the
//! general **router**. The map section changes the transform, which is how
//! `permute (I) b[i+1] :- a[i]` turns a router/NEWS access into a local
//! one (§4 of the paper).
//!
//! Out-of-range *reads* in a parallel context yield `INF`, modelling the
//! CM convention that off-edge fetches return the border register (the
//! paper's programs rely on this, e.g. `x[i+1]` in the odd–even sort
//! predicate). Out-of-range *writes* by enabled elements are errors.

use uc_cm::{BinOp, Combine, ElemType, FieldId, ReduceOp, Scalar};

use super::space::ElemForm;
use super::{ArrayStorage, LocalVar, Program, RResult, RuntimeError, PV};
use crate::ast::{BinaryOp, Expr};
use crate::mapping::ArrayMapping;
use crate::stdlib;

/// Symbolic form of one subscript expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdxForm {
    /// `coordinate(axis) + offset` on the current space.
    AxisPlus { axis: usize, offset: i64 },
    /// A front-end constant (known now).
    Const(i64),
    /// Anything else.
    General,
}

impl Program {
    /// Find an array's storage: function-local arrays first, then globals.
    pub(crate) fn array_storage(&self, name: &str) -> RResult<ArrayStorage> {
        if let Some(frame) = self.frames.last() {
            for scope in frame.scopes.iter().rev() {
                if let Some(LocalVar::Array(st)) = scope.vars.get(name) {
                    return Ok(st.clone());
                }
            }
        }
        self.arrays
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    // ---- symbolic analysis ------------------------------------------------

    /// Pure front-end evaluation: returns the scalar value of `e` iff it
    /// involves no parallel bindings and no side effects.
    pub(crate) fn try_pure_scalar(&self, e: &Expr) -> Option<Scalar> {
        // A name bound as an index element must not be resolved as a
        // front-end value.
        match e {
            Expr::IntLit(v, _) => Some(Scalar::Int(*v)),
            Expr::FloatLit(v, _) => Some(Scalar::Float(*v)),
            Expr::Inf(_) => Some(Scalar::Int(i64::MAX)),
            Expr::Ident(name, _) => {
                if self.is_ctx_elem(name) {
                    return None;
                }
                if let Some(frame) = self.frames.last() {
                    for scope in frame.scopes.iter().rev() {
                        match scope.vars.get(name) {
                            Some(LocalVar::Scalar(s)) => return Some(*s),
                            Some(LocalVar::Slot(i)) => return Some(frame.regs[*i]),
                            Some(_) => return None,
                            None => {}
                        }
                    }
                }
                if let Some(&i) = self.global_index.get(name) {
                    return Some(self.globals[i as usize]);
                }
                self.checked.consts.get(name).map(|v| Scalar::Int(*v))
            }
            Expr::Unary { op, expr, .. } => {
                let v = self.try_pure_scalar(expr)?;
                Some(match op {
                    crate::ast::UnaryOp::Neg => match v {
                        Scalar::Float(f) => Scalar::Float(-f),
                        other => Scalar::Int(other.as_int().wrapping_neg()),
                    },
                    crate::ast::UnaryOp::Not => Scalar::Int(!v.as_bool() as i64),
                    crate::ast::UnaryOp::BitNot => Scalar::Int(!v.as_int()),
                })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.try_pure_scalar(lhs)?;
                let r = self.try_pure_scalar(rhs)?;
                super::expr::scalar_binary(*op, l, r).ok()
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                let c = self.try_pure_scalar(cond)?;
                if c.as_bool() {
                    self.try_pure_scalar(then_e)
                } else {
                    self.try_pure_scalar(else_e)
                }
            }
            Expr::Call { name, args, .. } => match name.as_str() {
                "power2" => {
                    Some(Scalar::Int(stdlib::power2(self.try_pure_scalar(&args[0])?.as_int())))
                }
                "abs" | "ABS" => {
                    Some(Scalar::Int(self.try_pure_scalar(&args[0])?.as_int().wrapping_abs()))
                }
                "min" => Some(Scalar::Int(
                    self.try_pure_scalar(&args[0])?
                        .as_int()
                        .min(self.try_pure_scalar(&args[1])?.as_int()),
                )),
                "max" => Some(Scalar::Int(
                    self.try_pure_scalar(&args[0])?
                        .as_int()
                        .max(self.try_pure_scalar(&args[1])?.as_int()),
                )),
                _ => None,
            },
            _ => None,
        }
    }

    fn is_ctx_elem(&self, name: &str) -> bool {
        self.ctx.iter().any(|c| c.elems.iter().any(|(n, _, _)| n == name))
    }

    /// Elem-binding form for a name, searching innermost levels first.
    fn elem_form(&self, name: &str) -> Option<ElemForm> {
        for level in (0..self.ctx.len()).rev() {
            if let Some((_, _, form)) = self.ctx[level].elems.iter().find(|(n, _, _)| n == name)
            {
                return Some(*form);
            }
        }
        None
    }

    /// Classify a subscript expression.
    pub(crate) fn symbolic_index(&self, e: &Expr) -> IdxForm {
        if let Expr::Ident(name, _) = e {
            if let Some(form) = self.elem_form(name) {
                return match form {
                    ElemForm::AxisPlus { axis, lo } => IdxForm::AxisPlus { axis, offset: lo },
                    ElemForm::Opaque => IdxForm::General,
                };
            }
        }
        if let Some(s) = self.try_pure_scalar(e) {
            return IdxForm::Const(s.as_int());
        }
        if let Expr::Binary { op, lhs, rhs, .. } = e {
            let l = self.symbolic_index(lhs);
            let r = self.symbolic_index(rhs);
            match (op, l, r) {
                // checked: an overflowing constant offset falls back to
                // the general router path instead of aborting.
                (BinaryOp::Add, IdxForm::AxisPlus { axis, offset }, IdxForm::Const(c))
                | (BinaryOp::Add, IdxForm::Const(c), IdxForm::AxisPlus { axis, offset }) => {
                    if let Some(offset) = offset.checked_add(c) {
                        return IdxForm::AxisPlus { axis, offset };
                    }
                }
                (BinaryOp::Sub, IdxForm::AxisPlus { axis, offset }, IdxForm::Const(c)) => {
                    if let Some(offset) = offset.checked_sub(c) {
                        return IdxForm::AxisPlus { axis, offset };
                    }
                }
                _ => {}
            }
        }
        IdxForm::General
    }

    // ---- reads --------------------------------------------------------------

    /// Read `base[subs...]` in the current context.
    pub(crate) fn read_array(&mut self, base: &str, subs: &[Expr]) -> RResult<PV> {
        let st = self.array_storage(base)?;
        if self.ctx.is_empty() {
            // Front-end element read.
            let mut coord = Vec::with_capacity(subs.len());
            for (d, sub) in subs.iter().enumerate() {
                let v = self.eval_scalar(sub)?.as_int();
                if v < 0 || v as usize >= st.shape[d] {
                    return Err(RuntimeError::OutOfBounds { name: base.to_string() });
                }
                coord.push(v as usize);
            }
            let logical = crate::mapping::flatten(&coord, &st.shape);
            let idx = st.mapping.storage_index(logical, &st.shape, 0);
            return Ok(PV::Scalar(self.machine.read_elem(st.field, idx)?));
        }

        // Common-subexpression cache: a gather computed while this step's
        // predicates evaluated (full construct mask) may be reused by arm
        // bodies (strictly narrower masks).
        if !subs_cacheable(subs) {
            return self.read_storage(&st, subs);
        }
        let dims = self.cur_ctx().dims.clone();
        let key = (dims, access_text(base, subs));
        for level in self.cse_stack.iter().rev() {
            if let Some(&f) = level.get(&key) {
                return Ok(PV::Field { id: f, owned: false });
            }
        }
        let pv = self.read_storage(&st, subs)?;
        if self.cse_fill && !self.cse_stack.is_empty() {
            if let PV::Field { id, owned: true } = pv {
                self.cse_stack.last_mut().unwrap().insert(key, id);
                return Ok(PV::Field { id, owned: false });
            }
        }
        Ok(pv)
    }

    /// Drop every cached gather of `base` (called when `base` is written)
    /// or the whole cache (when `base` is None, e.g. a scalar that might
    /// appear in subscripts changed).
    pub(crate) fn cse_invalidate(&mut self, base: Option<&str>) {
        for level in &mut self.cse_stack {
            let doomed: Vec<_> = level
                .keys()
                .filter(|(_, text)| match base {
                    Some(b) => text.starts_with(&format!("{b}[")),
                    None => true,
                })
                .cloned()
                .collect();
            for k in doomed {
                if let Some(f) = level.remove(&k) {
                    let _ = self.machine.free(f);
                }
            }
        }
    }

    /// Enter/leave a synchronous step for the CSE cache.
    pub(crate) fn cse_push(&mut self) {
        self.cse_stack.push(std::collections::HashMap::new());
    }

    pub(crate) fn cse_pop(&mut self) {
        if let Some(level) = self.cse_stack.pop() {
            for (_, f) in level {
                let _ = self.machine.free(f);
            }
        }
    }

    /// Parallel read of a storage descriptor (also used for solve's
    /// defined-bitmaps, which mirror their array's mapping).
    pub(crate) fn read_storage(&mut self, st: &ArrayStorage, subs: &[Expr]) -> RResult<PV> {
        if self.config.optimize_access {
            if let Some(pv) = self.try_fast_read(st, subs)? {
                return Ok(pv);
            }
        }
        self.router_read(st, subs)
    }

    /// Local/NEWS read when the array conforms to the iteration space.
    fn try_fast_read(&mut self, st: &ArrayStorage, subs: &[Expr]) -> RResult<Option<PV>> {
        let dims = self.cur_ctx().dims.clone();
        let offsets: Vec<i64> = match &st.mapping {
            ArrayMapping::Default => vec![0; st.shape.len()],
            ArrayMapping::Permute { offsets } => offsets.clone(),
            ArrayMapping::Copy { .. } => {
                // §4's broadcast elimination: when the iteration space is
                // [replicas, ...shape] and the logical subscripts are the
                // trailing axis identities, every iteration point reads
                // its own replica locally instead of broadcasting from a
                // single copy through the router.
                let storage_shape = st.mapping.storage_shape(&st.shape);
                let identity = storage_shape == dims
                    && subs.iter().enumerate().all(|(d, s)| {
                        matches!(self.symbolic_index(s),
                            IdxForm::AxisPlus { axis, offset: 0 } if axis == d + 1)
                    });
                if identity {
                    let vp = self.cur_ctx().vp;
                    let dst = self.machine.alloc(vp, "~rd", st.ty)?;
                    self.machine.copy(dst, st.field)?;
                    return Ok(Some(PV::owned(dst)));
                }
                return Ok(None);
            }
            ArrayMapping::Fold { .. } => return Ok(None),
        };
        if st.shape != dims {
            return Ok(None);
        }
        let mut shifts = Vec::with_capacity(subs.len());
        let mut logical_offsets = Vec::with_capacity(subs.len());
        for (d, sub) in subs.iter().enumerate() {
            match self.symbolic_index(sub) {
                IdxForm::AxisPlus { axis, offset } if axis == d => {
                    shifts.push(offset - offsets[d]);
                    logical_offsets.push(offset);
                }
                _ => return Ok(None),
            }
        }
        // At most one displaced axis: a NEWS shift writes only *active*
        // positions, so chaining shifts would read garbage at inactive
        // intermediate positions. Multi-axis displacement (`a[i-1][j-1]`)
        // takes the router.
        if shifts.iter().filter(|&&s| s != 0).count() > 1 {
            return Ok(None);
        }
        let vp = self.cur_ctx().vp;
        let dst = self.machine.alloc(vp, "~rd", st.ty)?;
        match shifts.iter().position(|&s| s != 0) {
            None => self.machine.copy(dst, st.field)?,
            Some(d) => {
                // Toroidal shift; the logical-bounds fixup below replaces
                // wrapped positions with INF.
                self.machine
                    .news_shift(dst, st.field, d, shifts[d], uc_cm::news::Border::Wrap)?;
            }
        }
        // Fix up positions whose *logical* index fell outside the array:
        // they read INF, not a wrapped value. The validity masks depend
        // only on the geometry, so they are computed once and cached.
        for (d, &c) in logical_offsets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let ok = self.fixup_mask(&dims, d, c, st.shape[d] as i64)?;
            let inf = self.inf_field(&dims, st.ty)?;
            self.machine.select(dst, ok, dst, inf)?;
        }
        Ok(Some(PV::owned(dst)))
    }

    /// Cached "coordinate(axis)+offset is inside [0, n)" mask on the
    /// current space.
    fn fixup_mask(&mut self, dims: &[usize], axis: usize, c: i64, n: i64) -> RResult<FieldId> {
        let key = (dims.to_vec(), axis, c);
        if let Some(&f) = self.fixup_cache.get(&key) {
            return Ok(f);
        }
        // Built unconditionally (front-end DMA): the cache is shared
        // across constructs with different activity masks.
        let vp = self.cur_ctx().vp;
        let size: usize = dims.iter().product();
        let stride: usize = dims[axis + 1..].iter().product();
        let extent = dims[axis];
        let bits: Vec<bool> = (0..size)
            .map(|p| {
                let coord = ((p / stride) % extent) as i64 + c;
                coord >= 0 && coord < n
            })
            .collect();
        let ok = self.machine.alloc_bool(vp, "~ok")?;
        self.machine.write_all(ok, uc_cm::FieldData::Bool(bits))?;
        self.fixup_cache.insert(key, ok);
        Ok(ok)
    }

    /// Cached INF broadcast field on the current space.
    fn inf_field(&mut self, dims: &[usize], ty: ElemType) -> RResult<FieldId> {
        let key = (dims.to_vec(), ty);
        if let Some(&f) = self.inf_cache.get(&key) {
            return Ok(f);
        }
        let vp = self.cur_ctx().vp;
        let inf = self.machine.alloc(vp, "~INF", ty)?;
        self.machine.fill_unconditional(inf, inf_of(ty))?;
        self.inf_cache.insert(key, inf);
        Ok(inf)
    }

    /// General gather through the router, with bounds handling.
    fn router_read(&mut self, st: &ArrayStorage, subs: &[Expr]) -> RResult<PV> {
        let vp = self.cur_ctx().vp;
        let dims = self.cur_ctx().dims.clone();
        let (addr, valid) = self.storage_address(st, subs)?;
        let dst = self.machine.alloc(vp, "~gather", st.ty)?;
        self.machine.get(dst, addr, st.field)?;
        self.machine.free(addr)?;
        if let Some(valid) = valid {
            // Out-of-range reads yield INF.
            let inf = self.inf_field(&dims, st.ty)?;
            self.machine.select(dst, valid, dst, inf)?;
            self.machine.free(valid)?;
        }
        Ok(PV::owned(dst))
    }

    /// Compute the (clamped) storage address field and an optional
    /// validity mask for a subscripted access on the current space.
    /// `None` validity means every enabled element is statically in
    /// bounds (axis-identity and in-range constant subscripts), in which
    /// case the address arithmetic is as lean as hand-written C\*'s.
    fn storage_address(
        &mut self,
        st: &ArrayStorage,
        subs: &[Expr],
    ) -> RResult<(FieldId, Option<FieldId>)> {
        let vp = self.cur_ctx().vp;
        let storage_shape = st.mapping.storage_shape(&st.shape);
        // Row-major strides over the storage shape; for Copy the logical
        // dims start at storage axis 1 (replica 0 occupies the first block).
        let mut strides = vec![1usize; storage_shape.len()];
        for i in (0..storage_shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * storage_shape[i + 1];
        }
        let dim_off = storage_shape.len() - st.shape.len();
        let space_dims = self.cur_ctx().dims.clone();

        let addr = self.machine.alloc_int(vp, "~addr")?;
        // Constant subscript contributions fold into the initial fill.
        let mut base = 0i64;
        let mut static_oob = false;
        let mut dynamic: Vec<(usize, &Expr)> = Vec::new();
        for (d, sub) in subs.iter().enumerate() {
            let n = st.shape[d] as i64;
            match self.symbolic_index(sub) {
                IdxForm::Const(c) if (0..n).contains(&c) => {
                    // Host-side mapping transform of a known coordinate.
                    let mut coord = vec![0usize; st.shape.len()];
                    coord[d] = c as usize;
                    let sc = st.mapping.storage_coord(&coord, &st.shape)[d];
                    base += sc as i64 * strides[dim_off + d] as i64;
                }
                IdxForm::Const(_) => static_oob = true,
                _ => dynamic.push((d, sub)),
            }
        }
        self.machine.fill_unconditional(addr, Scalar::Int(base))?;
        let mut valid: Option<FieldId> = None;
        if static_oob {
            let v = self.machine.alloc_bool(vp, "~valid")?;
            self.machine.fill_unconditional(v, Scalar::Bool(false))?;
            valid = Some(v);
        }

        for (d, sub) in dynamic {
            let n = st.shape[d] as i64;
            // Axis-identity over a matching extent is statically in
            // bounds: no validity tracking, one coordinate instruction.
            let statically_safe = matches!(
                self.symbolic_index(sub),
                IdxForm::AxisPlus { axis, offset: 0 }
                    if space_dims.get(axis) == Some(&(n as usize)))
                && !matches!(st.mapping, ArrayMapping::Fold { axis } if axis == d);
            let pv = self.eval(sub)?;
            let pv = self.coerce_field(pv, ElemType::Int)?;
            let PV::Field { id: vfield, owned } = pv else { unreachable!() };
            // Work on a copy so we never mutate a non-owned binding field.
            let v = self.machine.alloc_int(vp, "~sub")?;
            self.machine.copy(v, vfield)?;
            if owned {
                self.machine.free(vfield)?;
            }
            if !statically_safe {
                // Validity: 0 <= v < n (logical bounds, before mapping).
                let va = match valid {
                    Some(va) => va,
                    None => {
                        let va = self.machine.alloc_bool(vp, "~valid")?;
                        self.machine.fill_unconditional(va, Scalar::Bool(true))?;
                        valid = Some(va);
                        va
                    }
                };
                let tmpb = self.machine.alloc_bool(vp, "~vb")?;
                self.machine.binop_imm(BinOp::Ge, tmpb, v, Scalar::Int(0))?;
                self.machine.binop(BinOp::LogAnd, va, va, tmpb)?;
                self.machine.binop_imm(BinOp::Lt, tmpb, v, Scalar::Int(n))?;
                self.machine.binop(BinOp::LogAnd, va, va, tmpb)?;
                self.machine.free(tmpb)?;
            }
            // Mapping transform.
            match &st.mapping {
                ArrayMapping::Default | ArrayMapping::Copy { .. } => {}
                ArrayMapping::Permute { offsets } => {
                    if offsets[d] != 0 {
                        // (v - off).rem_euclid(n)
                        self.machine.binop_imm(BinOp::Sub, v, v, Scalar::Int(offsets[d]))?;
                        self.machine.binop_imm(BinOp::Mod, v, v, Scalar::Int(n))?;
                        self.machine.binop_imm(BinOp::Add, v, v, Scalar::Int(n))?;
                        self.machine.binop_imm(BinOp::Mod, v, v, Scalar::Int(n))?;
                    }
                }
                ArrayMapping::Fold { axis } if *axis == d => {
                    // v' = 2*min(v, n-1-v) + (v >= ceil(n/2))
                    let mirror = self.machine.alloc_int(vp, "~mir")?;
                    self.machine.binop_imm_l(BinOp::Sub, mirror, Scalar::Int(n - 1), v)?;
                    let low = self.machine.alloc_int(vp, "~low")?;
                    self.machine.binop(BinOp::Min, low, v, mirror)?;
                    self.machine.binop_imm(BinOp::Mul, low, low, Scalar::Int(2))?;
                    let hi = self.machine.alloc_bool(vp, "~hi")?;
                    self.machine
                        .binop_imm(BinOp::Ge, hi, v, Scalar::Int((n as u64).div_ceil(2) as i64))?;
                    let hii = self.machine.alloc_int(vp, "~hii")?;
                    self.machine.convert(hii, hi)?;
                    self.machine.binop(BinOp::Add, v, low, hii)?;
                    for f in [mirror, low, hi, hii] {
                        self.machine.free(f)?;
                    }
                }
                ArrayMapping::Fold { .. } => {}
            }
            if let Some(va) = valid {
                // Clamp out-of-range values to 0 so the router accepts
                // them (they are replaced by INF / excluded from writes
                // afterwards).
                let vi = self.machine.alloc_int(vp, "~vi")?;
                self.machine.convert(vi, va)?;
                self.machine.binop(BinOp::Mul, v, v, vi)?;
                self.machine.free(vi)?;
                // Clamp to the storage extent too: a permute-wrapped value
                // is always in range, but fold on odd extents can exceed it.
                let sn = storage_shape[dim_off + d] as i64;
                self.machine.binop_imm(BinOp::Mod, v, v, Scalar::Int(sn))?;
            }
            // addr += v * stride
            self.machine
                .binop_imm(BinOp::Mul, v, v, Scalar::Int(strides[dim_off + d] as i64))?;
            self.machine.binop(BinOp::Add, addr, addr, v)?;
            self.machine.free(v)?;
        }
        Ok((addr, valid))
    }

    // ---- writes -------------------------------------------------------------

    /// Store `value` into `base[subs...]`. `check_conflicts` enforces the
    /// `par` rule that distinct values may not land on one element
    /// (relaxed inside `*solve`).
    pub(crate) fn write_array(
        &mut self,
        base: &str,
        subs: &[Expr],
        value: PV,
        check_conflicts: bool,
    ) -> RResult<()> {
        self.cse_invalidate(Some(base));
        let st = self.array_storage(base)?;
        if self.ctx.is_empty() {
            let mut coord = Vec::with_capacity(subs.len());
            for (d, sub) in subs.iter().enumerate() {
                let v = self.eval_scalar(sub)?.as_int();
                if v < 0 || v as usize >= st.shape[d] {
                    return Err(RuntimeError::OutOfBounds { name: base.to_string() });
                }
                coord.push(v as usize);
            }
            let PV::Scalar(s) = value else {
                return Err(RuntimeError::NotSupported(
                    "parallel value stored from front-end context".into(),
                ));
            };
            let logical = crate::mapping::flatten(&coord, &st.shape);
            let s = super::space::coerce_scalar(s, st.ty);
            for r in 0..st.mapping.replicas() {
                let idx = st.mapping.storage_index(logical, &st.shape, r);
                self.machine.write_elem(st.field, idx, s)?;
            }
            return Ok(());
        }
        self.write_storage(&st, subs, value, check_conflicts, base)
    }

    /// Parallel store into a storage descriptor (also used for solve's
    /// defined-bitmaps).
    pub(crate) fn write_array_storage(
        &mut self,
        st: &ArrayStorage,
        subs: &[Expr],
        value: PV,
    ) -> RResult<()> {
        self.write_storage(st, subs, value, false, "~storage")
    }

    fn write_storage(
        &mut self,
        st: &ArrayStorage,
        subs: &[Expr],
        value: PV,
        check_conflicts: bool,
        base: &str,
    ) -> RResult<()> {
        let value = self.coerce_field(value, st.ty)?;
        let PV::Field { id: vfield, .. } = value else { unreachable!() };

        // Fast path: identity store onto a conforming default-mapped array.
        if self.config.optimize_access
            && st.mapping == ArrayMapping::Default
            && st.shape == self.cur_ctx().dims
            && subs.iter().enumerate().all(|(d, s)| {
                matches!(self.symbolic_index(s),
                    IdxForm::AxisPlus { axis, offset: 0 } if axis == d)
            })
        {
            self.machine.copy(st.field, vfield)?;
            self.release(value);
            return Ok(());
        }

        // General scatter.
        let (addr, valid) = self.storage_address(st, subs)?;
        if let Some(valid) = valid {
            // An enabled element writing out of range is an error.
            let vp = self.cur_ctx().vp;
            let bad = self.machine.alloc_bool(vp, "~bad")?;
            self.machine.unop(uc_cm::UnOp::Not, bad, valid)?;
            let any_bad = self.machine.reduce(bad, ReduceOp::Or)?.as_bool();
            self.machine.free(bad)?;
            self.machine.free(valid)?;
            if any_bad {
                self.machine.free(addr)?;
                self.release(value);
                return Err(RuntimeError::OutOfBounds { name: base.to_string() });
            }
        }
        let size: usize = st.shape.iter().product();
        let mut conflict = false;
        for r in 0..st.mapping.replicas() {
            let conflict_r = if r == 0 {
                self.machine.send_detect(st.field, addr, vfield, Combine::Overwrite)?
            } else {
                self.machine.binop_imm(BinOp::Add, addr, addr, Scalar::Int(size as i64))?;
                self.machine.send_detect(st.field, addr, vfield, Combine::Overwrite)?
            };
            conflict |= conflict_r;
        }
        self.machine.free(addr)?;
        self.release(value);
        if conflict && check_conflicts {
            return Err(RuntimeError::MultipleAssignment { name: base.to_string() });
        }
        Ok(())
    }

    /// Evaluate an assignment expression (including compound ops),
    /// returning the stored value.
    pub(crate) fn eval_assign(
        &mut self,
        target: &Expr,
        op: Option<BinaryOp>,
        value: &Expr,
    ) -> RResult<PV> {
        let rhs = self.eval(value)?;
        let combined = match op {
            None => rhs,
            Some(op) => {
                let old = self.eval(target)?;
                self.apply_binary(op, old, rhs)?
            }
        };
        self.store(target, combined, true)
    }

    /// Store a PV into an lvalue; returns the PV (still owned by caller).
    pub(crate) fn store(
        &mut self,
        target: &Expr,
        value: PV,
        check_conflicts: bool,
    ) -> RResult<PV> {
        match target {
            Expr::Ident(name, _) => {
                self.store_ident(name, value)?;
                Ok(value)
            }
            Expr::Index { base, subs, .. } => {
                // write_array consumes/releases a copy; keep the caller's
                // PV alive by duplicating the handle (fields are Copy ids).
                let dup = match value {
                    PV::Scalar(s) => PV::Scalar(s),
                    PV::Field { id, .. } => PV::Field { id, owned: false },
                };
                self.write_array(base, subs, dup, check_conflicts)?;
                Ok(value)
            }
            other => Err(RuntimeError::NotSupported(format!(
                "assignment target {other:?} is not an lvalue"
            ))),
        }
    }

    fn store_ident(&mut self, name: &str, value: PV) -> RResult<()> {
        // A scalar or par-local may appear inside cached subscripts:
        // conservatively drop the whole gather cache.
        self.cse_invalidate(None);
        // Par-locals and scalars; index elements are rejected by sema.
        let cur_level = self.ctx.len().wrapping_sub(1);
        if let Some(frame) = self.frames.last() {
            for (si, scope) in frame.scopes.iter().enumerate().rev() {
                match scope.vars.get(name) {
                    Some(LocalVar::ParField { field, level }) => {
                        let (field, level) = (*field, *level);
                        if level != cur_level {
                            return Err(RuntimeError::NotSupported(format!(
                                "assigning `{name}` from a more deeply nested construct"
                            )));
                        }
                        let ty = self.machine.elem_type(field)?;
                        let v = self.coerce_field(value, ty)?;
                        let PV::Field { id, .. } = v else { unreachable!() };
                        self.machine.copy(field, id)?;
                        self.release(v);
                        return Ok(());
                    }
                    Some(LocalVar::Scalar(_)) => {
                        let PV::Scalar(s) = value else {
                            return Err(RuntimeError::NotSupported(format!(
                                "assigning a parallel value to front-end scalar `{name}` \
                                 (use a reduction to combine values first)"
                            )));
                        };
                        // Invariant: `frame`/`si`/`name` were just found
                        // in the immutable borrow above; re-borrowing
                        // mutably cannot miss.
                        let frame = self.frames.last_mut().unwrap();
                        let slot = frame.scopes[si].vars.get_mut(name).unwrap();
                        let coerced = match slot {
                            LocalVar::Scalar(old) => {
                                super::space::coerce_scalar(s, old.elem_type())
                            }
                            _ => unreachable!(),
                        };
                        *slot = LocalVar::Scalar(coerced);
                        return Ok(());
                    }
                    Some(LocalVar::Slot(i)) => {
                        let i = *i;
                        let PV::Scalar(s) = value else {
                            return Err(RuntimeError::NotSupported(format!(
                                "assigning a parallel value to front-end scalar `{name}` \
                                 (use a reduction to combine values first)"
                            )));
                        };
                        let frame = self.frames.last_mut().unwrap();
                        let ty = frame.regs[i].elem_type();
                        frame.regs[i] = super::space::coerce_scalar(s, ty);
                        return Ok(());
                    }
                    Some(LocalVar::Array(_)) => {
                        return Err(RuntimeError::NotSupported(format!(
                            "array `{name}` assigned without subscripts"
                        )))
                    }
                    None => {}
                }
            }
        }
        if let Some(&i) = self.global_index.get(name) {
            let old = self.globals[i as usize];
            let PV::Scalar(s) = value else {
                return Err(RuntimeError::NotSupported(format!(
                    "assigning a parallel value to front-end scalar `{name}` \
                     (use a reduction to combine values first)"
                )));
            };
            self.globals[i as usize] = super::space::coerce_scalar(s, old.elem_type());
            return Ok(());
        }
        Err(RuntimeError::Unbound(name.to_string()))
    }
}

/// Canonical text of an access, the CSE cache key.
fn access_text(base: &str, subs: &[Expr]) -> String {
    use std::fmt::Write;
    let mut s = String::from(base);
    for sub in subs {
        let _ = write!(s, "[{}]", crate::pretty::expr(sub));
    }
    s
}

/// Whether subscripts are side-effect-free and deterministic within a
/// step (no `rand()`, no user calls, no embedded assignments).
fn subs_cacheable(subs: &[Expr]) -> bool {
    fn pure(e: &Expr) -> bool {
        match e {
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Inf(_) | Expr::Ident(..) => true,
            Expr::Index { subs, .. } => subs.iter().all(pure),
            Expr::Call { name, args, .. } => {
                matches!(name.as_str(), "power2" | "abs" | "ABS" | "min" | "max")
                    && args.iter().all(pure)
            }
            Expr::Unary { expr, .. } => pure(expr),
            Expr::Binary { lhs, rhs, .. } => pure(lhs) && pure(rhs),
            Expr::Ternary { cond, then_e, else_e, .. } => {
                pure(cond) && pure(then_e) && pure(else_e)
            }
            Expr::Assign { .. } => false,
            Expr::Reduce(_) => false,
        }
    }
    subs.iter().all(pure)
}

/// The INF a read outside the array yields, per element type.
pub(crate) fn inf_of(ty: ElemType) -> Scalar {
    match ty {
        ElemType::Int => Scalar::Int(i64::MAX),
        ElemType::Float => Scalar::Float(f64::INFINITY),
        ElemType::Bool => Scalar::Bool(false),
    }
}
