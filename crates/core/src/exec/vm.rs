//! The register-machine evaluator for the compiled IR.
//!
//! Executes [`crate::ir::IrProgram`] bodies over per-activation register
//! files, keeping UC activations on an explicit heap stack (`Act`) so
//! the VM itself never recurses natively — only tree escapes do. Every
//! budget check, error span, and side-effect order matches the AST
//! tree-walker exactly; see `crate::ir` for the invariants.

use std::sync::Arc;

use uc_cm::{ElemType, Scalar};

use super::{
    coerce_scalar, front_end_rand, scalar_unary, scalar_binary, Frame, LocalVar, Program,
    RResult, RuntimeError, Scope,
};
use crate::ir::{Instr, IrProgram, Reg};
use crate::stdlib;

/// One UC activation being executed by the VM.
struct Act {
    func: usize,
    pc: usize,
    /// Caller register receiving the return value.
    ret_dst: Reg,
}

/// Run `main()` under the IR backend.
pub(crate) fn run_main(p: &mut Program) -> RResult<()> {
    let ir: Arc<IrProgram> = p.ir.as_ref().expect("IR is built at compile time").clone();
    let Some(&main_idx) = ir.by_name.get("main") else {
        return Err(RuntimeError::Unbound("main".into()));
    };
    // An unlowered `main` runs wholly through the tree-walker. So does a
    // `main` with parameters: the tree-walker's entry call passes no
    // arguments and leaves such parameters unbound, which register
    // initialization cannot reproduce.
    if ir.funcs[main_idx].body.is_none() || !ir.funcs[main_idx].params.is_empty() {
        let main = p
            .checked
            .funcs
            .get("main")
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound("main".into()))?;
        p.call_function(&main, Vec::new())?;
        return Ok(());
    }
    let base_frames = p.frames.len();
    let result = exec(p, &ir, main_idx);
    if result.is_err() {
        // Unwind like the tree-walker: every frame's scopes freed
        // innermost-first, the call stack left intact for the report.
        while p.frames.len() > base_frames {
            let mut frame = p.frames.pop().expect("frames counted above");
            while let Some(scope) = frame.scopes.pop() {
                p.free_scope_vars(scope);
            }
        }
    }
    result
}

/// Push an activation: depth check, register file with coerced
/// parameters, runtime frame, call-stack entry. Mirrors `call_function`.
fn enter(
    p: &mut Program,
    ir: &IrProgram,
    fi: usize,
    acts: &mut Vec<Act>,
    ret_dst: Reg,
    args: Vec<Scalar>,
) -> RResult<()> {
    let max_depth = p.config.limits.max_call_depth;
    if p.frames.len() >= max_depth {
        return Err(RuntimeError::CallDepthExceeded { max: max_depth });
    }
    let f = &ir.funcs[fi];
    let mut regs = vec![Scalar::Int(0); f.n_slots as usize];
    for (i, (&float, v)) in f.params.iter().zip(args).enumerate() {
        regs[i] = coerce_scalar(v, if float { ElemType::Float } else { ElemType::Int });
    }
    p.frames.push(Frame { scopes: vec![Scope::default()], regs });
    p.call_stack.push((f.name.clone(), p.exec_span));
    acts.push(Act { func: fi, pc: 0, ret_dst });
    Ok(())
}

fn exec(p: &mut Program, ir: &IrProgram, main_idx: usize) -> RResult<()> {
    let mut acts: Vec<Act> = Vec::with_capacity(8);
    enter(p, ir, main_idx, &mut acts, 0, Vec::new())?;
    loop {
        let act = acts.last_mut().expect("active function");
        let fi = act.func;
        let pc = act.pc;
        act.pc += 1;
        let body = ir.funcs[fi].body.as_ref().expect("only lowered functions enter");
        match &body.code[pc] {
            Instr::Const { dst, v } => set(p, *dst, *v),
            Instr::Copy { dst, src } => {
                let v = get(p, *src);
                set(p, *dst, v);
            }
            Instr::Bin { op, dst, a, b } => {
                let v = scalar_binary(*op, get(p, *a), get(p, *b))?;
                set(p, *dst, v);
            }
            Instr::Un { op, dst, a } => {
                let v = scalar_unary(*op, get(p, *a));
                set(p, *dst, v);
            }
            Instr::Truthy { dst, src } => {
                let v = Scalar::Int(get(p, *src).as_bool() as i64);
                set(p, *dst, v);
            }
            Instr::StoreSlot { slot, src, float } => {
                let ty = if *float { ElemType::Float } else { ElemType::Int };
                let v = coerce_scalar(get(p, *src), ty);
                set(p, *slot, v);
            }
            Instr::LoadGlobal { dst, g } => {
                let v = p.globals[*g as usize];
                set(p, *dst, v);
            }
            Instr::StoreGlobal { g, src } => {
                let g = *g as usize;
                let v = get(p, *src);
                let ty = p.globals[g].elem_type();
                p.globals[g] = coerce_scalar(v, ty);
            }
            Instr::Jump { t } => acts.last_mut().expect("active").pc = *t as usize,
            Instr::JumpIfFalse { c, t } => {
                if !get(p, *c).as_bool() {
                    let t = *t as usize;
                    acts.last_mut().expect("active").pc = t;
                }
            }
            Instr::JumpIfTrue { c, t } => {
                if get(p, *c).as_bool() {
                    let t = *t as usize;
                    acts.last_mut().expect("active").pc = t;
                }
            }
            Instr::SetSpan { span } => p.exec_span = *span,
            Instr::IterInit { slot } => set(p, *slot, Scalar::Int(0)),
            Instr::IterCheck { slot, label } => {
                let n = get(p, *slot).as_int() + 1;
                set(p, *slot, Scalar::Int(n));
                if n as u64 > p.config.limits.max_iterations {
                    return Err(RuntimeError::IterationLimit(label));
                }
                p.machine.poll_deadline()?;
            }
            Instr::Call { dst, f, args } => {
                let fi = *f as usize;
                let vals: Vec<Scalar> = args.iter().map(|&r| get(p, r)).collect();
                if ir.funcs[fi].body.is_some() {
                    enter(p, ir, fi, &mut acts, *dst, vals)?;
                } else {
                    // Unlowered callee: the tree-walker runs the whole
                    // call (only reachable on the big-stack thread —
                    // `inline_ok` requires every function lowered).
                    let name = &ir.funcs[fi].name;
                    let fd = p
                        .checked
                        .funcs
                        .get(name)
                        .cloned()
                        .ok_or_else(|| RuntimeError::Unbound(name.clone()))?;
                    let ret = p.call_function(&fd, vals)?;
                    set(p, *dst, ret.unwrap_or(Scalar::Int(0)));
                }
            }
            Instr::Rand { dst } => {
                let seed = p.next_rand_seed();
                set(p, *dst, Scalar::Int(front_end_rand(seed)));
            }
            Instr::Power2 { dst, a } => {
                let v = Scalar::Int(stdlib::power2(get(p, *a).as_int()));
                set(p, *dst, v);
            }
            Instr::Abs { dst, a } => {
                let v = match get(p, *a) {
                    Scalar::Int(x) => Scalar::Int(x.wrapping_abs()),
                    Scalar::Float(x) => Scalar::Float(x.abs()),
                    Scalar::Bool(b) => Scalar::Int(b as i64),
                };
                set(p, *dst, v);
            }
            Instr::MinMax { dst, a, b, is_min } => {
                let (x, y) = (get(p, *a), get(p, *b));
                let v = if x.elem_type() == ElemType::Float || y.elem_type() == ElemType::Float {
                    let (x, y) = (x.as_float(), y.as_float());
                    Scalar::Float(if *is_min { x.min(y) } else { x.max(y) })
                } else {
                    let (x, y) = (x.as_int(), y.as_int());
                    Scalar::Int(if *is_min { x.min(y) } else { x.max(y) })
                };
                set(p, *dst, v);
            }
            Instr::Ret { src } => {
                let v = src.map(|r| get(p, r));
                let done = acts.pop().expect("active");
                let mut frame = p.frames.pop().expect("frame per activation");
                while let Some(scope) = frame.scopes.pop() {
                    p.free_scope_vars(scope);
                }
                p.call_stack.pop();
                if acts.is_empty() {
                    return Ok(());
                }
                // A valueless return yields 0, like `eval_call`.
                set(p, done.ret_dst, v.unwrap_or(Scalar::Int(0)));
            }
            Instr::EnterScope => {
                p.frames.last_mut().expect("frame").scopes.push(Scope::default());
            }
            Instr::ExitScopes { n } => {
                for _ in 0..*n {
                    let scope =
                        p.frames.last_mut().expect("frame").scopes.pop().expect("open scope");
                    p.free_scope_vars(scope);
                }
            }
            Instr::BindName { name, slot } => {
                p.frames
                    .last_mut()
                    .expect("frame")
                    .scopes
                    .last_mut()
                    .expect("scope")
                    .vars
                    .insert(name.clone(), LocalVar::Slot(*slot as usize));
            }
            Instr::EvalExpr { dst, e } => {
                let v = p.eval_scalar(&body.exprs[*e as usize])?;
                set(p, *dst, v);
            }
            Instr::EvalEffect { e } => {
                let v = p.eval(&body.exprs[*e as usize])?;
                p.release(v);
            }
            Instr::Tree { s } => {
                // Lowering only escapes statements that complete with
                // normal flow (parallel constructs, declarations, index
                // sets, `swap`).
                let flow = p.exec_stmt(&body.stmts[*s as usize])?;
                debug_assert!(matches!(flow, super::stmt::Flow::Normal));
            }
            Instr::Nop => {}
        }
    }
}

#[inline]
fn get(p: &Program, r: Reg) -> Scalar {
    p.frames.last().expect("frame").regs[r as usize]
}

#[inline]
fn set(p: &mut Program, r: Reg, v: Scalar) {
    p.frames.last_mut().expect("frame").regs[r as usize] = v;
}
