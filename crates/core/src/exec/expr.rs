//! Expression evaluation.
//!
//! Expressions evaluate to [`PV`]s: front-end scalars or fields on the
//! current iteration space. Mixed scalar/field operations broadcast the
//! scalar as an immediate (one SIMD instruction), mirroring the CM's
//! front-end-broadcast execution model. In a parallel context `&&`/`||`
//! evaluate both sides synchronously (no short-circuit — all enabled
//! processors execute every instruction); on the front end they
//! short-circuit like C.

use uc_cm::{BinOp, ElemType, Scalar, UnOp};

use super::{Program, RResult, RuntimeError, LocalVar, PV};
use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::stdlib;

impl Program {
    /// Evaluate an expression in the current context.
    pub(crate) fn eval(&mut self, e: &Expr) -> RResult<PV> {
        match e {
            Expr::IntLit(v, _) => Ok(PV::Scalar(Scalar::Int(*v))),
            Expr::FloatLit(v, _) => Ok(PV::Scalar(Scalar::Float(*v))),
            Expr::Inf(_) => Ok(PV::Scalar(Scalar::Int(i64::MAX))),
            Expr::Ident(name, _) => self.resolve_ident(name),
            Expr::Index { base, subs, .. } => self.read_array(base, subs),
            Expr::Call { name, args, .. } => self.eval_call(name, args),
            Expr::Unary { op, expr, .. } => {
                let v = self.eval(expr)?;
                self.apply_unary(*op, v)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if self.ctx.is_empty() {
                    // Front-end short-circuit for && and ||.
                    if *op == BinaryOp::LogAnd || *op == BinaryOp::LogOr {
                        let l = self.eval_scalar(lhs)?;
                        let lt = l.as_bool();
                        if (*op == BinaryOp::LogAnd && !lt) || (*op == BinaryOp::LogOr && lt) {
                            return Ok(PV::Scalar(Scalar::Int(lt as i64)));
                        }
                        let r = self.eval_scalar(rhs)?;
                        return Ok(PV::Scalar(Scalar::Int(r.as_bool() as i64)));
                    }
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                self.apply_binary(*op, l, r)
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                if self.ctx.is_empty() {
                    let c = self.eval_scalar(cond)?;
                    return if c.as_bool() { self.eval(then_e) } else { self.eval(else_e) };
                }
                let c = self.eval(cond)?;
                let c = self.truthify(c)?;
                let t = self.eval(then_e)?;
                let f = self.eval(else_e)?;
                let ty = self.common_type(&t, &f)?;
                let t = self.coerce_field(t, ty)?;
                let f = self.coerce_field(f, ty)?;
                let c = self.coerce_field(c, ElemType::Bool)?;
                let (PV::Field { id: cid, .. }, PV::Field { id: tid, .. }, PV::Field { id: fid, .. }) =
                    (c, t, f)
                else {
                    unreachable!()
                };
                let vp = self.ctx.last().unwrap().vp;
                let dst = self.machine.alloc(vp, "~sel", ty)?;
                self.machine.select(dst, cid, tid, fid)?;
                self.release(c);
                self.release(t);
                self.release(f);
                Ok(PV::owned(dst))
            }
            Expr::Assign { target, op, value, .. } => self.eval_assign(target, *op, value),
            Expr::Reduce(r) => self.eval_reduce(r),
        }
    }

    /// Evaluate an expression that must be a front-end scalar.
    pub(crate) fn eval_scalar(&mut self, e: &Expr) -> RResult<Scalar> {
        match self.eval(e)? {
            PV::Scalar(s) => Ok(s),
            pv @ PV::Field { .. } => {
                self.release(pv);
                Err(RuntimeError::NotSupported(
                    "a parallel value was used where a front-end scalar is required".into(),
                ))
            }
        }
    }

    /// Resolve a name: index elements (innermost construct first), local
    /// variables, globals, `#define` constants.
    pub(crate) fn resolve_ident(&mut self, name: &str) -> RResult<PV> {
        // Index elements of enclosing constructs.
        for level in (0..self.ctx.len()).rev() {
            if let Some((_, field, _)) =
                self.ctx[level].elems.iter().find(|(n, _, _)| n == name).cloned()
            {
                return self.lift_to_current(field, level);
            }
        }
        // Function locals (including `seq` element scalars and par-locals).
        if let Some(frame) = self.frames.last() {
            for scope in frame.scopes.iter().rev() {
                match scope.vars.get(name) {
                    Some(LocalVar::Scalar(s)) => return Ok(PV::Scalar(*s)),
                    Some(LocalVar::Slot(i)) => return Ok(PV::Scalar(frame.regs[*i])),
                    Some(LocalVar::ParField { field, level }) => {
                        let (field, level) = (*field, *level);
                        if self.ctx.is_empty() {
                            return Err(RuntimeError::NotSupported(format!(
                                "parallel variable `{name}` used outside a parallel construct"
                            )));
                        }
                        return self.lift_to_current(field, level);
                    }
                    Some(LocalVar::Array(_)) => {
                        return Err(RuntimeError::NotSupported(format!(
                            "array `{name}` used without subscripts"
                        )))
                    }
                    None => {}
                }
            }
        }
        if let Some(&i) = self.global_index.get(name) {
            return Ok(PV::Scalar(self.globals[i as usize]));
        }
        if let Some(v) = self.checked.consts.get(name) {
            return Ok(PV::Scalar(Scalar::Int(*v)));
        }
        Err(RuntimeError::Unbound(name.to_string()))
    }

    /// The element type a PV would have as a field.
    pub(crate) fn pv_type(&self, pv: &PV) -> RResult<ElemType> {
        Ok(match pv {
            PV::Scalar(s) => s.elem_type(),
            PV::Field { id, .. } => self.machine.elem_type(*id)?,
        })
    }

    /// Numeric join of two PV types (float wins; bool acts as int).
    pub(crate) fn common_type(&self, a: &PV, b: &PV) -> RResult<ElemType> {
        let (ta, tb) = (self.pv_type(a)?, self.pv_type(b)?);
        Ok(if ta == ElemType::Float || tb == ElemType::Float {
            ElemType::Float
        } else {
            ElemType::Int
        })
    }

    /// Convert a PV to a boolean (C truthiness).
    pub(crate) fn truthify(&mut self, pv: PV) -> RResult<PV> {
        match pv {
            PV::Scalar(s) => Ok(PV::Scalar(Scalar::Bool(s.as_bool()))),
            PV::Field { id, .. } => {
                if self.machine.elem_type(id)? == ElemType::Bool {
                    Ok(pv)
                } else {
                    self.coerce_field(pv, ElemType::Bool)
                }
            }
        }
    }

    fn apply_unary(&mut self, op: UnaryOp, v: PV) -> RResult<PV> {
        match (op, v) {
            (op, PV::Scalar(s)) => Ok(PV::Scalar(scalar_unary(op, s))),
            (op, v @ PV::Field { .. }) => {
                let ty = self.pv_type(&v)?;
                let vp = self
                    .ctx
                    .last()
                    .ok_or_else(|| RuntimeError::NotSupported("field outside context".into()))?
                    .vp;
                match op {
                    UnaryOp::Neg => {
                        let v = if ty == ElemType::Bool {
                            self.coerce_field(v, ElemType::Int)?
                        } else {
                            v
                        };
                        let ty = self.pv_type(&v)?;
                        let PV::Field { id, .. } = v else { unreachable!() };
                        let dst = self.machine.alloc(vp, "~neg", ty)?;
                        self.machine.unop(UnOp::Neg, dst, id)?;
                        self.release(v);
                        Ok(PV::owned(dst))
                    }
                    UnaryOp::Not => {
                        let b = self.truthify(v)?;
                        let PV::Field { id, .. } = b else { unreachable!() };
                        let dst = self.machine.alloc_bool(vp, "~not")?;
                        self.machine.unop(UnOp::Not, dst, id)?;
                        self.release(b);
                        Ok(PV::owned(dst))
                    }
                    UnaryOp::BitNot => {
                        let v = self.coerce_field(v, ElemType::Int)?;
                        let PV::Field { id, .. } = v else { unreachable!() };
                        let dst = self.machine.alloc_int(vp, "~bnot")?;
                        self.machine.unop(UnOp::BitNot, dst, id)?;
                        self.release(v);
                        Ok(PV::owned(dst))
                    }
                }
            }
        }
    }

    pub(crate) fn apply_binary(&mut self, op: BinaryOp, l: PV, r: PV) -> RResult<PV> {
        if let (PV::Scalar(a), PV::Scalar(b)) = (&l, &r) {
            return Ok(PV::Scalar(scalar_binary(op, *a, *b)?));
        }
        // At least one side is a field: compute elementwise.
        let mop = machine_op(op);
        let (l, r) = match op {
            BinaryOp::LogAnd | BinaryOp::LogOr => {
                (self.truthify(l)?, self.truthify(r)?)
            }
            _ if op.is_comparison() => {
                let ty = self.common_type(&l, &r)?;
                (self.coerce_operand(l, ty)?, self.coerce_operand(r, ty)?)
            }
            BinaryOp::Mod
            | BinaryOp::Shl
            | BinaryOp::Shr
            | BinaryOp::BitAnd
            | BinaryOp::BitOr
            | BinaryOp::BitXor => {
                (self.coerce_operand(l, ElemType::Int)?, self.coerce_operand(r, ElemType::Int)?)
            }
            _ => {
                let ty = self.common_type(&l, &r)?;
                (self.coerce_operand(l, ty)?, self.coerce_operand(r, ty)?)
            }
        };
        let vp = self
            .ctx
            .last()
            .ok_or_else(|| RuntimeError::NotSupported("field op outside context".into()))?
            .vp;
        let out_ty = if op.is_comparison() || op == BinaryOp::LogAnd || op == BinaryOp::LogOr {
            ElemType::Bool
        } else {
            self.pv_type(&l)?
        };
        let dst = self.machine.alloc(vp, "~bin", out_ty)?;
        let result = match (&l, &r) {
            (PV::Field { id: a, .. }, PV::Field { id: b, .. }) => {
                self.machine.binop(mop, dst, *a, *b)
            }
            (PV::Field { id: a, .. }, PV::Scalar(s)) => {
                let s = super::space::coerce_scalar(*s, self.machine.elem_type(*a)?);
                self.machine.binop_imm(mop, dst, *a, s)
            }
            (PV::Scalar(s), PV::Field { id: b, .. }) => {
                let s = super::space::coerce_scalar(*s, self.machine.elem_type(*b)?);
                self.machine.binop_imm_l(mop, dst, s, *b)
            }
            (PV::Scalar(_), PV::Scalar(_)) => unreachable!("handled above"),
        };
        self.release(l);
        self.release(r);
        match result {
            Ok(()) => Ok(PV::owned(dst)),
            Err(e) => {
                let _ = self.machine.free(dst);
                Err(e.into())
            }
        }
    }

    /// Coerce a PV operand to a type, preserving scalars as scalars.
    fn coerce_operand(&mut self, pv: PV, ty: ElemType) -> RResult<PV> {
        match pv {
            PV::Scalar(s) => Ok(PV::Scalar(super::space::coerce_scalar(s, ty))),
            PV::Field { .. } => self.coerce_field(pv, ty),
        }
    }

    // ---- calls ------------------------------------------------------------

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> RResult<PV> {
        match name {
            "power2" => {
                let v = self.eval(&args[0])?;
                match v {
                    PV::Scalar(s) => Ok(PV::Scalar(Scalar::Int(stdlib::power2(s.as_int())))),
                    PV::Field { .. } => {
                        let v = self.coerce_field(v, ElemType::Int)?;
                        let PV::Field { id, .. } = v else { unreachable!() };
                        let vp = self.ctx.last().unwrap().vp;
                        let dst = self.machine.alloc_int(vp, "~pow2")?;
                        self.machine.binop_imm_l(BinOp::Shl, dst, Scalar::Int(1), id)?;
                        self.release(v);
                        Ok(PV::owned(dst))
                    }
                }
            }
            "rand" => {
                let seed = self.next_rand_seed();
                if let Some(ctx) = self.ctx.last() {
                    let vp = ctx.vp;
                    let dst = self.machine.alloc_int(vp, "~rand")?;
                    self.machine.rand_int(dst, 1 << 31, seed)?;
                    Ok(PV::owned(dst))
                } else {
                    // Front-end rand: same generator, position 0.
                    let v = front_end_rand(seed);
                    Ok(PV::Scalar(Scalar::Int(v)))
                }
            }
            "abs" | "ABS" => {
                let v = self.eval(&args[0])?;
                match v {
                    PV::Scalar(Scalar::Int(x)) => Ok(PV::Scalar(Scalar::Int(x.wrapping_abs()))),
                    PV::Scalar(Scalar::Float(x)) => Ok(PV::Scalar(Scalar::Float(x.abs()))),
                    PV::Scalar(Scalar::Bool(b)) => Ok(PV::Scalar(Scalar::Int(b as i64))),
                    PV::Field { .. } => {
                        let ty = self.pv_type(&v)?;
                        let ty = if ty == ElemType::Bool { ElemType::Int } else { ty };
                        let v = self.coerce_field(v, ty)?;
                        let PV::Field { id, .. } = v else { unreachable!() };
                        let vp = self.ctx.last().unwrap().vp;
                        let dst = self.machine.alloc(vp, "~abs", ty)?;
                        self.machine.unop(UnOp::Abs, dst, id)?;
                        self.release(v);
                        Ok(PV::owned(dst))
                    }
                }
            }
            "min" | "max" => {
                let l = self.eval(&args[0])?;
                let r = self.eval(&args[1])?;
                let mop = if name == "min" { BinOp::Min } else { BinOp::Max };
                match (&l, &r) {
                    (PV::Scalar(a), PV::Scalar(b)) => {
                        let v = if a.elem_type() == ElemType::Float
                            || b.elem_type() == ElemType::Float
                        {
                            let (x, y) = (a.as_float(), b.as_float());
                            Scalar::Float(if name == "min" { x.min(y) } else { x.max(y) })
                        } else {
                            let (x, y) = (a.as_int(), b.as_int());
                            Scalar::Int(if name == "min" { x.min(y) } else { x.max(y) })
                        };
                        Ok(PV::Scalar(v))
                    }
                    _ => {
                        let ty = self.common_type(&l, &r)?;
                        let l = self.coerce_field(l, ty)?;
                        let r = self.coerce_field(r, ty)?;
                        let (PV::Field { id: a, .. }, PV::Field { id: b, .. }) = (&l, &r)
                        else {
                            unreachable!()
                        };
                        let vp = self.ctx.last().unwrap().vp;
                        let dst = self.machine.alloc(vp, "~mm", ty)?;
                        self.machine.binop(mop, dst, *a, *b)?;
                        self.release(l);
                        self.release(r);
                        Ok(PV::owned(dst))
                    }
                }
            }
            "swap" => Err(RuntimeError::NotSupported(
                "swap(...) is a statement, not an expression".into(),
            )),
            _ => {
                // User-defined function: front-end call; in a parallel
                // context it is allowed when all arguments are scalars
                // (e.g. `power2(j)`-style helpers over seq elements).
                let f = self
                    .checked
                    .funcs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| RuntimeError::Unbound(name.to_string()))?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match self.eval(a)? {
                        PV::Scalar(s) => vals.push(s),
                        pv @ PV::Field { .. } => {
                            self.release(pv);
                            return Err(RuntimeError::NotSupported(format!(
                                "call to `{name}` with a parallel argument \
                                 (user functions run on the front end)"
                            )));
                        }
                    }
                }
                let ret = self.call_function(&f, vals)?;
                Ok(PV::Scalar(ret.unwrap_or(Scalar::Int(0))))
            }
        }
    }
}

/// Front-end unary arithmetic on scalars (C semantics, wrapping ints).
pub(crate) fn scalar_unary(op: UnaryOp, s: Scalar) -> Scalar {
    match (op, s) {
        (UnaryOp::Neg, Scalar::Int(x)) => Scalar::Int(x.wrapping_neg()),
        (UnaryOp::Neg, Scalar::Float(x)) => Scalar::Float(-x),
        (UnaryOp::Neg, Scalar::Bool(b)) => Scalar::Int(-(b as i64)),
        (UnaryOp::Not, s) => Scalar::Int(!s.as_bool() as i64),
        (UnaryOp::BitNot, s) => Scalar::Int(!s.as_int()),
    }
}

/// Front-end arithmetic on scalars (C semantics, wrapping ints).
pub(crate) fn scalar_binary(op: BinaryOp, a: Scalar, b: Scalar) -> RResult<Scalar> {
    use BinaryOp::*;
    let float = a.elem_type() == ElemType::Float || b.elem_type() == ElemType::Float;
    Ok(match op {
        LogAnd => Scalar::Int((a.as_bool() && b.as_bool()) as i64),
        LogOr => Scalar::Int((a.as_bool() || b.as_bool()) as i64),
        Mod | Shl | Shr | BitAnd | BitOr | BitXor => {
            let (x, y) = (a.as_int(), b.as_int());
            Scalar::Int(match op {
                Mod => {
                    if y == 0 {
                        return Err(RuntimeError::DivideByZero);
                    }
                    x.wrapping_rem(y)
                }
                Shl => x.wrapping_shl(y as u32),
                Shr => x.wrapping_shr(y as u32),
                BitAnd => x & y,
                BitOr => x | y,
                BitXor => x ^ y,
                _ => unreachable!(),
            })
        }
        Lt | Le | Gt | Ge | Eq | Ne => {
            let t = if float {
                let (x, y) = (a.as_float(), b.as_float());
                match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_int(), b.as_int());
                match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                }
            };
            Scalar::Int(t as i64)
        }
        Add | Sub | Mul | Div => {
            if float {
                let (x, y) = (a.as_float(), b.as_float());
                Scalar::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                })
            } else {
                let (x, y) = (a.as_int(), b.as_int());
                Scalar::Int(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err(RuntimeError::DivideByZero);
                        }
                        x.wrapping_div(y)
                    }
                    _ => unreachable!(),
                })
            }
        }
    })
}

/// Map an AST binary op onto the machine's elementwise op.
fn machine_op(op: BinaryOp) -> BinOp {
    use BinaryOp::*;
    match op {
        Mul => BinOp::Mul,
        Div => BinOp::Div,
        Mod => BinOp::Mod,
        Add => BinOp::Add,
        Sub => BinOp::Sub,
        Shl => BinOp::Shl,
        Shr => BinOp::Shr,
        Lt => BinOp::Lt,
        Le => BinOp::Le,
        Gt => BinOp::Gt,
        Ge => BinOp::Ge,
        Eq => BinOp::Eq,
        Ne => BinOp::Ne,
        BitAnd => BinOp::BitAnd,
        BitXor => BinOp::BitXor,
        BitOr => BinOp::BitOr,
        LogAnd => BinOp::LogAnd,
        LogOr => BinOp::LogOr,
    }
}

/// Deterministic front-end `rand()` built from the same SplitMix stream
/// as the machine's per-VP generator.
pub(crate) fn front_end_rand(seed: u64) -> i64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) % (1 << 31)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops() {
        use BinaryOp::*;
        let i = |v| Scalar::Int(v);
        assert_eq!(scalar_binary(Add, i(2), i(3)).unwrap(), i(5));
        assert_eq!(scalar_binary(Sub, i(2), i(3)).unwrap(), i(-1));
        assert_eq!(scalar_binary(Mul, i(4), i(3)).unwrap(), i(12));
        assert_eq!(scalar_binary(Div, i(7), i(2)).unwrap(), i(3));
        assert_eq!(scalar_binary(Mod, i(7), i(2)).unwrap(), i(1));
        assert_eq!(scalar_binary(Lt, i(1), i(2)).unwrap(), i(1));
        assert_eq!(scalar_binary(Eq, i(2), i(2)).unwrap(), i(1));
        assert_eq!(scalar_binary(LogAnd, i(1), i(0)).unwrap(), i(0));
        assert_eq!(scalar_binary(Shl, i(1), i(4)).unwrap(), i(16));
        assert!(scalar_binary(Div, i(1), i(0)).is_err());
        assert!(scalar_binary(Mod, i(1), i(0)).is_err());
        // Float promotion.
        assert_eq!(
            scalar_binary(Add, Scalar::Float(0.5), i(1)).unwrap(),
            Scalar::Float(1.5)
        );
        assert_eq!(scalar_binary(Lt, Scalar::Float(0.5), i(1)).unwrap(), i(1));
    }

    #[test]
    fn front_end_rand_bounded_and_deterministic() {
        let a = front_end_rand(1);
        let b = front_end_rand(1);
        assert_eq!(a, b);
        assert!((0..(1 << 31)).contains(&a));
        assert_ne!(front_end_rand(1), front_end_rand(2));
    }
}
