//! Iteration spaces and value lifting.
//!
//! A parallel construct over sets `I, J` materialises a VP set shaped
//! `[|I|, |J|]`. When constructs nest, the inner space's geometry is the
//! outer geometry *extended* with the new sets' extents — so outer axes
//! are a prefix of inner axes, and the linear address of the enclosing
//! iteration point is simply `p / rest` (`rest` = product of the new
//! extents). That quotient is how outer-space values (index elements,
//! par-local variables, activity masks) are *lifted* onto the inner space
//! with one router gather.

use std::collections::HashMap;

use uc_cm::{BinOp, ElemType, FieldId, Scalar, VpSetId};

use super::{Program, RResult, RuntimeError, PV};
use crate::sema::IndexSetInfo;

/// How an index element relates to its space axis, used by the access
/// optimizer: contiguous sets bind as `coord + lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ElemForm {
    /// `value = coordinate(axis) + lo` (sets declared `{lo..hi}`).
    AxisPlus { axis: usize, lo: i64 },
    /// Arbitrary element list: value materialised by table lookup only.
    Opaque,
}

/// One level of the parallel-context stack.
#[derive(Debug)]
pub struct ParCtx {
    pub(crate) vp: VpSetId,
    pub(crate) dims: Vec<usize>,
    /// Element bindings this level introduced (name → value field on this
    /// space), plus the symbolic form for the optimizer.
    pub(crate) elems: Vec<(String, FieldId, ElemForm)>,
    /// Fields to free when the level pops.
    pub(crate) owned: Vec<FieldId>,
    /// Number of context pushes to undo when the level pops.
    pub(crate) pushes: usize,
    /// Cache of lift-address fields keyed by ancestor level index.
    pub(crate) lift_cache: HashMap<usize, FieldId>,
}

impl Program {
    /// Push a new parallel-context level for the given index sets,
    /// transferring the enclosing enabled set onto the extended space.
    ///
    /// Returns the level index (for symmetric [`Program::pop_space`]).
    pub(crate) fn push_space(&mut self, set_names: &[String]) -> RResult<usize> {
        let mut sets: Vec<(String, IndexSetInfo)> = Vec::with_capacity(set_names.len());
        for name in set_names {
            let info = self
                .lookup_index_set(name)
                .ok_or_else(|| RuntimeError::Unbound(name.clone()))?;
            sets.push((name.clone(), info));
        }
        let outer_dims: Vec<usize> =
            self.ctx.last().map(|c| c.dims.clone()).unwrap_or_default();
        let mut dims = outer_dims.clone();
        dims.extend(sets.iter().map(|(_, s)| s.elements.len()));
        let vp = self.space_vp(&dims)?;

        let mut level = ParCtx {
            vp,
            dims: dims.clone(),
            elems: Vec::new(),
            owned: Vec::new(),
            pushes: 0,
            lift_cache: HashMap::new(),
        };

        // Bind each set's element as a field on the new space. Done
        // *before* the mask transfer so the value fields are valid on
        // every VP (the base context is all-active here) — which lets
        // them be cached and reused across re-entries of the construct.
        debug_assert_eq!(
            self.machine.context_depth(vp)?,
            1,
            "iteration space acquired with a non-base context"
        );
        for (axis_off, (_, info)) in sets.iter().enumerate() {
            let axis = outer_dims.len() + axis_off;
            let form = match contiguous_lo(&info.elements) {
                Some(lo) => ElemForm::AxisPlus { axis, lo },
                None => ElemForm::Opaque,
            };
            let key = (dims.clone(), axis, info.elements.clone());
            let field = match self.elem_cache.get(&key) {
                Some(&f) => f,
                None => {
                    let field = self.machine.alloc_int(vp, &info.elem)?;
                    match form {
                        ElemForm::AxisPlus { lo, .. } => {
                            self.machine.axis_coord(field, axis)?;
                            if lo != 0 {
                                self.machine.binop_imm(
                                    BinOp::Add,
                                    field,
                                    field,
                                    Scalar::Int(lo),
                                )?;
                            }
                        }
                        ElemForm::Opaque => {
                            // Arbitrary list: front-end table write.
                            let size: usize = dims.iter().product();
                            let stride: usize = dims[axis + 1..].iter().product();
                            let extent = info.elements.len();
                            let values: Vec<i64> = (0..size)
                                .map(|p| info.elements[(p / stride) % extent])
                                .collect();
                            self.machine.write_all(field, uc_cm::FieldData::I64(values))?;
                        }
                    }
                    self.elem_cache.insert(key, field);
                    field
                }
            };
            // Cached fields are owned by the cache, not the level.
            level.elems.push((info.elem.clone(), field, form));
        }

        // Transfer the outer activity mask, if any, onto this space.
        if let Some(outer) = self.ctx.last() {
            let outer_vp = outer.vp;
            let rest: usize = dims[outer_dims.len()..].iter().product();
            let outer_mask = self.machine.alloc_bool(outer_vp, "~outmask")?;
            self.machine.read_context(outer_mask)?;
            let addr = self.machine.alloc_int(vp, "~liftaddr")?;
            self.machine.iota(addr)?;
            self.machine.binop_imm(BinOp::Div, addr, addr, Scalar::Int(rest as i64))?;
            let lifted = self.machine.alloc_bool(vp, "~inmask")?;
            self.machine.get(lifted, addr, outer_mask)?;
            self.machine.push_context(lifted)?;
            level.pushes += 1;
            self.machine.free(outer_mask)?;
            self.machine.free(lifted)?;
            level.owned.push(addr); // keep: doubles as lift cache below
            level.lift_cache.insert(self.ctx.len() - 1, addr);
        }

        self.ctx.push(level);
        Ok(self.ctx.len() - 1)
    }

    /// Pop a parallel-context level, undoing its context pushes and
    /// freeing its fields.
    pub(crate) fn pop_space(&mut self, level: usize) -> RResult<()> {
        debug_assert_eq!(level + 1, self.ctx.len(), "unbalanced space push/pop");
        let ctx = self.ctx.pop().expect("pop_space on empty stack");
        for _ in 0..ctx.pushes {
            self.machine.pop_context(ctx.vp)?;
        }
        for f in ctx.owned {
            let _ = self.machine.free(f);
        }
        Ok(())
    }

    /// The current iteration space, if any.
    pub(crate) fn cur_space(&self) -> Option<&ParCtx> {
        self.ctx.last()
    }

    /// Lift a field living on ctx level `from_level` onto the current
    /// (innermost) space. Returns an owned temporary (or the field itself,
    /// un-owned, when already on the current space).
    pub(crate) fn lift_to_current(&mut self, field: FieldId, from_level: usize) -> RResult<PV> {
        let cur_level = self.ctx.len() - 1;
        if from_level == cur_level {
            return Ok(PV::Field { id: field, owned: false });
        }
        debug_assert!(from_level < cur_level);
        let addr = self.lift_addr(from_level)?;
        let cur_vp = self.ctx[cur_level].vp;
        let ty = self.machine.elem_type(field)?;
        let dst = self.machine.alloc(cur_vp, "~lift", ty)?;
        self.machine.get(dst, addr, field)?;
        Ok(PV::owned(dst))
    }

    /// The (cached) lift-address field on the current space addressing
    /// ancestor level `from_level`.
    pub(crate) fn lift_addr(&mut self, from_level: usize) -> RResult<FieldId> {
        let cur_level = self.ctx.len() - 1;
        if let Some(&f) = self.ctx[cur_level].lift_cache.get(&from_level) {
            return Ok(f);
        }
        let cur = &self.ctx[cur_level];
        let anc = &self.ctx[from_level];
        let rest: usize = cur.dims[anc.dims.len()..].iter().product();
        let vp = cur.vp;
        let addr = self.machine.alloc_int(vp, "~liftaddr")?;
        self.machine.iota(addr)?;
        self.machine.binop_imm(BinOp::Div, addr, addr, Scalar::Int(rest as i64))?;
        let cur = &mut self.ctx[cur_level];
        cur.owned.push(addr);
        cur.lift_cache.insert(from_level, addr);
        Ok(addr)
    }

    /// Materialise a PV as a field of the requested type on the current
    /// space (broadcasting scalars, converting when needed). Returns an
    /// owned field unless the PV already is a field of the right type.
    pub(crate) fn coerce_field(&mut self, pv: PV, ty: ElemType) -> RResult<PV> {
        let cur_vp = self
            .cur_space()
            .map(|c| c.vp)
            .ok_or_else(|| RuntimeError::NotSupported("field outside parallel context".into()))?;
        match pv {
            PV::Scalar(s) => {
                let dst = self.machine.alloc(cur_vp, "~bcast", ty)?;
                let coerced = coerce_scalar(s, ty);
                self.machine.fill_unconditional(dst, coerced)?;
                Ok(PV::owned(dst))
            }
            PV::Field { id, owned } => {
                let actual = self.machine.elem_type(id)?;
                if actual == ty {
                    Ok(PV::Field { id, owned })
                } else {
                    let dst = self.machine.alloc(cur_vp, "~conv", ty)?;
                    self.machine.convert(dst, id)?;
                    if owned {
                        self.machine.free(id)?;
                    }
                    Ok(PV::owned(dst))
                }
            }
        }
    }

    /// Look up an index set through local scopes then globals.
    pub(crate) fn lookup_index_set(&self, name: &str) -> Option<IndexSetInfo> {
        if let Some(frame) = self.frames.last() {
            for scope in frame.scopes.iter().rev() {
                if let Some(info) = scope.index_sets.get(name) {
                    return Some(info.clone());
                }
            }
        }
        self.checked.index_set(name).cloned()
    }
}

/// Coerce a front-end scalar to an element type (C-style).
pub(crate) fn coerce_scalar(s: Scalar, ty: ElemType) -> Scalar {
    match ty {
        ElemType::Int => Scalar::Int(s.as_int()),
        ElemType::Float => Scalar::Float(s.as_float()),
        ElemType::Bool => Scalar::Bool(s.as_bool()),
    }
}

/// If `elements` is `lo, lo+1, ..., hi`, return `lo`.
fn contiguous_lo(elements: &[i64]) -> Option<i64> {
    let lo = *elements.first()?;
    for (k, &v) in elements.iter().enumerate() {
        if v != lo + k as i64 {
            return None;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_detection() {
        assert_eq!(contiguous_lo(&[0, 1, 2, 3]), Some(0));
        assert_eq!(contiguous_lo(&[5, 6, 7]), Some(5));
        assert_eq!(contiguous_lo(&[-2, -1, 0]), Some(-2));
        assert_eq!(contiguous_lo(&[4, 2, 9]), None);
        assert_eq!(contiguous_lo(&[]), None);
    }

    #[test]
    fn scalar_coercion() {
        assert_eq!(coerce_scalar(Scalar::Float(2.9), ElemType::Int), Scalar::Int(2));
        assert_eq!(coerce_scalar(Scalar::Int(1), ElemType::Bool), Scalar::Bool(true));
        assert_eq!(coerce_scalar(Scalar::Bool(true), ElemType::Float), Scalar::Float(1.0));
    }
}
