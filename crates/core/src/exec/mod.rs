//! The UC executor.
//!
//! Runs a checked UC program on the Connection Machine simulator. The
//! execution model mirrors the paper's implementation:
//!
//! * the **front end** interprets sequential statements and holds scalar
//!   variables;
//! * every *parallel construct* materialises an **iteration space** — a VP
//!   set whose geometry is the Cartesian product of the construct's index
//!   sets (nested constructs extend the enclosing space, so parallelism
//!   multiplies, §3.4's matrix-multiply example);
//! * `st` predicates compile to context-flag pushes;
//! * array accesses are classified as **local**, **NEWS** or **router**
//!   (the communication classes whose costs the map section optimises);
//! * reductions evaluate their operand on the extended space and combine
//!   into the enclosing space through the router's combining sends;
//! * the `par` single-assignment rule ("multiple values assigned to one
//!   variable must be identical") is enforced by the router's collision
//!   detection.
//!
//! Submodules: `space` (iteration spaces and lifting), `expr`
//! (expression evaluation), `access` (array access paths), `reduce`
//! (reduction evaluation), `stmt` (statements and the four constructs).

mod access;
mod expr;
mod reduce;
mod space;
mod stmt;
mod vm;

use std::collections::HashMap;

use uc_cm::{CmError, ElemType, FieldId, Machine, MachineConfig, MachineLimits, Scalar, VpSetId};

use crate::ast::FuncDef;
use crate::diag::Diagnostics;
use crate::mapping::{self, ArrayMapping};
use crate::opt;
use crate::parser;
use crate::sema::{self, Checked};
use crate::span::Span;

pub use space::ParCtx;

// Shared scalar semantics, reused verbatim by the IR lowering/passes and
// the register VM so both backends compute bit-identical values.
pub(crate) use expr::{front_end_rand, scalar_binary, scalar_unary};
pub(crate) use space::coerce_scalar;

/// Native stack for the interpreter thread. Sized so the default
/// [`ExecLimits::max_call_depth`] of 256 UC activations fits with wide
/// margin even in debug builds (~8 KiB of host stack per activation).
const EXEC_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Resource budgets governing one program, replacing the hard-coded caps
/// the executor used to scatter through `stmt.rs`. The defaults are what
/// `uc run` uses without flags; a hosting service (ROADMAP item 4) should
/// tighten every one of them per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecLimits {
    /// Simulated-cycle budget (`None` = unlimited). Checked by the
    /// machine on every charged instruction; front-end-only statements
    /// don't consume fuel, so pair this with `max_iterations` or
    /// `timeout_ms` to bound pure front-end loops.
    pub fuel: Option<u64>,
    /// Bytes of live machine storage — fields plus context masks —
    /// charged *before* allocation (`None` = unlimited). Default 256 MiB,
    /// so a hostile geometry traps instead of OOMing the process.
    pub max_mem_bytes: Option<u64>,
    /// Maximum concurrently-live function activations. A call that would
    /// make the stack deeper than this traps. Default 256.
    pub max_call_depth: usize,
    /// Cap on the iterations of any single `while`/`for` loop or
    /// `*`-construct fixpoint. Default `1 << 22`.
    pub max_iterations: u64,
    /// Wall-clock deadline for one [`Program::run`], in milliseconds
    /// (`None` = none). Armed when `run` starts, checked on every charged
    /// machine instruction and every front-end loop iteration.
    pub timeout_ms: Option<u64>,
    /// Cap on the materialised elements of one runtime index set.
    /// `set I = [0 .. 1<<40]` must trap, not OOM. Default `1 << 22`.
    pub max_index_set: u64,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            fuel: None,
            max_mem_bytes: Some(256 * 1024 * 1024),
            max_call_depth: 256,
            max_iterations: 1 << 22,
            timeout_ms: None,
            max_index_set: 1 << 22,
        }
    }
}

/// Which executor runs the front end of the program.
///
/// Both backends drive the same simulated machine through the same
/// charged operations, so results, cycle counts, and budget behaviour
/// are bit-identical; the difference is purely host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// The original recursive AST tree-walker.
    Ast,
    /// The compiled register IR (see [`crate::ir`]): front-end control
    /// flow and scalar arithmetic run on a flat bytecode interpreter;
    /// parallel constructs execute through the same tree paths the AST
    /// backend uses.
    Ir,
}

impl ExecBackend {
    /// Backend selected by the `UC_EXEC` environment variable:
    /// `UC_EXEC=ast` forces the tree-walker, anything else (including
    /// unset) selects the register IR.
    pub fn from_env() -> ExecBackend {
        match std::env::var("UC_EXEC").as_deref() {
            Ok("ast") => ExecBackend::Ast,
            _ => ExecBackend::Ir,
        }
    }
}

/// How aggressively the IR optimizer may rewrite the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrOpt {
    /// Cycle-preserving passes only (constant folding, dead-store
    /// elimination, jump threading on front-end instructions). The IR
    /// backend stays bit-identical to the AST backend — same results,
    /// same simulated cycles, same errors.
    Balanced,
    /// Additionally rewrite parallel constructs: dead-context
    /// elimination (drop constant-false `st` arms, strip constant-true
    /// predicates) and communication coalescing (merge adjacent `par`
    /// constructs over the same index sets into one space setup). These
    /// remove charged machine operations, so cycle counts may drop below
    /// the AST backend's; results are unchanged.
    Aggressive,
}

impl IrOpt {
    /// Level selected by `UC_IR_OPT`: `aggressive` opts in, anything
    /// else (including unset) keeps the cycle-preserving default.
    pub fn from_env() -> IrOpt {
        match std::env::var("UC_IR_OPT").as_deref() {
            Ok("aggressive") => IrOpt::Aggressive,
            _ => IrOpt::Balanced,
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Physical processors of the simulated CM (the paper used 16K).
    pub phys_procs: usize,
    /// Seed for the machine's deterministic `rand()`.
    pub seed: u64,
    /// Enable the communication-class optimization (local/NEWS detection).
    /// Off ⇒ every array access uses the general router, which is what the
    /// mapping ablation compares against.
    pub optimize_access: bool,
    /// Enable the processor optimization of §4 (reduction VP-set
    /// minimisation for histogram-style reductions).
    pub procopt: bool,
    /// Constant folding on the AST before execution.
    pub constfold: bool,
    /// Resource budgets (fuel, memory, recursion, loop caps, deadline).
    pub limits: ExecLimits,
    /// Front-end executor: compiled register IR (default) or the AST
    /// tree-walker. `Default` honours `UC_EXEC=ast`.
    pub backend: ExecBackend,
    /// IR optimization level. `Default` honours `UC_IR_OPT=aggressive`.
    pub ir_opt: IrOpt,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            phys_procs: 16 * 1024,
            seed: 0x5EED,
            optimize_access: true,
            procopt: true,
            constfold: true,
            limits: ExecLimits::default(),
            backend: ExecBackend::from_env(),
            ir_opt: IrOpt::from_env(),
        }
    }
}

/// Runtime failures of a UC program.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An error surfaced by the simulated machine.
    Cm(CmError),
    /// The `par` rule of §3.4: two enabled index elements assigned
    /// distinct values to one variable.
    MultipleAssignment { name: String },
    /// An enabled index element wrote outside an array.
    OutOfBounds { name: String },
    /// A `*`-construct or loop exceeded [`ExecLimits::max_iterations`].
    IterationLimit(&'static str),
    /// A call would exceed [`ExecLimits::max_call_depth`] live frames.
    CallDepthExceeded { max: usize },
    /// A runtime index set materialised more elements than
    /// [`ExecLimits::max_index_set`] allows.
    IndexSetTooLarge { name: String, len: u64, max: u64 },
    /// A front-end-only feature was used in a parallel context (or vice
    /// versa).
    NotSupported(String),
    /// Division by zero on the front end.
    DivideByZero,
    /// Name resolution failed at runtime (sema should prevent this).
    Unbound(String),
    /// A panic escaped the executor internals and was caught at the
    /// [`Program::run`] boundary. Always a bug, but contained: the
    /// process survives and the caller gets the panic message.
    Internal(String),
}

impl From<CmError> for RuntimeError {
    fn from(e: CmError) -> Self {
        RuntimeError::Cm(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Cm(e) => write!(f, "machine error: {e}"),
            RuntimeError::MultipleAssignment { name } => write!(
                f,
                "par statement assigned distinct values to a single element of `{name}`"
            ),
            RuntimeError::OutOfBounds { name } => {
                write!(f, "parallel write outside the bounds of `{name}`")
            }
            RuntimeError::IterationLimit(what) => {
                write!(f, "iteration budget exceeded in {what}")
            }
            RuntimeError::CallDepthExceeded { max } => {
                write!(f, "call-depth budget exceeded: recursion deeper than {max} frames")
            }
            RuntimeError::IndexSetTooLarge { name, len, max } => {
                write!(
                    f,
                    "index-set budget exceeded: `{name}` materialises {len} elements \
                     (limit {max})"
                )
            }
            RuntimeError::NotSupported(what) => write!(f, "not supported: {what}"),
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::Unbound(name) => write!(f, "unbound identifier `{name}`"),
            RuntimeError::Internal(msg) => {
                write!(f, "internal executor error (caught panic): {msg}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A [`RuntimeError`] annotated with where it happened: the span of the
/// statement that was executing and the UC call stack (outermost first,
/// each entry the callee's name and the span of its call site).
/// [`Program::run`] returns this so `uc run` can render a real
/// diagnostic instead of a bare message.
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    pub error: RuntimeError,
    /// Statement being executed when the error surfaced.
    pub span: Span,
    /// UC call stack, outermost first: `(function, call-site span)`.
    pub stack: Vec<(String, Span)>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)?;
        if self.span != Span::default() {
            write!(f, " at {}", self.span)?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

pub(crate) type RResult<T> = Result<T, RuntimeError>;

/// A parallel value: either a front-end scalar (broadcast on demand) or a
/// field on the current iteration space.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PV {
    Scalar(Scalar),
    /// `owned` fields are temporaries freed by the consumer.
    Field { id: FieldId, owned: bool },
}

impl PV {
    pub(crate) fn owned(id: FieldId) -> PV {
        PV::Field { id, owned: true }
    }
}

/// Storage of one UC array on the machine.
#[derive(Debug, Clone)]
pub(crate) struct ArrayStorage {
    pub field: FieldId,
    pub ty: ElemType,
    /// Logical shape (the declared `a[N][M]` extents).
    pub shape: Vec<usize>,
    pub mapping: ArrayMapping,
}

/// A local variable binding.
#[derive(Debug, Clone)]
pub(crate) enum LocalVar {
    /// Front-end scalar (function locals, parameters, `seq` elements).
    Scalar(Scalar),
    /// Per-VP variable declared inside a parallel body; `level` is the
    /// context-stack depth it lives at.
    ParField { field: FieldId, level: usize },
    /// Function-local array.
    Array(ArrayStorage),
    /// A scalar that lives in the current frame's IR register file
    /// ([`Frame::regs`]). The IR executor binds lowered locals by name so
    /// tree-evaluated fragments (parallel constructs, array accesses)
    /// resolve and assign them through the ordinary scope walk.
    Slot(usize),
}

/// One lexical scope of a function body.
#[derive(Debug, Default)]
pub(crate) struct Scope {
    pub vars: HashMap<String, LocalVar>,
    pub index_sets: HashMap<String, sema::IndexSetInfo>,
}

/// One function activation.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    pub scopes: Vec<Scope>,
    /// Register file of the IR executor (empty for tree-walked frames).
    /// Named locals occupy the low registers and are also reachable by
    /// name through `scopes` via [`LocalVar::Slot`].
    pub regs: Vec<Scalar>,
}

/// A compiled, runnable UC program.
///
/// See the crate docs for a quickstart. `Program` owns the simulated
/// machine; [`Program::cycles`] exposes the elapsed simulated time that
/// the paper's figures plot.
#[derive(Debug)]
pub struct Program {
    pub(crate) checked: Checked,
    pub(crate) config: ExecConfig,
    pub(crate) machine: Machine,
    /// Iteration-space / array-shape VP sets, keyed by geometry.
    pub(crate) spaces: HashMap<Vec<usize>, VpSetId>,
    pub(crate) arrays: HashMap<String, ArrayStorage>,
    /// Global scalar values, indexed storage: the IR loads and stores
    /// globals by position, the name map serves resolution and the
    /// public accessors.
    pub(crate) globals: Vec<Scalar>,
    pub(crate) global_index: HashMap<String, u32>,
    /// Lowered register IR (always built; executed when
    /// [`ExecConfig::backend`] is [`ExecBackend::Ir`]).
    pub(crate) ir: Option<std::sync::Arc<crate::ir::IrProgram>>,
    /// Parallel-context stack (innermost last).
    pub(crate) ctx: Vec<ParCtx>,
    /// Function activation stack.
    pub(crate) frames: Vec<Frame>,
    pub(crate) rand_counter: u64,
    pub(crate) oneof_cursor: usize,
    /// Static border-fixup masks: (space dims, axis, logical offset) →
    /// bool field ("coordinate+offset is inside the extent"). These
    /// depend only on geometry, so the compiler hoists them out of loops.
    pub(crate) fixup_cache: HashMap<(Vec<usize>, usize, i64), FieldId>,
    /// Broadcast INF fields per (space dims, element type).
    pub(crate) inf_cache: HashMap<(Vec<usize>, ElemType), FieldId>,
    /// Common-subexpression cache for array gathers within one
    /// synchronous step (§4 "common sub-expression detection"): a stack
    /// of per-step maps from (space dims, access text) to the gathered
    /// field. Filled while predicates evaluate, consumed by arm bodies,
    /// invalidated on writes.
    pub(crate) cse_stack: Vec<HashMap<(Vec<usize>, String), FieldId>>,
    /// Whether gathers may currently be inserted into the cache.
    pub(crate) cse_fill: bool,
    /// Index-element value fields per (space dims, axis, elements): these
    /// depend only on geometry, so re-entering a construct (e.g. a `par`
    /// nested in a front-end loop) reuses them instead of recomputing.
    pub(crate) elem_cache: HashMap<(Vec<usize>, usize, Vec<i64>), FieldId>,
    /// Span of the statement currently executing, for [`RunError`].
    pub(crate) exec_span: Span,
    /// Live UC call stack, outermost first: `(callee, call-site span)`.
    /// Entries are popped on successful return only, so on error the
    /// stack still describes where execution was.
    pub(crate) call_stack: Vec<(String, Span)>,
}

impl Program {
    /// Compile UC source with the default configuration.
    pub fn compile(src: &str) -> Result<Program, Diagnostics> {
        Self::compile_with(src, ExecConfig::default())
    }

    /// Compile UC source with an explicit configuration.
    pub fn compile_with(src: &str, config: ExecConfig) -> Result<Program, Diagnostics> {
        Self::compile_with_defines(src, config, &[])
    }

    /// Compile with `#define` overrides — the benchmark harness uses this
    /// to sweep problem sizes without editing source text.
    pub fn compile_with_defines(
        src: &str,
        config: ExecConfig,
        defines: &[(&str, i64)],
    ) -> Result<Program, Diagnostics> {
        let mut diags = Diagnostics::default();
        let Some(mut unit) = parser::parse(src, &mut diags) else {
            return Err(diags);
        };
        for (name, value) in defines {
            if let Some(slot) = unit.defines.iter_mut().find(|(n, _)| n == name) {
                slot.1 = *value;
            } else {
                unit.defines.push((name.to_string(), *value));
            }
        }
        if config.constfold {
            opt::fold_unit(&mut unit);
        }
        let Some(checked) = sema::check(unit, &mut diags) else {
            return Err(diags);
        };
        let maps = mapping::interpret_maps(&checked, &mut diags);
        if diags.has_errors() {
            return Err(diags);
        }
        let machine = Machine::new(MachineConfig {
            phys_procs: config.phys_procs,
            limits: MachineLimits {
                fuel: config.limits.fuel,
                max_mem_bytes: config.limits.max_mem_bytes,
            },
            ..MachineConfig::default()
        });
        let mut p = Program {
            checked,
            config,
            machine,
            spaces: HashMap::new(),
            arrays: HashMap::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            ir: None,
            ctx: Vec::new(),
            frames: Vec::new(),
            rand_counter: 0,
            oneof_cursor: 0,
            fixup_cache: HashMap::new(),
            inf_cache: HashMap::new(),
            cse_stack: Vec::new(),
            cse_fill: false,
            elem_cache: HashMap::new(),
            exec_span: Span::default(),
            call_stack: Vec::new(),
        };
        p.allocate_globals(&maps).map_err(|e| {
            let mut d = Diagnostics::default();
            d.error(crate::span::Span::default(), format!("allocation failed: {e}"));
            d
        })?;
        p.ir = Some(std::sync::Arc::new(crate::ir::lower_program(
            &p.checked,
            &p.global_index,
            p.config.ir_opt,
        )));
        Ok(p)
    }

    /// The optimized register IR in its stable text form (`uc run
    /// --emit ir`). See [`crate::ir`] for the format.
    pub fn emit_ir(&self) -> String {
        match &self.ir {
            Some(ir) => crate::ir::text::render(ir),
            None => String::new(),
        }
    }

    fn allocate_globals(&mut self, maps: &[(String, ArrayMapping)]) -> RResult<()> {
        let arrays: Vec<(String, sema::ArrayInfo)> = self
            .checked
            .arrays
            .iter()
            .map(|(n, i)| (n.clone(), i.clone()))
            .collect();
        for (name, info) in arrays {
            let mapping = maps
                .iter()
                .rev()
                .find(|(n, _)| *n == name)
                .map(|(_, m)| m.clone())
                .unwrap_or(ArrayMapping::Default);
            let storage_shape = mapping.storage_shape(&info.shape);
            let vp = self.space_vp(&storage_shape)?;
            let ty = match info.ty {
                crate::ast::Type::Float => ElemType::Float,
                _ => ElemType::Int,
            };
            let field = self.machine.alloc(vp, &name, ty)?;
            self.arrays
                .insert(name, ArrayStorage { field, ty, shape: info.shape, mapping });
        }
        let mut scalars: Vec<(String, (crate::ast::Type, Option<i64>))> = self
            .checked
            .scalars
            .iter()
            .map(|(n, i)| (n.clone(), *i))
            .collect();
        // Sorted so global indices (and the IR text that prints them) are
        // deterministic across runs.
        scalars.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, (ty, init)) in scalars {
            let v = init.unwrap_or(0);
            let scalar = match ty {
                crate::ast::Type::Float => Scalar::Float(v as f64),
                _ => Scalar::Int(v),
            };
            let idx = self.globals.len() as u32;
            self.globals.push(scalar);
            self.global_index.insert(name, idx);
        }
        Ok(())
    }

    /// Get (or create) the VP set for a geometry. Arrays and iteration
    /// spaces of the same shape share a VP set, which is exactly the
    /// paper's default mapping: conforming arrays live on common
    /// processors and element-wise operations are local.
    pub(crate) fn space_vp(&mut self, dims: &[usize]) -> RResult<VpSetId> {
        if let Some(vp) = self.spaces.get(dims) {
            return Ok(*vp);
        }
        let name = format!(
            "space[{}]",
            dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x")
        );
        let vp = self.machine.new_vp_set(&name, dims)?;
        self.spaces.insert(dims.to_vec(), vp);
        Ok(vp)
    }

    /// Run `main()` to completion.
    ///
    /// Errors come back as a [`RunError`] carrying the span of the failing
    /// statement and the UC call stack. The run is a fault boundary: a
    /// panic escaping the executor internals is caught here and reported
    /// as [`RuntimeError::Internal`] instead of aborting the process.
    pub fn run(&mut self) -> Result<(), RunError> {
        if let Some(ms) = self.config.limits.timeout_ms {
            self.machine.arm_deadline(ms);
        }
        // The tree-walker recurses natively once per UC activation, which
        // at the default 256-frame budget overruns a 2 MiB thread stack
        // in debug builds; it runs on a dedicated thread with enough
        // stack that the call-depth budget — not the host stack — is the
        // limit. The IR executor keeps its activations on the heap and
        // its native recursion bounded by statement nesting, so when the
        // lowered program certifies that bound (`inline_ok`) the run
        // stays on the calling thread — skipping the ~50 µs thread spawn
        // that would otherwise dominate short repeated runs.
        let inline = self.config.backend == ExecBackend::Ir
            && self.ir.as_ref().is_some_and(|ir| ir.inline_ok);
        let outcome = if inline {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner()))
        } else {
            std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("uc-exec".into())
                    .stack_size(EXEC_STACK_BYTES)
                    .spawn_scoped(scope, || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner()))
                    })
                    .expect("spawn uc-exec thread")
                    .join()
                    .unwrap_or_else(Err)
            })
        };
        self.machine.clear_deadline();
        match outcome {
            Ok(Ok(())) => {
                self.call_stack.clear();
                Ok(())
            }
            Ok(Err(error)) => Err(RunError {
                error,
                span: self.exec_span,
                stack: std::mem::take(&mut self.call_stack),
            }),
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "unknown panic payload".to_string()
                };
                Err(RunError {
                    error: RuntimeError::Internal(msg),
                    span: self.exec_span,
                    stack: std::mem::take(&mut self.call_stack),
                })
            }
        }
    }

    fn run_inner(&mut self) -> RResult<()> {
        if self.config.backend == ExecBackend::Ir && self.ir.is_some() {
            return vm::run_main(self);
        }
        let main: FuncDef = self
            .checked
            .funcs
            .get("main")
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound("main".into()))?;
        self.call_function(&main, Vec::new())?;
        Ok(())
    }

    /// Elapsed simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Reset the simulated clock (e.g. after initialisation, before the
    /// timed phase of a benchmark).
    pub fn reset_clock(&mut self) {
        self.machine.reset_clock();
    }

    /// Borrow the underlying machine (instruction counters, etc.).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Logical shape of a global array.
    pub fn shape(&self, name: &str) -> Option<&[usize]> {
        self.arrays.get(name).map(|a| a.shape.as_slice())
    }

    /// Read a global integer array in logical (row-major) order,
    /// inverting any mapping.
    pub fn read_int_array(&mut self, name: &str) -> RResult<Vec<i64>> {
        let st = self
            .arrays
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.into()))?;
        let data = self.machine.read_all(st.field)?;
        let uc_cm::FieldData::I64(raw) = data else {
            return Err(RuntimeError::NotSupported(format!("`{name}` is not an int array")));
        };
        let size: usize = st.shape.iter().product();
        Ok((0..size).map(|i| raw[st.mapping.storage_index(i, &st.shape, 0)]).collect())
    }

    /// Read a global float array in logical order.
    pub fn read_float_array(&mut self, name: &str) -> RResult<Vec<f64>> {
        let st = self
            .arrays
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.into()))?;
        let data = self.machine.read_all(st.field)?;
        let uc_cm::FieldData::F64(raw) = data else {
            return Err(RuntimeError::NotSupported(format!("`{name}` is not a float array")));
        };
        let size: usize = st.shape.iter().product();
        Ok((0..size).map(|i| raw[st.mapping.storage_index(i, &st.shape, 0)]).collect())
    }

    /// Overwrite a global integer array from logical-order data (applies
    /// the array's mapping, writing every replica).
    pub fn write_int_array(&mut self, name: &str, data: &[i64]) -> RResult<()> {
        let st = self
            .arrays
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.into()))?;
        let size: usize = st.shape.iter().product();
        if data.len() != size {
            return Err(RuntimeError::NotSupported(format!(
                "`{name}` has {size} elements, got {}",
                data.len()
            )));
        }
        let storage = self.machine.read_all(st.field)?;
        let uc_cm::FieldData::I64(mut raw) = storage else {
            return Err(RuntimeError::NotSupported(format!("`{name}` is not an int array")));
        };
        for r in 0..st.mapping.replicas() {
            for (i, &v) in data.iter().enumerate() {
                raw[st.mapping.storage_index(i, &st.shape, r)] = v;
            }
        }
        self.machine.write_all(st.field, uc_cm::FieldData::I64(raw))?;
        Ok(())
    }

    /// Read a global scalar variable.
    pub fn read_scalar(&self, name: &str) -> Option<Scalar> {
        self.global_index.get(name).map(|&i| self.globals[i as usize])
    }

    /// Names of all global scalar variables.
    pub fn scalar_names(&self) -> Vec<String> {
        self.global_index.keys().cloned().collect()
    }

    /// Names of all global arrays.
    pub fn array_names(&self) -> Vec<String> {
        self.arrays.keys().cloned().collect()
    }

    /// Read a global int scalar.
    pub fn read_int(&self, name: &str) -> Option<i64> {
        self.global_index.get(name).map(|&i| self.globals[i as usize].as_int())
    }

    /// The value of a `#define` constant after overrides.
    pub fn define(&self, name: &str) -> Option<i64> {
        self.checked.consts.get(name).copied()
    }

    /// Emit the C* translation of this program (§5 of the paper: the
    /// prototype UC compiler generated C* source for the CM's C*
    /// compiler). Textual output, in the style of the paper's Appendix.
    pub fn emit_cstar(&self) -> String {
        crate::cstar_emit::emit_cstar(&self.checked)
    }

    // ---- internals shared by the exec submodules -------------------------

    /// The innermost parallel context.
    ///
    /// Invariant: only called from paths reached with a construct open
    /// (`ctx` non-empty) — every access path splits on `ctx.is_empty()`
    /// first. A violation is an executor bug, contained by the
    /// `catch_unwind` in [`Program::run`].
    pub(crate) fn cur_ctx(&self) -> &ParCtx {
        self.ctx.last().expect("inside a parallel construct")
    }

    /// A fresh deterministic seed for one `rand()` instruction.
    pub(crate) fn next_rand_seed(&mut self) -> u64 {
        self.rand_counter += 1;
        self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(self.rand_counter)
    }

    /// Release a PV's temporary field, if it owns one.
    pub(crate) fn release(&mut self, pv: PV) {
        if let PV::Field { id, owned: true } = pv {
            let _ = self.machine.free(id);
        }
    }
}
