//! Statement execution and the four UC constructs.

use uc_cm::{BinOp, ElemType, FieldId, ReduceOp, Scalar};

use super::space::coerce_scalar;
use super::{ArrayStorage, Frame, LocalVar, Program, RResult, RuntimeError, Scope, PV};
use crate::ast::{Block, Expr, FuncDef, IndexSetDef, IndexSetInit, ScBlock, Stmt, Type, UcKind, UcStmt};
use crate::mapping::ArrayMapping;
use crate::sema::IndexSetInfo;

/// Front-end control flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Flow {
    Normal,
    Return(Option<Scalar>),
    Break,
    Continue,
}

impl Program {
    /// Call a user function with scalar arguments.
    pub(crate) fn call_function(
        &mut self,
        f: &FuncDef,
        args: Vec<Scalar>,
    ) -> RResult<Option<Scalar>> {
        let max_depth = self.config.limits.max_call_depth;
        if self.frames.len() >= max_depth {
            // `max_depth` frames may be live; the call creating one more traps.
            return Err(RuntimeError::CallDepthExceeded { max: max_depth });
        }
        let mut scope = Scope::default();
        for ((ty, name), v) in f.params.iter().zip(args) {
            let ty = match ty {
                Type::Float => ElemType::Float,
                _ => ElemType::Int,
            };
            scope.vars.insert(name.clone(), LocalVar::Scalar(coerce_scalar(v, ty)));
        }
        self.frames.push(Frame { scopes: vec![scope], regs: Vec::new() });
        // exec_span currently points at the calling statement — that is
        // the call site recorded for the error stack. Popped on success
        // only, so a failing run still shows where it was.
        self.call_stack.push((f.name.clone(), self.exec_span));
        // A user function runs on the front end even when called from a
        // parallel construct (its arguments are scalars); hide the
        // caller's iteration spaces for the duration of the call. The
        // machine-side context masks stay pushed — front-end element
        // access ignores them.
        let saved_ctx = std::mem::take(&mut self.ctx);
        let flow = self.exec_block(&f.body);
        self.ctx = saved_ctx;
        let frame = self.frames.pop().expect("frame pushed above");
        self.free_frame(frame);
        let flow = flow?;
        self.call_stack.pop();
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(None),
        }
    }

    fn free_frame(&mut self, frame: Frame) {
        for scope in frame.scopes {
            self.free_scope_vars(scope);
        }
    }

    pub(crate) fn free_scope_vars(&mut self, scope: Scope) {
        for (_, var) in scope.vars {
            match var {
                LocalVar::ParField { field, .. } => {
                    let _ = self.machine.free(field);
                }
                LocalVar::Array(st) => {
                    let _ = self.machine.free(st.field);
                }
                LocalVar::Scalar(_) | LocalVar::Slot(_) => {}
            }
        }
    }

    pub(crate) fn exec_block(&mut self, b: &Block) -> RResult<Flow> {
        self.frames.last_mut().expect("inside a frame").scopes.push(Scope::default());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            match self.exec_stmt(s) {
                Ok(Flow::Normal) => {}
                other => {
                    flow = match other {
                        Ok(f) => f,
                        Err(e) => {
                            let scope =
                                self.frames.last_mut().expect("frame").scopes.pop().unwrap();
                            self.free_scope_vars(scope);
                            return Err(e);
                        }
                    };
                    break;
                }
            }
        }
        let scope = self.frames.last_mut().expect("frame").scopes.pop().unwrap();
        self.free_scope_vars(scope);
        Ok(flow)
    }

    /// Source span of a statement, when it carries one. `None` keeps the
    /// enclosing statement's span (blocks, `;`).
    pub(crate) fn stmt_span(s: &Stmt) -> Option<crate::span::Span> {
        match s {
            Stmt::Expr(e) => Some(e.span()),
            Stmt::Decl(v) => Some(v.span),
            Stmt::IndexSets(defs) => defs.first().map(|d| d.span),
            Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return(_, span)
            | Stmt::Break(span)
            | Stmt::Continue(span) => Some(*span),
            Stmt::Uc(uc) => Some(uc.span),
            Stmt::Block(_) | Stmt::Empty => None,
        }
    }

    pub(crate) fn exec_stmt(&mut self, s: &Stmt) -> RResult<Flow> {
        if let Some(sp) = Self::stmt_span(s) {
            self.exec_span = sp;
        }
        match s {
            Stmt::Empty => Ok(Flow::Normal),
            Stmt::Expr(e) => {
                // `swap` is a statement-level builtin: read both operands
                // synchronously, then store crosswise.
                if let Expr::Call { name, args, .. } = e {
                    if name == "swap" {
                        let a = self.eval(&args[0])?;
                        let b = self.eval(&args[1])?;
                        let a = self.store(&args[1], a, true)?;
                        let b = self.store(&args[0], b, true)?;
                        self.release(a);
                        self.release(b);
                        return Ok(Flow::Normal);
                    }
                }
                let v = self.eval(e)?;
                self.release(v);
                Ok(Flow::Normal)
            }
            Stmt::Decl(v) => {
                self.exec_decl(v)?;
                Ok(Flow::Normal)
            }
            Stmt::IndexSets(defs) => {
                for def in defs {
                    let info = self.eval_index_set_def(def)?;
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .scopes
                        .last_mut()
                        .expect("scope")
                        .index_sets
                        .insert(def.name.clone(), info);
                }
                Ok(Flow::Normal)
            }
            Stmt::Block(b) => self.exec_block(b),
            Stmt::If { cond, then_branch, else_branch, .. } => {
                if !self.ctx.is_empty() {
                    return Err(RuntimeError::NotSupported(
                        "`if` inside a parallel construct (use `st` predicates)".into(),
                    ));
                }
                if self.eval_scalar(cond)?.as_bool() {
                    self.exec_stmt(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                if !self.ctx.is_empty() {
                    return Err(RuntimeError::NotSupported(
                        "`while` inside a parallel construct".into(),
                    ));
                }
                let mut iters = 0u64;
                while self.eval_scalar(cond)?.as_bool() {
                    iters += 1;
                    if iters > self.config.limits.max_iterations {
                        return Err(RuntimeError::IterationLimit("while loop"));
                    }
                    // A pure front-end loop body never ticks the machine,
                    // so the deadline must be polled here.
                    self.machine.poll_deadline()?;
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body, .. } => {
                if !self.ctx.is_empty() {
                    return Err(RuntimeError::NotSupported(
                        "`for` inside a parallel construct".into(),
                    ));
                }
                if let Some(e) = init {
                    let v = self.eval(e)?;
                    self.release(v);
                }
                let mut iters = 0u64;
                loop {
                    if let Some(c) = cond {
                        if !self.eval_scalar(c)?.as_bool() {
                            break;
                        }
                    }
                    iters += 1;
                    if iters > self.config.limits.max_iterations {
                        return Err(RuntimeError::IterationLimit("for loop"));
                    }
                    self.machine.poll_deadline()?;
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(e) = step {
                        let v = self.eval(e)?;
                        self.release(v);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e, _) => {
                if !self.ctx.is_empty() {
                    return Err(RuntimeError::NotSupported(
                        "`return` inside a parallel construct".into(),
                    ));
                }
                let v = match e {
                    Some(e) => Some(self.eval_scalar(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Uc(uc) => {
                self.exec_uc(uc)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn exec_decl(&mut self, v: &crate::ast::VarDecl) -> RResult<()> {
        let ty = match v.ty {
            Type::Float => ElemType::Float,
            _ => ElemType::Int,
        };
        let var = if v.dims.is_empty() {
            if self.ctx.is_empty() {
                let init = match &v.init {
                    Some(e) => coerce_scalar(self.eval_scalar(e)?, ty),
                    None => coerce_scalar(Scalar::Int(0), ty),
                };
                LocalVar::Scalar(init)
            } else {
                // A per-VP temporary on the current space (§3.4 ranksort's
                // `int rank;`).
                let vp = self.ctx.last().unwrap().vp;
                let field = self.machine.alloc(vp, &v.name, ty)?;
                if let Some(e) = &v.init {
                    let pv = self.eval(e)?;
                    let pv = self.coerce_field(pv, ty)?;
                    let PV::Field { id, .. } = pv else { unreachable!() };
                    self.machine.copy(field, id)?;
                    self.release(pv);
                }
                LocalVar::ParField { field, level: self.ctx.len() - 1 }
            }
        } else {
            if !self.ctx.is_empty() {
                return Err(RuntimeError::NotSupported(
                    "array declarations inside a parallel construct".into(),
                ));
            }
            let mut shape = Vec::with_capacity(v.dims.len());
            for d in &v.dims {
                let n = self
                    .try_pure_scalar(d)
                    .ok_or_else(|| {
                        RuntimeError::NotSupported("non-constant array extent".into())
                    })?
                    .as_int();
                if n <= 0 {
                    return Err(RuntimeError::NotSupported("non-positive array extent".into()));
                }
                shape.push(n as usize);
            }
            let vp = self.space_vp(&shape)?;
            let field = self.machine.alloc(vp, &v.name, ty)?;
            LocalVar::Array(ArrayStorage { field, ty, shape, mapping: ArrayMapping::Default })
        };
        self.frames
            .last_mut()
            .expect("frame")
            .scopes
            .last_mut()
            .expect("scope")
            .vars
            .insert(v.name.clone(), var);
        Ok(())
    }

    fn eval_index_set_def(&mut self, def: &IndexSetDef) -> RResult<IndexSetInfo> {
        let elements = match &def.init {
            IndexSetInit::Range(lo, hi) => {
                let lo = self.eval_scalar(lo)?.as_int();
                let hi = self.eval_scalar(hi)?.as_int();
                if hi < lo {
                    return Err(RuntimeError::NotSupported(format!(
                        "index set `{}` has an empty range",
                        def.name
                    )));
                }
                // Cap the materialised size before collecting: a hostile
                // `[0 .. 1<<40]` must trap, not OOM the process.
                let len = (hi as i128 - lo as i128 + 1) as u64;
                if len > self.config.limits.max_index_set {
                    return Err(RuntimeError::IndexSetTooLarge {
                        name: def.name.clone(),
                        len,
                        max: self.config.limits.max_index_set,
                    });
                }
                (lo..=hi).collect()
            }
            IndexSetInit::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval_scalar(e)?.as_int());
                }
                out
            }
            IndexSetInit::Alias(src) => {
                self.lookup_index_set(src)
                    .ok_or_else(|| RuntimeError::Unbound(src.clone()))?
                    .elements
            }
        };
        Ok(IndexSetInfo { elem: def.elem.clone(), elements })
    }

    // ---- the four constructs ----------------------------------------------

    fn exec_uc(&mut self, uc: &UcStmt) -> RResult<()> {
        match uc.kind {
            UcKind::Par => self.exec_par(uc),
            UcKind::Seq => self.exec_seq(uc),
            UcKind::Oneof => self.exec_oneof(uc),
            UcKind::Solve => {
                if uc.star {
                    self.exec_star_solve(uc)
                } else {
                    self.exec_solve(uc)
                }
            }
        }
    }

    /// Execute a parallel body statement, rejecting front-end flow.
    fn exec_par_body(&mut self, s: &Stmt) -> RResult<()> {
        match self.exec_stmt(s)? {
            Flow::Normal => Ok(()),
            _ => Err(RuntimeError::NotSupported(
                "return/break/continue inside a parallel construct".into(),
            )),
        }
    }

    fn exec_par(&mut self, uc: &UcStmt) -> RResult<()> {
        let level = self.push_space(&uc.idxs)?;
        let result = (|| -> RResult<()> {
            if !uc.star {
                self.run_arms(uc, false)?;
                return Ok(());
            }
            let mut iters = 0u64;
            loop {
                iters += 1;
                if iters > self.config.limits.max_iterations {
                    return Err(RuntimeError::IterationLimit("*par"));
                }
                if !self.run_arms(uc, true)? {
                    break;
                }
            }
            Ok(())
        })();
        self.pop_space(level)?;
        result
    }

    /// Execute all arms (and `others`) of a par-style construct once.
    /// When `need_enabled` (the `*` forms), returns whether any arm was
    /// enabled — a global-OR test the compiler omits for plain constructs.
    fn run_arms(&mut self, uc: &UcStmt, need_enabled: bool) -> RResult<bool> {
        let vp = self.ctx.last().unwrap().vp;
        // Evaluate every predicate first, synchronously, against the state
        // at the start of the step (the paper's semantics for a step).
        // Array gathers computed here are cached for reuse by the arm
        // bodies (§4's common-subexpression detection): bodies run under
        // masks that are strict subsets of the predicate's, so the cached
        // values are correct everywhere the bodies look.
        self.cse_push();
        let prev_fill = self.cse_fill;
        self.cse_fill = true;
        let mut masks: Vec<Option<FieldId>> = Vec::with_capacity(uc.arms.len());
        let mut enabled = false;
        let mut pred_err = None;
        for ScBlock { pred, .. } in &uc.arms {
            match pred {
                Some(p) => {
                    let r = (|| -> RResult<FieldId> {
                        let m = self.eval(p)?;
                        let m = self.truthify(m)?;
                        let m = self.coerce_field(m, ElemType::Bool)?;
                        let PV::Field { id, .. } = m else { unreachable!() };
                        Ok(id)
                    })();
                    match r {
                        Ok(id) => masks.push(Some(id)),
                        Err(e) => {
                            pred_err = Some(e);
                            break;
                        }
                    }
                }
                None => masks.push(None),
            }
        }
        self.cse_fill = prev_fill;
        if let Some(e) = pred_err {
            for m in masks.into_iter().flatten() {
                let _ = self.machine.free(m);
            }
            self.cse_pop();
            return Err(e);
        }
        if need_enabled {
            for m in &masks {
                match m {
                    Some(id) => {
                        if !enabled && self.machine.reduce(*id, ReduceOp::Or)?.as_bool() {
                            enabled = true;
                        }
                    }
                    None => {
                        if !enabled && self.machine.any_active(vp)? {
                            enabled = true;
                        }
                    }
                }
            }
        }
        let run = (|| -> RResult<()> {
            for (ScBlock { body, .. }, mask) in uc.arms.iter().zip(&masks) {
                match mask {
                    Some(m) => {
                        self.machine.push_context(*m)?;
                        let r = self.exec_par_body(body);
                        self.machine.pop_context(vp)?;
                        r?;
                    }
                    None => self.exec_par_body(body)?,
                }
            }
            if let Some(others) = &uc.others {
                let or = self.machine.alloc_bool(vp, "~ormask")?;
                self.machine.fill_unconditional(or, Scalar::Bool(false))?;
                for m in masks.iter().flatten() {
                    self.machine.binop(BinOp::LogOr, or, or, *m)?;
                }
                self.machine.push_context_others(or)?;
                let r = self.exec_par_body(others);
                self.machine.pop_context(vp)?;
                self.machine.free(or)?;
                r?;
            }
            Ok(())
        })();
        for m in masks.into_iter().flatten() {
            let _ = self.machine.free(m);
        }
        self.cse_pop();
        run?;
        Ok(enabled)
    }

    fn exec_seq(&mut self, uc: &UcStmt) -> RResult<()> {
        let set = self
            .lookup_index_set(&uc.idxs[0])
            .ok_or_else(|| RuntimeError::Unbound(uc.idxs[0].clone()))?;
        self.frames.last_mut().expect("frame").scopes.push(Scope::default());
        let result = (|| -> RResult<()> {
            let mut iters = 0u64;
            loop {
                iters += 1;
                if iters > self.config.limits.max_iterations {
                    return Err(RuntimeError::IterationLimit("*seq"));
                }
                let mut any_enabled = false;
                for &v in &set.elements {
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .scopes
                        .last_mut()
                        .expect("scope")
                        .vars
                        .insert(set.elem.clone(), LocalVar::Scalar(Scalar::Int(v)));
                    any_enabled |= self.exec_seq_element(uc)?;
                }
                if !uc.star || !any_enabled {
                    break;
                }
            }
            Ok(())
        })();
        let scope = self.frames.last_mut().expect("frame").scopes.pop().unwrap();
        self.free_scope_vars(scope);
        result
    }

    /// One element of a seq sweep. Returns whether any arm was enabled.
    fn exec_seq_element(&mut self, uc: &UcStmt) -> RResult<bool> {
        let mut enabled = false;
        if self.ctx.is_empty() {
            // Front-end: predicates gate execution per element.
            let mut any_arm = false;
            for ScBlock { pred, body } in &uc.arms {
                let on = match pred {
                    Some(p) => self.eval_scalar(p)?.as_bool(),
                    None => true,
                };
                if on {
                    any_arm = true;
                    enabled = true;
                    match self.exec_stmt(body)? {
                        Flow::Normal => {}
                        _ => {
                            return Err(RuntimeError::NotSupported(
                                "return/break/continue inside seq".into(),
                            ))
                        }
                    }
                }
            }
            if !any_arm {
                if let Some(others) = &uc.others {
                    match self.exec_stmt(others)? {
                        Flow::Normal => {}
                        _ => {
                            return Err(RuntimeError::NotSupported(
                                "return/break/continue inside seq".into(),
                            ))
                        }
                    }
                }
            }
        } else {
            // Inside a parallel construct: predicates become masks over
            // the enclosing space (Figure 3's partial sums).
            enabled = self.run_arms(uc, uc.star)?;
        }
        Ok(enabled)
    }

    fn exec_oneof(&mut self, uc: &UcStmt) -> RResult<()> {
        if uc.others.is_some() {
            return Err(RuntimeError::NotSupported("`others` on a oneof statement".into()));
        }
        let level = self.push_space(&uc.idxs)?;
        let result = (|| -> RResult<()> {
            let vp = self.ctx.last().unwrap().vp;
            let mut iters = 0u64;
            loop {
                iters += 1;
                if iters > self.config.limits.max_iterations {
                    return Err(RuntimeError::IterationLimit("*oneof"));
                }
                // Find the enabled arms.
                let mut masks: Vec<Option<FieldId>> = Vec::new();
                let mut enabled: Vec<usize> = Vec::new();
                for (k, ScBlock { pred, .. }) in uc.arms.iter().enumerate() {
                    match pred {
                        Some(p) => {
                            let m = self.eval(p)?;
                            let m = self.truthify(m)?;
                            let m = self.coerce_field(m, ElemType::Bool)?;
                            let PV::Field { id, .. } = m else { unreachable!() };
                            if self.machine.reduce(id, ReduceOp::Or)?.as_bool() {
                                enabled.push(k);
                            }
                            masks.push(Some(id));
                        }
                        None => {
                            if self.machine.any_active(vp)? {
                                enabled.push(k);
                            }
                            masks.push(None);
                        }
                    }
                }
                let chosen = if enabled.is_empty() {
                    None
                } else {
                    // Deterministic rotation through the enabled arms; the
                    // paper guarantees no fairness, so any choice is valid.
                    let pick = enabled[self.oneof_cursor % enabled.len()];
                    self.oneof_cursor = self.oneof_cursor.wrapping_add(1);
                    Some(pick)
                };
                let run = match chosen {
                    Some(k) => {
                        let body = &uc.arms[k].body;
                        match masks[k] {
                            Some(m) => {
                                self.machine.push_context(m)?;
                                let r = self.exec_par_body(body);
                                self.machine.pop_context(vp)?;
                                r
                            }
                            None => self.exec_par_body(body),
                        }
                    }
                    None => Ok(()),
                };
                for m in masks.into_iter().flatten() {
                    let _ = self.machine.free(m);
                }
                run?;
                if chosen.is_none() || !uc.star {
                    break;
                }
            }
            Ok(())
        })();
        self.pop_space(level)?;
        result
    }

    // ---- solve --------------------------------------------------------------

    /// Collect `(target, value)` assignment pairs from solve arms.
    fn solve_assignments(s: &Stmt, out: &mut Vec<(Expr, Expr)>) {
        match s {
            Stmt::Expr(Expr::Assign { target, value, op: None, .. }) => {
                out.push((target.as_ref().clone(), value.as_ref().clone()));
            }
            Stmt::Expr(Expr::Assign { target, value, op: Some(op), span }) => {
                // Compound assignment: rewrite `t op= v` as `t = t op v`
                // (only reachable under *solve, where sema allows it).
                let rhs = Expr::Binary {
                    op: *op,
                    lhs: Box::new(target.as_ref().clone()),
                    rhs: Box::new(value.as_ref().clone()),
                    span: *span,
                };
                out.push((target.as_ref().clone(), rhs));
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    Self::solve_assignments(s, out);
                }
            }
            _ => {}
        }
    }

    /// `solve`: execute a proper set of single assignments in dependency
    /// order, via the paper's general translation — iterate, executing an
    /// assignment for exactly those elements whose right-hand side is
    /// fully defined and which have not executed yet, until no progress.
    fn exec_solve(&mut self, uc: &UcStmt) -> RResult<()> {
        let level = self.push_space(&uc.idxs)?;
        let result = self.exec_solve_inner(uc);
        self.pop_space(level)?;
        result
    }

    fn exec_solve_inner(&mut self, uc: &UcStmt) -> RResult<()> {
        let vp = self.ctx.last().unwrap().vp;
        let mut assigns = Vec::new();
        for arm in &uc.arms {
            if arm.pred.is_some() {
                return Err(RuntimeError::NotSupported(
                    "st predicates on solve statements".into(),
                ));
            }
            Self::solve_assignments(&arm.body, &mut assigns);
        }
        // Defined-bitmaps for every target array.
        let mut def_maps: Vec<(String, ArrayStorage)> = Vec::new();
        for (target, _) in &assigns {
            let Expr::Index { base, .. } = target else {
                return Err(RuntimeError::NotSupported(
                    "solve targets must be array elements".into(),
                ));
            };
            if def_maps.iter().any(|(n, _)| n == base) {
                continue;
            }
            let st = self.array_storage(base)?;
            let storage_shape = st.mapping.storage_shape(&st.shape);
            let dvp = self.space_vp(&storage_shape)?;
            let dfield = self.machine.alloc_bool(dvp, "~defined")?;
            self.machine.fill_unconditional(dfield, Scalar::Bool(false))?;
            def_maps.push((
                base.clone(),
                ArrayStorage {
                    field: dfield,
                    ty: ElemType::Bool,
                    shape: st.shape.clone(),
                    mapping: st.mapping.clone(),
                },
            ));
        }

        let run = (|| -> RResult<()> {
            let mut iters = 0u64;
            loop {
                iters += 1;
                if iters > self.config.limits.max_iterations {
                    return Err(RuntimeError::IterationLimit("solve"));
                }
                let mut progress = false;
                for (target, value) in &assigns {
                    let Expr::Index { base, subs, .. } = target else { unreachable!() };
                    let def_st =
                        def_maps.iter().find(|(n, _)| n == base).map(|(_, s)| s.clone()).unwrap();
                    // ready = !defined(target) && rhs_defined
                    let tdef = self.read_defined(&def_st, subs)?;
                    let PV::Field { id: tdef_id, .. } = tdef else { unreachable!() };
                    let ready = self.machine.alloc_bool(vp, "~ready")?;
                    self.machine.unop(uc_cm::UnOp::Not, ready, tdef_id)?;
                    self.release(tdef);
                    let rdef = self.rhs_defined(value, &def_maps)?;
                    if let PV::Field { id, .. } = rdef {
                        self.machine.binop(BinOp::LogAnd, ready, ready, id)?;
                    }
                    self.release(rdef);
                    let any = self.machine.reduce(ready, ReduceOp::Or)?.as_bool();
                    if any {
                        self.machine.push_context(ready)?;
                        let r = (|| -> RResult<()> {
                            let v = self.eval(value)?;
                            let v = self.store(target, v, true)?;
                            self.release(v);
                            // Mark the just-written elements defined.
                            self.write_array_storage(&def_st, subs, PV::Scalar(Scalar::Bool(true)))?;
                            Ok(())
                        })();
                        self.machine.pop_context(vp)?;
                        r?;
                        progress = true;
                    }
                    self.machine.free(ready)?;
                }
                if !progress {
                    break;
                }
            }
            Ok(())
        })();
        for (_, st) in def_maps {
            let _ = self.machine.free(st.field);
        }
        run
    }

    /// Gather a defined-bitmap at the target subscripts.
    fn read_defined(&mut self, def_st: &ArrayStorage, subs: &[Expr]) -> RResult<PV> {
        // Reuse the general read path by temporarily registering the
        // bitmap under a reserved name.
        self.read_storage(def_st, subs)
    }

    /// Definedness of an expression's value per element of the current
    /// space: all array reads of solve-target arrays must be defined.
    fn rhs_defined(
        &mut self,
        e: &Expr,
        def_maps: &[(String, ArrayStorage)],
    ) -> RResult<PV> {
        match e {
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Inf(_) | Expr::Ident(..) => {
                Ok(PV::Scalar(Scalar::Bool(true)))
            }
            Expr::Index { base, subs, .. } => {
                match def_maps.iter().find(|(n, _)| n == base) {
                    Some((_, def_st)) => {
                        let def_st = def_st.clone();
                        let elem_def = self.read_storage(&def_st, subs)?;
                        // Subscripts themselves may read target arrays.
                        let mut acc = elem_def;
                        for s in subs {
                            let sub_def = self.rhs_defined(s, def_maps)?;
                            acc = self.and_defined(acc, sub_def)?;
                        }
                        Ok(acc)
                    }
                    None => {
                        let mut acc = PV::Scalar(Scalar::Bool(true));
                        for s in subs {
                            let sub_def = self.rhs_defined(s, def_maps)?;
                            acc = self.and_defined(acc, sub_def)?;
                        }
                        Ok(acc)
                    }
                }
            }
            Expr::Unary { expr, .. } => self.rhs_defined(expr, def_maps),
            Expr::Binary { lhs, rhs, .. } => {
                let l = self.rhs_defined(lhs, def_maps)?;
                let r = self.rhs_defined(rhs, def_maps)?;
                self.and_defined(l, r)
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                // defined(cond) && (cond ? defined(then) : defined(else))
                let cdef = self.rhs_defined(cond, def_maps)?;
                let tdef = self.rhs_defined(then_e, def_maps)?;
                let edef = self.rhs_defined(else_e, def_maps)?;
                let branch = match (&tdef, &edef) {
                    (PV::Scalar(a), PV::Scalar(b)) if a.as_bool() && b.as_bool() => {
                        PV::Scalar(Scalar::Bool(true))
                    }
                    _ => {
                        let c = self.eval(cond)?;
                        let c = self.truthify(c)?;
                        let c = self.coerce_field(c, ElemType::Bool)?;
                        let t = self.coerce_field(tdef, ElemType::Bool)?;
                        let f = self.coerce_field(edef, ElemType::Bool)?;
                        let (
                            PV::Field { id: ci, .. },
                            PV::Field { id: ti, .. },
                            PV::Field { id: fi, .. },
                        ) = (&c, &t, &f)
                        else {
                            unreachable!()
                        };
                        let vp = self.ctx.last().unwrap().vp;
                        let dst = self.machine.alloc_bool(vp, "~bdef")?;
                        self.machine.select(dst, *ci, *ti, *fi)?;
                        self.release(c);
                        let t2 = t;
                        let f2 = f;
                        self.release(t2);
                        self.release(f2);
                        PV::owned(dst)
                    }
                };
                self.and_defined(cdef, branch)
            }
            Expr::Call { args, .. } => {
                let mut acc = PV::Scalar(Scalar::Bool(true));
                for a in args {
                    let d = self.rhs_defined(a, def_maps)?;
                    acc = self.and_defined(acc, d)?;
                }
                Ok(acc)
            }
            Expr::Assign { .. } | Expr::Reduce(_) => Err(RuntimeError::NotSupported(
                "assignments/reductions in solve right-hand sides (use *solve)".into(),
            )),
        }
    }

    fn and_defined(&mut self, a: PV, b: PV) -> RResult<PV> {
        match (&a, &b) {
            (PV::Scalar(x), _) if x.as_bool() => Ok(b),
            (_, PV::Scalar(y)) if y.as_bool() => Ok(a),
            _ => self.apply_binary(crate::ast::BinaryOp::LogAnd, a, b),
        }
    }

    /// `*solve`: iterate the assignments to a fixed point, detecting
    /// quiescence by comparing snapshots — the compiler-managed state
    /// saving the paper contrasts with a hand-written `*par` (§3.6).
    fn exec_star_solve(&mut self, uc: &UcStmt) -> RResult<()> {
        let level = self.push_space(&uc.idxs)?;
        let result = (|| -> RResult<()> {
            let mut assigns = Vec::new();
            for arm in &uc.arms {
                if arm.pred.is_some() {
                    return Err(RuntimeError::NotSupported(
                        "st predicates on *solve statements".into(),
                    ));
                }
                Self::solve_assignments(&arm.body, &mut assigns);
            }
            // Snapshot fields for each distinct target array.
            let mut targets: Vec<(String, FieldId, FieldId)> = Vec::new();
            for (target, _) in &assigns {
                let Expr::Index { base, .. } = target else {
                    return Err(RuntimeError::NotSupported(
                        "*solve targets must be array elements".into(),
                    ));
                };
                if targets.iter().any(|(n, _, _)| n == base) {
                    continue;
                }
                let st = self.array_storage(base)?;
                let snap = self.machine.alloc(st.field.vp_set(), "~snap", st.ty)?;
                targets.push((base.clone(), st.field, snap));
            }
            let run = (|| -> RResult<()> {
                let mut iters = 0u64;
                loop {
                    iters += 1;
                    if iters > self.config.limits.max_iterations {
                        return Err(RuntimeError::IterationLimit("*solve"));
                    }
                    for (_, field, snap) in &targets {
                        self.machine.copy_unconditional(*snap, *field)?;
                    }
                    for (target, value) in &assigns {
                        let v = self.eval(value)?;
                        let v = self.store(target, v, false)?;
                        self.release(v);
                    }
                    let mut changed = false;
                    for (_, field, snap) in &targets {
                        if self.machine.any_ne(*field, *snap)? {
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                Ok(())
            })();
            for (_, _, snap) in targets {
                let _ = self.machine.free(snap);
            }
            run
        })();
        self.pop_space(level)?;
        result
    }
}
