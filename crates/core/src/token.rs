//! Token kinds of the UC language.
//!
//! UC is "a simple enhancement of C": C's expression and statement tokens,
//! plus the keywords `index_set`, `par`, `seq`, `solve`, `oneof`, `st`,
//! `others`, `map`, `permute`, `fold`, `copy`, and the reduction sigil `$`.
//! `goto` is recognised so the parser can reject it with a proper message.

use crate::span::Span;

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// All UC token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    IntLit(i64),
    FloatLit(f64),
    Ident(String),

    // Keywords
    KwIndexSet,
    KwInt,
    KwFloat,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwPar,
    KwSeq,
    KwSolve,
    KwOneof,
    KwSt,
    KwOthers,
    KwMap,
    KwPermute,
    KwFold,
    KwCopy,
    KwGoto,
    KwInf,
    KwDefine,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    DotDot,
    /// `:-` — the map-section alignment operator.
    MapsTo,
    /// `$` followed by a reduction operator, e.g. `$+`, `$<`, `$,`.
    Reduce(RedOpToken),

    // Operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Star,
    Slash,
    Percent,
    Plus,
    Minus,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Amp,
    Caret,
    Pipe,
    AmpAmp,
    PipePipe,
    Bang,
    Tilde,

    Eof,
}

/// The operator of a reduction expression (`$+`, `$*`, `$&&`, `$||`,
/// `$>` = max, `$<` = min, `$^` = logical xor, `$,` = arbitrary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOpToken {
    Add,
    Mul,
    And,
    Or,
    Max,
    Min,
    Xor,
    Arb,
}

impl std::fmt::Display for RedOpToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RedOpToken::Add => "$+",
            RedOpToken::Mul => "$*",
            RedOpToken::And => "$&&",
            RedOpToken::Or => "$||",
            RedOpToken::Max => "$>",
            RedOpToken::Min => "$<",
            RedOpToken::Xor => "$^",
            RedOpToken::Arb => "$,",
        };
        f.write_str(s)
    }
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "index_set" => TokenKind::KwIndexSet,
            "int" => TokenKind::KwInt,
            "float" | "double" => TokenKind::KwFloat,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "par" => TokenKind::KwPar,
            "seq" => TokenKind::KwSeq,
            "solve" => TokenKind::KwSolve,
            "oneof" => TokenKind::KwOneof,
            "st" => TokenKind::KwSt,
            "others" => TokenKind::KwOthers,
            "map" => TokenKind::KwMap,
            "permute" => TokenKind::KwPermute,
            "fold" => TokenKind::KwFold,
            "copy" => TokenKind::KwCopy,
            "goto" => TokenKind::KwGoto,
            "INF" => TokenKind::KwInf,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("par"), Some(TokenKind::KwPar));
        assert_eq!(TokenKind::keyword("index_set"), Some(TokenKind::KwIndexSet));
        assert_eq!(TokenKind::keyword("double"), Some(TokenKind::KwFloat));
        assert_eq!(TokenKind::keyword("INF"), Some(TokenKind::KwInf));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn red_op_display() {
        assert_eq!(RedOpToken::Add.to_string(), "$+");
        assert_eq!(RedOpToken::Arb.to_string(), "$,");
        assert_eq!(RedOpToken::Min.to_string(), "$<");
    }
}
