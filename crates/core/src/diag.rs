//! Compile-time diagnostics.

use crate::span::Span;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

/// One compiler message with a source location and an optional lint code
/// (`UC1xx` codes are produced by the static-analysis passes of
/// [`crate::analysis`]; parse/sema diagnostics carry no code).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub span: Span,
    pub message: String,
    pub code: Option<&'static str>,
}

impl Diagnostic {
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, span, message: message.into(), code: None }
    }

    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, span, message: message.into(), code: None }
    }

    /// Attach a lint code (builder style).
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        match self.code {
            Some(code) => write!(f, "{sev}[{code}]: {} at {}", self.message, self.span),
            None => write!(f, "{sev}: {} at {}", self.message, self.span),
        }
    }
}

/// A list of diagnostics; compilation fails iff it contains an error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::error(span, message));
    }

    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::warning(span, message));
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn warning_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Make the list deterministic for golden tests and CI diffs: sort by
    /// span (then code, severity, message) and drop duplicates. Two coded
    /// diagnostics are duplicates when their `(code, span)` pair is
    /// identical (the same lint refiring on the same site, e.g. from an
    /// access analysed both as a read and as a write); uncoded diagnostics
    /// are deduped only when the full message also matches.
    /// Render every diagnostic prefixed with a file path, the
    /// `path:line:col: severity: message` shape editors and CI annotate.
    pub fn render_with_path(&self, path: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for d in &self.items {
            let sev = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = match d.code {
                Some(code) => {
                    writeln!(out, "{path}:{}: {sev}[{code}]: {}", d.span, d.message)
                }
                None => writeln!(out, "{path}:{}: {sev}: {}", d.span, d.message),
            };
        }
        out
    }

    pub fn normalize(&mut self) {
        self.items.sort_by(|a, b| {
            (a.span.start, a.span.end, a.code, a.severity, &a.message).cmp(&(
                b.span.start,
                b.span.end,
                b.code,
                b.severity,
                &b.message,
            ))
        });
        self.items.dedup_by(|a, b| {
            a.span == b.span
                && a.code == b.code
                && (a.code.is_some() || (a.message == b.message && a.severity == b.severity))
        });
    }

    /// Escalate every warning to an error (`--deny warnings`).
    pub fn promote_warnings(&mut self) {
        for d in &mut self.items {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }
}

impl std::fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_and_formatting() {
        let mut ds = Diagnostics::default();
        assert!(!ds.has_errors());
        ds.warning(Span::new(0, 1, 1, 1), "minor");
        assert!(!ds.has_errors());
        assert!(!ds.is_empty());
        ds.error(Span::new(5, 9, 2, 3), "bad thing");
        assert!(ds.has_errors());
        let text = ds.to_string();
        assert!(text.contains("warning: minor at 1:1"));
        assert!(text.contains("error: bad thing at 2:3"));
    }

    #[test]
    fn codes_render_in_brackets() {
        let d = Diagnostic::warning(Span::new(0, 1, 4, 2), "races").with_code("UC101");
        assert_eq!(d.to_string(), "warning[UC101]: races at 4:2");
    }

    #[test]
    fn normalize_sorts_by_span() {
        let mut ds = Diagnostics::default();
        ds.warning(Span::new(20, 25, 3, 1), "later");
        ds.error(Span::new(5, 9, 1, 6), "earlier");
        ds.normalize();
        assert_eq!(ds.items[0].message, "earlier");
        assert_eq!(ds.items[1].message, "later");
    }

    #[test]
    fn normalize_dedupes_coded_pairs() {
        let span = Span::new(5, 9, 2, 3);
        let mut ds = Diagnostics::default();
        ds.push(Diagnostic::warning(span, "read via router").with_code("UC110"));
        ds.push(Diagnostic::warning(span, "write via router").with_code("UC110"));
        // Different code at the same span survives.
        ds.push(Diagnostic::warning(span, "other lint").with_code("UC120"));
        // Uncoded duplicates need identical messages.
        ds.push(Diagnostic::warning(span, "plain"));
        ds.push(Diagnostic::warning(span, "plain"));
        ds.push(Diagnostic::warning(span, "distinct"));
        ds.normalize();
        let coded: Vec<_> = ds.items.iter().filter(|d| d.code.is_some()).collect();
        assert_eq!(coded.len(), 2);
        let uncoded: Vec<_> = ds.items.iter().filter(|d| d.code.is_none()).collect();
        assert_eq!(uncoded.len(), 2);
    }

    #[test]
    fn promote_warnings_escalates() {
        let mut ds = Diagnostics::default();
        ds.warning(Span::default(), "w");
        assert!(!ds.has_errors());
        ds.promote_warnings();
        assert!(ds.has_errors());
    }
}
