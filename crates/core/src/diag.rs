//! Compile-time diagnostics.

use crate::span::Span;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One compiler message with a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, span, message: message.into() }
    }

    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, span, message: message.into() }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{}: {} at {}", sev, self.message, self.span)
    }
}

/// A list of diagnostics; compilation fails iff it contains an error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::error(span, message));
    }

    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.items.push(Diagnostic::warning(span, message));
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl std::fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.items {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_and_formatting() {
        let mut ds = Diagnostics::default();
        assert!(!ds.has_errors());
        ds.warning(Span::new(0, 1, 1, 1), "minor");
        assert!(!ds.has_errors());
        assert!(!ds.is_empty());
        ds.error(Span::new(5, 9, 2, 3), "bad thing");
        assert!(ds.has_errors());
        let text = ds.to_string();
        assert!(text.contains("warning: minor at 1:1"));
        assert!(text.contains("error: bad thing at 2:3"));
    }
}
