//! Stable text rendering of a lowered program (`uc run --emit ir`).
//!
//! The format is line-oriented and deterministic: golden-file tests pin
//! it, so gratuitous changes are breaking. Tree-escape fragments are
//! pretty-printed UC source collapsed onto one line.

use std::fmt::Write;

use uc_cm::Scalar;

use super::{Instr, IrProgram};
use crate::exec::IrOpt;
use crate::pretty;

/// Render a whole program.
pub fn render(p: &IrProgram) -> String {
    let mut out = String::new();
    let opt = match p.opt {
        IrOpt::Balanced => "balanced",
        IrOpt::Aggressive => "aggressive",
    };
    let _ = writeln!(
        out,
        ";; uc register ir, opt={opt}, inline={}",
        if p.inline_ok { "yes" } else { "no" }
    );
    if !p.global_names.is_empty() {
        let _ = write!(out, ";; globals:");
        for (i, n) in p.global_names.iter().enumerate() {
            let _ = write!(out, " g{i}={n}");
        }
        out.push('\n');
    }
    for f in &p.funcs {
        out.push('\n');
        let params = f
            .params
            .iter()
            .map(|&fl| if fl { "float" } else { "int" })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "func {}({params}) slots={} perm={}",
            f.name, f.n_slots, f.n_perm
        );
        match &f.body {
            None => {
                out.push_str("  <unlowered: runs on the tree-walker>\n");
            }
            Some(body) => {
                for (i, ins) in body.code.iter().enumerate() {
                    let _ = writeln!(out, "  {i:>4}  {}", instr(ins, body));
                }
            }
        }
    }
    out
}

fn scalar(v: &Scalar) -> String {
    match v {
        Scalar::Int(x) => format!("{x}"),
        Scalar::Float(x) => format!("{x:?}"),
        Scalar::Bool(b) => format!("{b}"),
    }
}

/// Collapse a pretty-printed AST fragment onto one line.
fn frag(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn instr(ins: &Instr, body: &super::IrBody) -> String {
    match ins {
        Instr::Const { dst, v } => format!("const      r{dst} = {}", scalar(v)),
        Instr::Copy { dst, src } => format!("copy       r{dst} = r{src}"),
        Instr::Bin { op, dst, a, b } => {
            format!("bin        r{dst} = r{a} {} r{b}", op.symbol())
        }
        Instr::Un { op, dst, a } => {
            let sym = match op {
                crate::ast::UnaryOp::Neg => "-",
                crate::ast::UnaryOp::Not => "!",
                crate::ast::UnaryOp::BitNot => "~",
            };
            format!("un         r{dst} = {sym}r{a}")
        }
        Instr::Truthy { dst, src } => format!("truthy     r{dst} = (r{src} != 0)"),
        Instr::StoreSlot { slot, src, float } => format!(
            "store      r{slot} = r{src} as {}",
            if *float { "float" } else { "int" }
        ),
        Instr::LoadGlobal { dst, g } => format!("load_g     r{dst} = g{g}"),
        Instr::StoreGlobal { g, src } => format!("store_g    g{g} = r{src}"),
        Instr::Jump { t } => format!("jump       @{t}"),
        Instr::JumpIfFalse { c, t } => format!("jump_if_f  r{c} -> @{t}"),
        Instr::JumpIfTrue { c, t } => format!("jump_if_t  r{c} -> @{t}"),
        Instr::SetSpan { span } => format!("span       {span}"),
        Instr::IterInit { slot } => format!("iter_init  r{slot}"),
        Instr::IterCheck { slot, label } => format!("iter_check r{slot} ({label})"),
        Instr::Call { dst, f, args } => {
            let args =
                args.iter().map(|r| format!("r{r}")).collect::<Vec<_>>().join(", ");
            format!("call       r{dst} = fn#{f}({args})")
        }
        Instr::Rand { dst } => format!("rand       r{dst}"),
        Instr::Power2 { dst, a } => format!("power2     r{dst} = power2(r{a})"),
        Instr::Abs { dst, a } => format!("abs        r{dst} = abs(r{a})"),
        Instr::MinMax { dst, a, b, is_min } => format!(
            "minmax     r{dst} = {}(r{a}, r{b})",
            if *is_min { "min" } else { "max" }
        ),
        Instr::Ret { src: Some(r) } => format!("ret        r{r}"),
        Instr::Ret { src: None } => "ret".into(),
        Instr::EnterScope => "scope_push".into(),
        Instr::ExitScopes { n } => format!("scope_pop  {n}"),
        Instr::BindName { name, slot } => format!("bind       {name} -> r{slot}"),
        Instr::EvalExpr { dst, e } => format!(
            "eval       r{dst} = `{}`",
            frag(&pretty::expr(&body.exprs[*e as usize]))
        ),
        Instr::EvalEffect { e } => {
            format!("effect     `{}`", frag(&pretty::expr(&body.exprs[*e as usize])))
        }
        Instr::Tree { s } => format!(
            "tree       `{}`",
            frag(&pretty::stmt_to_string(&body.stmts[*s as usize], 0))
        ),
        Instr::Nop => "nop".into(),
    }
}
