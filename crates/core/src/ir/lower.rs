//! Lowering from the checked AST to the register IR.
//!
//! Lowering is *total* and *conservative*: every statement either becomes
//! register instructions whose semantics provably match the tree-walker,
//! or a tree escape that runs the original AST fragment through the
//! tree-walker itself. Expression lowering is all-or-nothing per
//! statement-level expression — if any subexpression cannot be lowered
//! (array access, reduction, parallel value, unknown name), the partial
//! instructions are rolled back and the *whole* expression escapes. This
//! guarantees escapes occur exactly at the positions where the
//! tree-walker calls `eval_scalar` (conditions, returns, initializers)
//! or `eval`+release (expression statements, `for` init/step), so error
//! messages, spans, and side-effect order are identical by construction.
//!
//! The lowerer mirrors the runtime scope structure: every lowered block
//! emits `EnterScope`/`ExitScopes`, every register-allocated local also
//! gets a `BindName` so tree escapes resolve it by name, and any name
//! bound by an escaped declaration is *poisoned* — later references to
//! it fall back to by-name resolution.

use std::collections::HashMap;

use uc_cm::Scalar;

use super::{Instr, IrBody, IrFunc, IrProgram, Reg, Target};
use crate::ast::{BinaryOp, Block, Expr, FuncDef, Stmt, Type};
use crate::exec::IrOpt;
use crate::sema::Checked;

/// Builtins the tree-walker dispatches before user functions; calls to
/// these never recurse through `call_function`.
const BUILTINS: &[&str] = &["power2", "rand", "abs", "ABS", "min", "max", "swap"];

/// Maximum AST depth of a tree-escaped fragment for the program to stay
/// eligible for on-thread (inline) execution. Tree evaluation recurses
/// natively, so escapes deeper than this force the big-stack thread.
const MAX_INLINE_TREE_DEPTH: usize = 96;

/// Lower every function of a checked program.
pub fn lower_program(
    checked: &Checked,
    global_index: &HashMap<String, u32>,
    opt: IrOpt,
) -> IrProgram {
    let mut funcs_src: Vec<FuncDef> = checked.funcs_in_order().cloned().collect();
    if opt == IrOpt::Aggressive {
        for f in &mut funcs_src {
            super::passes::aggressive_rewrite(f);
        }
    }
    // Later definitions win, matching `checked.funcs` (a by-name map).
    let mut by_name = HashMap::new();
    for (i, f) in funcs_src.iter().enumerate() {
        by_name.insert(f.name.clone(), i);
    }
    let mut funcs = Vec::with_capacity(funcs_src.len());
    let mut inline_ok = true;
    for f in &funcs_src {
        let (func, stats) = Lowerer::new(checked, global_index, &by_name, &funcs_src).run(f);
        inline_ok &= func.body.is_some()
            && !stats.tree_user_call
            && stats.max_tree_depth <= MAX_INLINE_TREE_DEPTH;
        funcs.push(func);
    }
    for func in &mut funcs {
        if let Some(body) = &mut func.body {
            super::passes::optimize(body, func.n_perm);
        }
    }
    let mut global_names = vec![String::new(); global_index.len()];
    for (n, &i) in global_index {
        global_names[i as usize] = n.clone();
    }
    IrProgram { funcs, by_name, global_names, opt, inline_ok }
}

/// Inline-eligibility facts gathered while lowering one function.
struct FuncStats {
    /// A tree escape contains a user-function call (would recurse
    /// natively through `call_function`).
    tree_user_call: bool,
    /// Deepest AST subtree handed to a tree escape.
    max_tree_depth: usize,
}

/// How a name resolves at a use site during lowering.
#[derive(Clone, Copy)]
enum Binding {
    /// Register-allocated local.
    Slot { idx: Reg, float: bool },
    /// Bound by an escaped declaration — resolve by name at runtime.
    Poisoned,
}

#[derive(Clone, Copy)]
enum Place {
    Slot { idx: Reg, float: bool },
    Global(u32),
}

#[derive(Clone, Copy)]
struct LoopCtx {
    break_to: usize,
    continue_to: usize,
    /// `open_scopes` at the loop statement; `break`/`continue` emit
    /// `ExitScopes` down to this depth before jumping.
    open_scopes: u16,
}

struct Lowerer<'a> {
    checked: &'a Checked,
    global_index: &'a HashMap<String, u32>,
    func_by_name: &'a HashMap<String, usize>,
    funcs_src: &'a [FuncDef],

    code: Vec<Instr>,
    stmts: Vec<Stmt>,
    exprs: Vec<Expr>,

    /// Compile-time mirror of the runtime scope stack (prologue scope +
    /// one per lowered block).
    scopes: Vec<HashMap<String, Binding>>,
    open_scopes: u16,
    loops: Vec<LoopCtx>,

    /// Label id -> instruction index (patched into jumps at the end).
    labels: Vec<Target>,
    patches: Vec<(usize, usize)>,

    // Register allocation (u32 so overflow is detected, not wrapped).
    next_perm: u32,
    perm_limit: u32,
    next_temp: u32,
    watermark: u32,
    failed: bool,

    stats: FuncStats,
}

impl<'a> Lowerer<'a> {
    fn new(
        checked: &'a Checked,
        global_index: &'a HashMap<String, u32>,
        func_by_name: &'a HashMap<String, usize>,
        funcs_src: &'a [FuncDef],
    ) -> Self {
        Lowerer {
            checked,
            global_index,
            func_by_name,
            funcs_src,
            code: Vec::new(),
            stmts: Vec::new(),
            exprs: Vec::new(),
            scopes: Vec::new(),
            open_scopes: 0,
            loops: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            next_perm: 0,
            perm_limit: 0,
            next_temp: 0,
            watermark: 0,
            failed: false,
            stats: FuncStats { tree_user_call: false, max_tree_depth: 0 },
        }
    }

    fn run(mut self, f: &FuncDef) -> (IrFunc, FuncStats) {
        let params: Vec<bool> = f.params.iter().map(|(ty, _)| *ty == Type::Float).collect();
        let mut n_perm = f.params.len();
        for s in &f.body.stmts {
            count_perms(s, &mut n_perm);
        }
        if n_perm > u16::MAX as usize {
            self.failed = true;
            n_perm = 0;
        }
        self.perm_limit = n_perm as u32;
        self.next_temp = self.perm_limit;
        self.watermark = self.perm_limit;
        self.next_perm = f.params.len() as u32;

        // Prologue: parameters live in the frame's base scope, exactly
        // where `call_function` puts them.
        self.scopes.push(HashMap::new());
        for (i, (ty, name)) in f.params.iter().enumerate() {
            let idx = i as Reg;
            self.code.push(Instr::BindName { name: name.clone(), slot: idx });
            self.scopes
                .last_mut()
                .unwrap()
                .insert(name.clone(), Binding::Slot { idx, float: *ty == Type::Float });
        }
        self.lower_block(&f.body);
        // Falling off the end returns nothing, like `exec_block` ending
        // with `Flow::Normal`.
        self.code.push(Instr::Ret { src: None });

        for (i, l) in &self.patches {
            let t = self.labels[*l];
            match &mut self.code[*i] {
                Instr::Jump { t: x }
                | Instr::JumpIfFalse { t: x, .. }
                | Instr::JumpIfTrue { t: x, .. } => *x = t,
                other => unreachable!("patched a non-jump: {other:?}"),
            }
        }

        let body = if self.failed {
            None
        } else {
            Some(IrBody { code: self.code, stmts: self.stmts, exprs: self.exprs })
        };
        (
            IrFunc {
                name: f.name.clone(),
                params,
                n_slots: self.watermark.min(u16::MAX as u32) as u16,
                n_perm: self.perm_limit as u16,
                body,
            },
            self.stats,
        )
    }

    // ---- registers, labels, scopes ------------------------------------

    fn temp(&mut self) -> Reg {
        let r = self.next_temp;
        self.next_temp += 1;
        if self.next_temp > u16::MAX as u32 + 1 {
            self.failed = true;
            return 0;
        }
        self.watermark = self.watermark.max(self.next_temp);
        r as Reg
    }

    /// Temporaries are dead between statements; reuse them.
    fn reset_temps(&mut self) {
        self.next_temp = self.perm_limit;
    }

    fn alloc_perm(&mut self) -> Reg {
        let r = self.next_perm;
        self.next_perm += 1;
        if self.next_perm > self.perm_limit {
            self.failed = true;
            return 0;
        }
        r as Reg
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(Target::MAX);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        self.labels[l] = self.code.len() as Target;
    }

    fn emit_jump(&mut self, l: usize, make: impl FnOnce(Target) -> Instr) {
        self.patches.push((self.code.len(), l));
        self.code.push(make(Target::MAX));
    }

    fn scope_mut(&mut self) -> &mut HashMap<String, Binding> {
        self.scopes.last_mut().expect("inside a scope")
    }

    // ---- escapes ------------------------------------------------------

    fn emit_span(&mut self, s: &Stmt) {
        if let Some(sp) = crate::exec::Program::stmt_span(s) {
            self.code.push(Instr::SetSpan { span: sp });
        }
    }

    /// Escape a whole statement to the tree-walker. `exec_stmt` sets the
    /// span itself, so no `SetSpan` is emitted here.
    fn tree_stmt(&mut self, s: &Stmt) {
        self.poison_decls(s);
        let mut call = false;
        let d = stmt_depth(s, &mut call);
        self.stats.tree_user_call |= call;
        self.stats.max_tree_depth = self.stats.max_tree_depth.max(d);
        let idx = self.stmts.len() as u32;
        self.stmts.push(s.clone());
        self.code.push(Instr::Tree { s: idx });
    }

    fn account_expr(&mut self, e: &Expr) {
        let mut call = false;
        let d = expr_depth(e, &mut call);
        self.stats.tree_user_call |= call;
        self.stats.max_tree_depth = self.stats.max_tree_depth.max(d);
    }

    /// Lower an expression at an `eval_scalar` position, escaping the
    /// whole expression if it cannot be compiled.
    fn lower_value(&mut self, e: &Expr) -> Reg {
        if let Some(r) = self.try_expr(e) {
            return r;
        }
        self.account_expr(e);
        let idx = self.exprs.len() as u32;
        self.exprs.push(e.clone());
        let t = self.temp();
        self.code.push(Instr::EvalExpr { dst: t, e: idx });
        t
    }

    /// Lower an expression at a statement (`eval` + release) position.
    fn lower_effect(&mut self, e: &Expr) {
        if self.try_expr(e).is_some() {
            return; // value discarded; DSE cleans up pure leftovers
        }
        self.account_expr(e);
        let idx = self.exprs.len() as u32;
        self.exprs.push(e.clone());
        self.code.push(Instr::EvalEffect { e: idx });
    }

    /// All-or-nothing expression lowering: on failure every emitted
    /// instruction, label, and temp is rolled back.
    fn try_expr(&mut self, e: &Expr) -> Option<Reg> {
        let cp = (self.code.len(), self.patches.len(), self.labels.len(), self.next_temp);
        match self.go_expr(e) {
            Some(r) => Some(r),
            None => {
                self.code.truncate(cp.0);
                self.patches.truncate(cp.1);
                self.labels.truncate(cp.2);
                self.next_temp = cp.3;
                None
            }
        }
    }

    // ---- expressions --------------------------------------------------

    fn emit_const(&mut self, v: Scalar) -> Option<Reg> {
        let t = self.temp();
        self.code.push(Instr::Const { dst: t, v });
        Some(t)
    }

    fn resolve(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn go_expr(&mut self, e: &Expr) -> Option<Reg> {
        match e {
            Expr::IntLit(v, _) => self.emit_const(Scalar::Int(*v)),
            Expr::FloatLit(v, _) => self.emit_const(Scalar::Float(*v)),
            Expr::Inf(_) => self.emit_const(Scalar::Int(i64::MAX)),
            Expr::Ident(name, _) => match self.resolve(name) {
                Some(Binding::Slot { idx, .. }) => {
                    // Copy to a temp: the value is captured at read time
                    // (`x + (x = 3)` reads the old `x`).
                    let t = self.temp();
                    self.code.push(Instr::Copy { dst: t, src: idx });
                    Some(t)
                }
                Some(Binding::Poisoned) => None,
                None => {
                    if let Some(&g) = self.global_index.get(name) {
                        let t = self.temp();
                        self.code.push(Instr::LoadGlobal { dst: t, g });
                        Some(t)
                    } else if let Some(v) = self.checked.consts.get(name) {
                        self.emit_const(Scalar::Int(*v))
                    } else {
                        None // unbound / array / index element: escape
                    }
                }
            },
            Expr::Index { .. } | Expr::Reduce(_) => None,
            Expr::Unary { op, expr, .. } => {
                let a = self.go_expr(expr)?;
                let t = self.temp();
                self.code.push(Instr::Un { op: *op, dst: t, a });
                Some(t)
            }
            Expr::Binary { op: op @ (BinaryOp::LogAnd | BinaryOp::LogOr), lhs, rhs, .. } => {
                let a = self.go_expr(lhs)?;
                let t = self.temp();
                self.code.push(Instr::Truthy { dst: t, src: a });
                let end = self.new_label();
                if *op == BinaryOp::LogAnd {
                    self.emit_jump(end, |tg| Instr::JumpIfFalse { c: t, t: tg });
                } else {
                    self.emit_jump(end, |tg| Instr::JumpIfTrue { c: t, t: tg });
                }
                let b = self.go_expr(rhs)?;
                self.code.push(Instr::Truthy { dst: t, src: b });
                self.bind(end);
                Some(t)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.go_expr(lhs)?;
                let b = self.go_expr(rhs)?;
                let t = self.temp();
                self.code.push(Instr::Bin { op: *op, dst: t, a, b });
                Some(t)
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                let c = self.go_expr(cond)?;
                let t = self.temp();
                let lelse = self.new_label();
                let lend = self.new_label();
                self.emit_jump(lelse, |tg| Instr::JumpIfFalse { c, t: tg });
                let a = self.go_expr(then_e)?;
                self.code.push(Instr::Copy { dst: t, src: a });
                self.emit_jump(lend, |tg| Instr::Jump { t: tg });
                self.bind(lelse);
                let b = self.go_expr(else_e)?;
                self.code.push(Instr::Copy { dst: t, src: b });
                self.bind(lend);
                Some(t)
            }
            Expr::Call { name, args, .. } => self.go_call(name, args),
            Expr::Assign { target, op, value, .. } => {
                let Expr::Ident(name, _) = target.as_ref() else { return None };
                let place = match self.resolve(name) {
                    Some(Binding::Slot { idx, float }) => Place::Slot { idx, float },
                    Some(Binding::Poisoned) => return None,
                    None => match self.global_index.get(name) {
                        Some(&g) => Place::Global(g),
                        // `#define` constants and unknown names are not
                        // assignable: escape for the identical error.
                        None => return None,
                    },
                };
                // Tree order: value first, then the old value for
                // compound assignments.
                let r = self.go_expr(value)?;
                let src = match op {
                    None => r,
                    Some(bop) => {
                        let old = self.temp();
                        match place {
                            Place::Slot { idx, .. } => {
                                self.code.push(Instr::Copy { dst: old, src: idx })
                            }
                            Place::Global(g) => {
                                self.code.push(Instr::LoadGlobal { dst: old, g })
                            }
                        }
                        let t = self.temp();
                        self.code.push(Instr::Bin { op: *bop, dst: t, a: old, b: r });
                        t
                    }
                };
                match place {
                    Place::Slot { idx, float } => {
                        self.code.push(Instr::StoreSlot { slot: idx, src, float })
                    }
                    Place::Global(g) => self.code.push(Instr::StoreGlobal { g, src }),
                }
                Some(src) // assignments yield the pre-coercion value
            }
        }
    }

    /// Builtins match before user functions, exactly like `eval_call`.
    /// Argument-count mismatches escape so the tree-walker produces the
    /// identical behaviour (including its panics on missing arguments
    /// and its silent `zip` truncation for user calls).
    fn go_call(&mut self, name: &str, args: &[Expr]) -> Option<Reg> {
        match name {
            "power2" => {
                let a = self.go_expr(args.first()?)?;
                let t = self.temp();
                self.code.push(Instr::Power2 { dst: t, a });
                Some(t)
            }
            "rand" => {
                // `rand()` never evaluates its arguments.
                let t = self.temp();
                self.code.push(Instr::Rand { dst: t });
                Some(t)
            }
            "abs" | "ABS" => {
                let a = self.go_expr(args.first()?)?;
                let t = self.temp();
                self.code.push(Instr::Abs { dst: t, a });
                Some(t)
            }
            "min" | "max" => {
                if args.len() < 2 {
                    return None;
                }
                let a = self.go_expr(&args[0])?;
                let b = self.go_expr(&args[1])?;
                let t = self.temp();
                self.code.push(Instr::MinMax { dst: t, a, b, is_min: name == "min" });
                Some(t)
            }
            "swap" => None, // expression-position swap is an error: escape
            _ => {
                let &fi = self.func_by_name.get(name)?;
                if self.funcs_src[fi].params.len() != args.len() {
                    return None;
                }
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.go_expr(a)?);
                }
                let t = self.temp();
                self.code.push(Instr::Call { dst: t, f: fi as u32, args: regs });
                Some(t)
            }
        }
    }

    // ---- statements ---------------------------------------------------

    fn lower_block(&mut self, b: &Block) {
        self.code.push(Instr::EnterScope);
        self.open_scopes += 1;
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.reset_temps();
            self.lower_stmt(s);
        }
        self.scopes.pop();
        self.open_scopes -= 1;
        self.code.push(Instr::ExitScopes { n: 1 });
    }

    /// A branch body (`if`/loop). A bare declaration here binds
    /// conditionally, which registers cannot express: escape it.
    fn lower_branch(&mut self, s: &Stmt) {
        self.reset_temps();
        if matches!(s, Stmt::Decl(_)) {
            self.tree_stmt(s);
        } else {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Empty => {}
            Stmt::Block(b) => self.lower_block(b),
            Stmt::Expr(e) => {
                // Statement-level `swap` is a tree-walker special form.
                if let Expr::Call { name, .. } = e {
                    if name == "swap" {
                        self.tree_stmt(s);
                        return;
                    }
                }
                self.emit_span(s);
                self.lower_effect(e);
            }
            Stmt::Decl(v) => {
                if !v.dims.is_empty() {
                    self.tree_stmt(s); // array declaration
                    return;
                }
                self.emit_span(s);
                let init = match &v.init {
                    Some(e) => self.lower_value(e),
                    None => {
                        let t = self.temp();
                        self.code.push(Instr::Const { dst: t, v: Scalar::Int(0) });
                        t
                    }
                };
                let slot = self.alloc_perm();
                let float = v.ty == Type::Float;
                self.code.push(Instr::StoreSlot { slot, src: init, float });
                // The binding appears only after the initializer ran,
                // like `exec_decl`.
                self.code.push(Instr::BindName { name: v.name.clone(), slot });
                self.scope_mut().insert(v.name.clone(), Binding::Slot { idx: slot, float });
            }
            Stmt::IndexSets(_) | Stmt::Uc(_) => self.tree_stmt(s),
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.emit_span(s);
                let c = self.lower_value(cond);
                let lelse = self.new_label();
                self.emit_jump(lelse, |t| Instr::JumpIfFalse { c, t });
                self.lower_branch(then_branch);
                if let Some(eb) = else_branch {
                    let lend = self.new_label();
                    self.emit_jump(lend, |t| Instr::Jump { t });
                    self.bind(lelse);
                    self.lower_branch(eb);
                    self.bind(lend);
                } else {
                    self.bind(lelse);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.emit_span(s);
                let cnt = self.alloc_perm();
                self.code.push(Instr::IterInit { slot: cnt });
                let head = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.reset_temps();
                let c = self.lower_value(cond);
                self.emit_jump(exit, |t| Instr::JumpIfFalse { c, t });
                self.code.push(Instr::IterCheck { slot: cnt, label: "while loop" });
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: head,
                    open_scopes: self.open_scopes,
                });
                self.lower_branch(body);
                self.loops.pop();
                self.emit_jump(head, |t| Instr::Jump { t });
                self.bind(exit);
            }
            Stmt::For { init, cond, step, body, .. } => {
                self.emit_span(s);
                if let Some(e) = init {
                    self.reset_temps();
                    self.lower_effect(e);
                }
                let cnt = self.alloc_perm();
                self.code.push(Instr::IterInit { slot: cnt });
                let head = self.new_label();
                let stepl = self.new_label();
                let exit = self.new_label();
                self.bind(head);
                self.reset_temps();
                if let Some(c) = cond {
                    let cv = self.lower_value(c);
                    self.emit_jump(exit, |t| Instr::JumpIfFalse { c: cv, t });
                }
                self.code.push(Instr::IterCheck { slot: cnt, label: "for loop" });
                self.loops.push(LoopCtx {
                    break_to: exit,
                    continue_to: stepl,
                    open_scopes: self.open_scopes,
                });
                self.lower_branch(body);
                self.loops.pop();
                self.bind(stepl);
                self.reset_temps();
                if let Some(e) = step {
                    self.lower_effect(e);
                }
                self.emit_jump(head, |t| Instr::Jump { t });
                self.bind(exit);
            }
            Stmt::Return(e, _) => {
                self.emit_span(s);
                let src = e.as_ref().map(|e| self.lower_value(e));
                self.code.push(Instr::Ret { src });
            }
            Stmt::Break(_) => {
                self.emit_span(s);
                match self.loops.last().copied() {
                    Some(lc) => {
                        let n = self.open_scopes - lc.open_scopes;
                        if n > 0 {
                            self.code.push(Instr::ExitScopes { n });
                        }
                        self.emit_jump(lc.break_to, |t| Instr::Jump { t });
                    }
                    // `break` outside any loop unwinds to the caller
                    // (`call_function` maps stray flow to `Ok(None)`).
                    None => self.code.push(Instr::Ret { src: None }),
                }
            }
            Stmt::Continue(_) => {
                self.emit_span(s);
                match self.loops.last().copied() {
                    Some(lc) => {
                        let n = self.open_scopes - lc.open_scopes;
                        if n > 0 {
                            self.code.push(Instr::ExitScopes { n });
                        }
                        self.emit_jump(lc.continue_to, |t| Instr::Jump { t });
                    }
                    None => self.code.push(Instr::Ret { src: None }),
                }
            }
        }
    }

    /// Names bound by an escaped statement must resolve by name from
    /// then on. Blocks are not descended — their bindings die with the
    /// block — but conditional and parallel bodies may leak bindings
    /// into the enclosing runtime scope.
    fn poison_decls(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                self.scope_mut().insert(v.name.clone(), Binding::Poisoned);
            }
            Stmt::If { then_branch, else_branch, .. } => {
                self.poison_decls(then_branch);
                if let Some(e) = else_branch {
                    self.poison_decls(e);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => self.poison_decls(body),
            Stmt::Uc(uc) => {
                for arm in &uc.arms {
                    self.poison_decls(&arm.body);
                }
                if let Some(o) = &uc.others {
                    self.poison_decls(o);
                }
            }
            _ => {}
        }
    }
}

/// Upper bound on named registers a function needs: parameters, scalar
/// declarations, and one iteration counter per loop. Overcounts (e.g.
/// declarations that end up escaped) are harmless.
fn count_perms(s: &Stmt, n: &mut usize) {
    match s {
        Stmt::Decl(v) if v.dims.is_empty() => *n += 1,
        Stmt::Block(b) => {
            for s in &b.stmts {
                count_perms(s, n);
            }
        }
        Stmt::If { then_branch, else_branch, .. } => {
            count_perms(then_branch, n);
            if let Some(e) = else_branch {
                count_perms(e, n);
            }
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => {
            *n += 1;
            count_perms(body, n);
        }
        // Parallel constructs escape whole; nothing inside them is
        // register-allocated.
        _ => {}
    }
}

// ---- escape statistics ----------------------------------------------

fn stmt_depth(s: &Stmt, user_call: &mut bool) -> usize {
    let d = match s {
        Stmt::Expr(e) => expr_depth(e, user_call),
        Stmt::Decl(v) => v
            .dims
            .iter()
            .chain(v.init.as_ref())
            .map(|e| expr_depth(e, user_call))
            .max()
            .unwrap_or(0),
        Stmt::IndexSets(defs) => defs
            .iter()
            .map(|d| match &d.init {
                crate::ast::IndexSetInit::Range(a, b) => {
                    expr_depth(a, user_call).max(expr_depth(b, user_call))
                }
                crate::ast::IndexSetInit::List(es) => {
                    es.iter().map(|e| expr_depth(e, user_call)).max().unwrap_or(0)
                }
                crate::ast::IndexSetInit::Alias(_) => 0,
            })
            .max()
            .unwrap_or(0),
        Stmt::Block(b) => b.stmts.iter().map(|s| stmt_depth(s, user_call)).max().unwrap_or(0),
        Stmt::If { cond, then_branch, else_branch, .. } => expr_depth(cond, user_call)
            .max(stmt_depth(then_branch, user_call))
            .max(else_branch.as_ref().map_or(0, |e| stmt_depth(e, user_call))),
        Stmt::While { cond, body, .. } => {
            expr_depth(cond, user_call).max(stmt_depth(body, user_call))
        }
        Stmt::For { init, cond, step, body, .. } => init
            .iter()
            .chain(cond.iter())
            .chain(step.iter())
            .map(|e| expr_depth(e, user_call))
            .max()
            .unwrap_or(0)
            .max(stmt_depth(body, user_call)),
        Stmt::Return(e, _) => e.as_ref().map_or(0, |e| expr_depth(e, user_call)),
        Stmt::Uc(uc) => uc
            .arms
            .iter()
            .map(|a| {
                a.pred
                    .as_ref()
                    .map_or(0, |p| expr_depth(p, user_call))
                    .max(stmt_depth(&a.body, user_call))
            })
            .max()
            .unwrap_or(0)
            .max(uc.others.as_ref().map_or(0, |o| stmt_depth(o, user_call))),
        Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => 0,
    };
    d + 1
}

fn expr_depth(e: &Expr, user_call: &mut bool) -> usize {
    let d = match e {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Inf(_) | Expr::Ident(..) => 0,
        Expr::Index { subs, .. } => {
            subs.iter().map(|e| expr_depth(e, user_call)).max().unwrap_or(0)
        }
        Expr::Call { name, args, .. } => {
            if !BUILTINS.contains(&name.as_str()) {
                *user_call = true;
            }
            args.iter().map(|e| expr_depth(e, user_call)).max().unwrap_or(0)
        }
        Expr::Unary { expr, .. } => expr_depth(expr, user_call),
        Expr::Binary { lhs, rhs, .. } => {
            expr_depth(lhs, user_call).max(expr_depth(rhs, user_call))
        }
        Expr::Ternary { cond, then_e, else_e, .. } => expr_depth(cond, user_call)
            .max(expr_depth(then_e, user_call))
            .max(expr_depth(else_e, user_call)),
        Expr::Assign { target, value, .. } => {
            expr_depth(target, user_call).max(expr_depth(value, user_call))
        }
        Expr::Reduce(r) => r
            .arms
            .iter()
            .map(|(p, o)| {
                p.as_ref().map_or(0, |p| expr_depth(p, user_call)).max(expr_depth(o, user_call))
            })
            .max()
            .unwrap_or(0)
            .max(r.others.as_ref().map_or(0, |o| expr_depth(o, user_call))),
    };
    d + 1
}
