//! The compiled register IR.
//!
//! The AST tree-walker in [`crate::exec`] re-dispatches on every node of
//! every expression, every iteration — pure host-side overhead, since
//! front-end scalar work charges no simulated cycles. This module lowers
//! each checked function into a flat instruction sequence over a
//! per-activation register file, which the register-machine evaluator in
//! `exec::vm` runs without any native recursion of its own.
//!
//! ## Shape of the IR
//!
//! A function body is a `Vec<Instr>` plus two side tables of AST
//! fragments. Three instruction families split the work:
//!
//! * **Registers** (`Const`, `Copy`, `Bin`, `Un`, `Truthy`, `StoreSlot`,
//!   `LoadGlobal`, `StoreGlobal`, `Jump*`, `Call`, `Ret`, builtins) —
//!   front-end control flow and scalar arithmetic, fully compiled.
//!   Named locals live in the low registers ("slots"); expression
//!   temporaries above them, reset per statement.
//! * **Tree escapes** (`Tree`, `EvalExpr`, `EvalEffect`) — parallel
//!   constructs, array accesses, reductions, and anything else the
//!   lowering cannot prove scalar runs through the *same* tree-walking
//!   code the AST backend uses, on an AST fragment stored in the side
//!   table. `BindName`/`EnterScope`/`ExitScopes` mirror the runtime
//!   scope structure so those fragments resolve lowered locals by name
//!   (via [`crate::exec` `LocalVar::Slot`]).
//! * **Budget ops** (`IterInit`/`IterCheck`, `SetSpan`) — reproduce the
//!   tree-walker's iteration caps, deadline polls, and error spans
//!   exactly, so a failing program reports the identical `RunError`
//!   under either backend.
//!
//! Lowering is total: a construct the compiler cannot lower becomes a
//! tree escape, and a function whose lowering would overflow the
//! register file keeps `body: None` (the VM calls it through the
//! tree-walker). Behaviour is therefore always identical to the AST
//! backend; lowering quality only affects host speed.
//!
//! ## Pass pipeline
//!
//! [`passes::optimize`] runs per-instruction passes after lowering:
//! constant folding within basic blocks, jump simplification against
//! known conditions, dead-store elimination on expression temporaries,
//! unreachable-code removal, and scope-instruction stripping for
//! functions with no tree escapes. All of these touch only uncharged
//! front-end instructions, so results, simulated cycles, and errors are
//! bit-identical to the tree-walker ([`IrOpt::Balanced`], the default).
//! [`IrOpt::Aggressive`] additionally rewrites parallel constructs at
//! the AST level before lowering — dead-context elimination and
//! communication coalescing — which removes *charged* machine
//! operations: results are unchanged but cycle counts may drop below
//! the AST backend's.
//!
//! `uc run --emit ir` (and `uc check --emit ir`) print the program in
//! the stable text form produced by [`text::render`].

pub mod lower;
pub mod passes;
pub mod text;

pub use lower::lower_program;

use uc_cm::Scalar;

use crate::ast::{BinaryOp, Expr, Stmt, UnaryOp};
use crate::exec::IrOpt;
use crate::span::Span;

/// Register index. Slots `0..n_perm` are named locals, parameters, and
/// loop counters; `n_perm..n_slots` are per-statement temporaries.
pub type Reg = u16;

/// Instruction index (jump target).
pub type Target = u32;

/// One IR instruction. See the module docs for the three families.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `r[dst] = v`
    Const { dst: Reg, v: Scalar },
    /// `r[dst] = r[src]`
    Copy { dst: Reg, src: Reg },
    /// `r[dst] = r[a] op r[b]` (front-end C semantics, wrapping ints;
    /// traps on division by zero).
    Bin { op: BinaryOp, dst: Reg, a: Reg, b: Reg },
    /// `r[dst] = op r[a]`
    Un { op: UnaryOp, dst: Reg, a: Reg },
    /// `r[dst] = (r[src] != 0) as int` — the value `&&`/`||` produce.
    Truthy { dst: Reg, src: Reg },
    /// `r[slot] = coerce(r[src], declared type)` — assignment to a named
    /// local, coercing to its declared type (`float` or int).
    StoreSlot { slot: Reg, src: Reg, float: bool },
    /// `r[dst] = globals[g]`
    LoadGlobal { dst: Reg, g: u32 },
    /// `globals[g] = coerce(r[src], type of globals[g])`
    StoreGlobal { g: u32, src: Reg },
    /// Unconditional jump.
    Jump { t: Target },
    /// Jump when `r[c]` is falsy.
    JumpIfFalse { c: Reg, t: Target },
    /// Jump when `r[c]` is truthy.
    JumpIfTrue { c: Reg, t: Target },
    /// `exec_span = span` — emitted where the tree-walker's `exec_stmt`
    /// would set the span, so errors report identical positions.
    SetSpan { span: Span },
    /// `r[slot] = 0` — reset a loop's iteration counter.
    IterInit { slot: Reg },
    /// Bump the counter, trap on [`crate::exec::ExecLimits::max_iterations`],
    /// poll the wall-clock deadline. Placed where the tree-walker checks:
    /// after the condition, before the body.
    IterCheck { slot: Reg, label: &'static str },
    /// Call a lowered function: arity-matched, scalar args from registers,
    /// `r[dst]` receives the return value (0 when the callee returns
    /// nothing). Falls back to the tree-walker when the callee is
    /// unlowered.
    Call { dst: Reg, f: u32, args: Vec<Reg> },
    /// `r[dst] = rand()` — consumes one seed from the deterministic
    /// stream, exactly like the tree-walker's front-end `rand()`.
    Rand { dst: Reg },
    /// `r[dst] = power2(r[a])`
    Power2 { dst: Reg, a: Reg },
    /// `r[dst] = abs(r[a])` (type-preserving; bool becomes int).
    Abs { dst: Reg, a: Reg },
    /// `r[dst] = min/max(r[a], r[b])` with float promotion.
    MinMax { dst: Reg, a: Reg, b: Reg, is_min: bool },
    /// Return from the current activation (`None` returns 0 to the
    /// caller), freeing the frame's scopes innermost-first.
    Ret { src: Option<Reg> },
    /// Push a runtime scope (block entry).
    EnterScope,
    /// Pop and free `n` runtime scopes (block exit, `break`/`continue`).
    ExitScopes { n: u16 },
    /// Bind `name` to register `slot` in the innermost runtime scope so
    /// tree escapes resolve it by name.
    BindName { name: String, slot: Reg },
    /// `r[dst] = eval_scalar(exprs[e])` through the tree-walker.
    EvalExpr { dst: Reg, e: u32 },
    /// Evaluate `exprs[e]` for effect through the tree-walker.
    EvalEffect { e: u32 },
    /// Execute `stmts[s]` through the tree-walker (parallel constructs,
    /// declarations it cannot register-allocate, `swap`, index sets).
    /// Lowering guarantees such statements complete with normal flow.
    Tree { s: u32 },
    /// No operation (pass output; compacted away).
    Nop,
}

/// A lowered function body: code plus the AST fragments its tree escapes
/// reference.
#[derive(Debug, Clone, PartialEq)]
pub struct IrBody {
    pub code: Vec<Instr>,
    /// Statements referenced by [`Instr::Tree`].
    pub stmts: Vec<Stmt>,
    /// Expressions referenced by [`Instr::EvalExpr`] / [`Instr::EvalEffect`].
    pub exprs: Vec<Expr>,
}

/// One lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunc {
    pub name: String,
    /// Parameter coercion: `true` = float, `false` = int (everything
    /// non-float coerces to int, matching the tree-walker).
    pub params: Vec<bool>,
    /// Total registers of an activation.
    pub n_slots: u16,
    /// Registers `0..n_perm` are named locals / parameters / loop
    /// counters; the rest are statement temporaries.
    pub n_perm: u16,
    /// `None` when lowering overflowed the register file — the VM calls
    /// this function through the tree-walker instead.
    pub body: Option<IrBody>,
}

/// The lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    pub funcs: Vec<IrFunc>,
    pub by_name: std::collections::HashMap<String, usize>,
    /// Global scalar names in index order (for rendering).
    pub global_names: Vec<String>,
    /// Optimization level the program was lowered at.
    pub opt: IrOpt,
    /// Whether the whole program may run on the caller's thread: every
    /// function lowered, no user calls inside tree escapes (those would
    /// recurse natively through the tree-walker), and every escape's AST
    /// shallow enough that tree recursion stays within a small bound.
    /// When false, [`crate::exec::Program::run`] spawns the big-stack
    /// interpreter thread exactly as the AST backend does.
    pub inline_ok: bool,
}
