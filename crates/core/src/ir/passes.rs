//! Per-instruction optimization passes over lowered bodies, plus the
//! aggressive AST-level rewrites.
//!
//! The instruction passes ([`optimize`]) touch only *uncharged*
//! front-end instructions, so under [`IrOpt::Balanced`] results,
//! simulated cycles, fuel, and errors stay bit-identical to the AST
//! backend. The AST rewrites ([`aggressive_rewrite`], run only under
//! [`IrOpt::Aggressive`]) remove charged machine work — dead-context
//! elimination and communication coalescing — so cycle counts may drop;
//! results of error-free programs are unchanged, but a program whose
//! only error was raised inside an eliminated dead arm may now succeed.
//!
//! [`IrOpt::Balanced`]: crate::exec::IrOpt::Balanced
//! [`IrOpt::Aggressive`]: crate::exec::IrOpt::Aggressive

use std::collections::{HashMap, HashSet, VecDeque};

use uc_cm::{ElemType, Scalar};

use super::{Instr, IrBody, Reg};
use crate::ast::{BinaryOp, Block, Expr, FuncDef, Stmt, UcKind, UcStmt};
use crate::exec::{coerce_scalar, scalar_binary, scalar_unary};
use crate::stdlib;

/// Run the balanced pass pipeline over one lowered body.
pub fn optimize(body: &mut IrBody, n_perm: u16) {
    const_fold(&mut body.code, n_perm);
    reachability(&mut body.code);
    dead_stores(&mut body.code, n_perm);
    strip_scope_ops(&mut body.code);
    compact(&mut body.code);
    fallthrough_jumps(&mut body.code);
}

/// After compaction, a jump whose target is the very next instruction —
/// typically left behind by a branch folded on a known condition — is a
/// no-op; drop it and re-compact.
fn fallthrough_jumps(code: &mut Vec<Instr>) {
    let mut changed = false;
    for (i, ins) in code.iter_mut().enumerate() {
        if let Instr::Jump { t } = ins {
            if *t as usize == i + 1 {
                *ins = Instr::Nop;
                changed = true;
            }
        }
    }
    if changed {
        compact(code);
    }
}

// ---- constant folding -------------------------------------------------

/// Fold constants within basic blocks and simplify conditional jumps on
/// known conditions. Register knowledge is dropped at every jump target
/// (block join) and across instructions that can write registers by
/// name (tree escapes clobber named slots; calls clobber only their
/// destination — callees cannot reach the caller's frame).
fn const_fold(code: &mut [Instr], n_perm: u16) {
    let mut targets = HashSet::new();
    for ins in code.iter() {
        if let Instr::Jump { t } | Instr::JumpIfFalse { t, .. } | Instr::JumpIfTrue { t, .. } = ins
        {
            targets.insert(*t);
        }
    }
    let mut known: HashMap<Reg, Scalar> = HashMap::new();
    for (i, ins) in code.iter_mut().enumerate() {
        if targets.contains(&(i as u32)) {
            known.clear();
        }
        // (dst, folded value): Some(v) rewrites the instruction to a
        // `Const` and records it; None-valued entries just invalidate.
        let mut fold: Option<(Reg, Option<Scalar>)> = None;
        match &*ins {
            Instr::Const { dst, v } => {
                known.insert(*dst, *v);
            }
            Instr::Copy { dst, src } => fold = Some((*dst, known.get(src).copied())),
            Instr::Bin { op, dst, a, b } => {
                let v = match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => scalar_binary(*op, x, y).ok(),
                    _ => None,
                };
                fold = Some((*dst, v));
            }
            Instr::Un { op, dst, a } => {
                fold = Some((*dst, known.get(a).map(|&x| scalar_unary(*op, x))));
            }
            Instr::Truthy { dst, src } => {
                fold = Some((*dst, known.get(src).map(|x| Scalar::Int(x.as_bool() as i64))));
            }
            Instr::Power2 { dst, a } => {
                fold =
                    Some((*dst, known.get(a).map(|x| Scalar::Int(stdlib::power2(x.as_int())))));
            }
            Instr::Abs { dst, a } => {
                fold = Some((*dst, known.get(a).map(|&x| fold_abs(x))));
            }
            Instr::MinMax { dst, a, b, is_min } => {
                let v = match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => Some(fold_minmax(x, y, *is_min)),
                    _ => None,
                };
                fold = Some((*dst, v));
            }
            Instr::StoreSlot { slot, src, float } => {
                let ty = if *float { ElemType::Float } else { ElemType::Int };
                match known.get(src).copied() {
                    Some(v) => {
                        known.insert(*slot, coerce_scalar(v, ty));
                    }
                    None => {
                        known.remove(slot);
                    }
                }
            }
            Instr::LoadGlobal { dst, .. } | Instr::Rand { dst } | Instr::Call { dst, .. } => {
                known.remove(dst);
            }
            Instr::StoreGlobal { .. } | Instr::SetSpan { .. } => {}
            Instr::IterInit { slot } | Instr::IterCheck { slot, .. } => {
                known.remove(slot);
            }
            Instr::JumpIfFalse { c, t } => {
                let t = *t;
                if let Some(v) = known.get(c) {
                    if v.as_bool() {
                        *ins = Instr::Nop;
                    } else {
                        *ins = Instr::Jump { t };
                        known.clear();
                    }
                }
            }
            Instr::JumpIfTrue { c, t } => {
                let t = *t;
                if let Some(v) = known.get(c) {
                    if v.as_bool() {
                        *ins = Instr::Jump { t };
                        known.clear();
                    } else {
                        *ins = Instr::Nop;
                    }
                }
            }
            Instr::Jump { .. } | Instr::Ret { .. } => known.clear(),
            Instr::EvalExpr { dst, .. } => {
                let dst = *dst;
                known.retain(|&r, _| r >= n_perm);
                known.remove(&dst);
            }
            Instr::EvalEffect { .. } | Instr::Tree { .. } => {
                known.retain(|&r, _| r >= n_perm);
            }
            Instr::EnterScope | Instr::ExitScopes { .. } | Instr::BindName { .. } | Instr::Nop => {
            }
        }
        match fold {
            Some((dst, Some(v))) => {
                *ins = Instr::Const { dst, v };
                known.insert(dst, v);
            }
            Some((dst, None)) => {
                known.remove(&dst);
            }
            None => {}
        }
    }
}

/// `abs` on a known scalar, matching the tree-walker exactly.
fn fold_abs(s: Scalar) -> Scalar {
    match s {
        Scalar::Int(x) => Scalar::Int(x.wrapping_abs()),
        Scalar::Float(x) => Scalar::Float(x.abs()),
        Scalar::Bool(b) => Scalar::Int(b as i64),
    }
}

/// `min`/`max` on known scalars, with the tree-walker's float promotion.
fn fold_minmax(a: Scalar, b: Scalar, is_min: bool) -> Scalar {
    if a.elem_type() == ElemType::Float || b.elem_type() == ElemType::Float {
        let (x, y) = (a.as_float(), b.as_float());
        Scalar::Float(if is_min { x.min(y) } else { x.max(y) })
    } else {
        let (x, y) = (a.as_int(), b.as_int());
        Scalar::Int(if is_min { x.min(y) } else { x.max(y) })
    }
}

// ---- dead code --------------------------------------------------------

/// Nop out instructions no path from the entry reaches.
fn reachability(code: &mut [Instr]) {
    if code.is_empty() {
        return;
    }
    let mut seen = vec![false; code.len()];
    let mut work = VecDeque::from([0usize]);
    while let Some(i) = work.pop_front() {
        if i >= code.len() || seen[i] {
            continue;
        }
        seen[i] = true;
        match &code[i] {
            Instr::Jump { t } => work.push_back(*t as usize),
            Instr::JumpIfFalse { t, .. } | Instr::JumpIfTrue { t, .. } => {
                work.push_back(i + 1);
                work.push_back(*t as usize);
            }
            Instr::Ret { .. } => {}
            _ => work.push_back(i + 1),
        }
    }
    for (i, ins) in code.iter_mut().enumerate() {
        if !seen[i] {
            *ins = Instr::Nop;
        }
    }
}

/// Remove pure writes to temporaries that are never read. Named slots
/// (`< n_perm`) are exempt — tree escapes read them by name. Iterated to
/// a fixpoint so chains of dead temporaries collapse.
fn dead_stores(code: &mut [Instr], n_perm: u16) {
    loop {
        let mut read = HashSet::new();
        for ins in code.iter() {
            match ins {
                Instr::Copy { src, .. } | Instr::Truthy { src, .. } => {
                    read.insert(*src);
                }
                Instr::Bin { a, b, .. } | Instr::MinMax { a, b, .. } => {
                    read.insert(*a);
                    read.insert(*b);
                }
                Instr::Un { a, .. } | Instr::Power2 { a, .. } | Instr::Abs { a, .. } => {
                    read.insert(*a);
                }
                Instr::StoreSlot { src, .. } | Instr::StoreGlobal { src, .. } => {
                    read.insert(*src);
                }
                Instr::JumpIfFalse { c, .. } | Instr::JumpIfTrue { c, .. } => {
                    read.insert(*c);
                }
                Instr::IterCheck { slot, .. } => {
                    read.insert(*slot);
                }
                Instr::Call { args, .. } => read.extend(args.iter().copied()),
                Instr::Ret { src: Some(r) } => {
                    read.insert(*r);
                }
                _ => {}
            }
        }
        let mut changed = false;
        for ins in code.iter_mut() {
            let dst = match ins {
                Instr::Const { dst, .. }
                | Instr::Copy { dst, .. }
                | Instr::Un { dst, .. }
                | Instr::Truthy { dst, .. }
                | Instr::LoadGlobal { dst, .. }
                | Instr::Power2 { dst, .. }
                | Instr::Abs { dst, .. }
                | Instr::MinMax { dst, .. } => *dst,
                // Div/Mod can trap; Rand consumes the seed stream.
                Instr::Bin { op, dst, .. }
                    if !matches!(op, BinaryOp::Div | BinaryOp::Mod) =>
                {
                    *dst
                }
                _ => continue,
            };
            if dst >= n_perm && !read.contains(&dst) {
                *ins = Instr::Nop;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// A function with no tree escapes never consults its runtime scopes:
/// drop the scope bookkeeping entirely.
fn strip_scope_ops(code: &mut [Instr]) {
    let has_escapes = code
        .iter()
        .any(|i| matches!(i, Instr::Tree { .. } | Instr::EvalExpr { .. } | Instr::EvalEffect { .. }));
    if has_escapes {
        return;
    }
    for ins in code.iter_mut() {
        if matches!(ins, Instr::EnterScope | Instr::ExitScopes { .. } | Instr::BindName { .. }) {
            *ins = Instr::Nop;
        }
    }
}

/// Drop `Nop`s and remap jump targets. A target that pointed at a `Nop`
/// lands on the next kept instruction.
fn compact(code: &mut Vec<Instr>) {
    let mut map = vec![0u32; code.len() + 1];
    let mut kept = 0u32;
    for (i, ins) in code.iter().enumerate() {
        map[i] = kept;
        if !matches!(ins, Instr::Nop) {
            kept += 1;
        }
    }
    map[code.len()] = kept;
    let old = std::mem::take(code);
    code.reserve(kept as usize);
    for mut ins in old {
        if matches!(ins, Instr::Nop) {
            continue;
        }
        if let Instr::Jump { t } | Instr::JumpIfFalse { t, .. } | Instr::JumpIfTrue { t, .. } =
            &mut ins
        {
            *t = map[*t as usize];
        }
        code.push(ins);
    }
}

// ---- aggressive AST rewrites ------------------------------------------

/// Rewrite parallel constructs before lowering ([`crate::exec::IrOpt::Aggressive`]
/// only): drop `par` arms with literally-false predicates whose bodies
/// have no front-end effects (dead-context elimination), strip
/// literally-true predicates, and merge adjacent compatible `par`
/// statements over the same index sets (communication coalescing).
pub(crate) fn aggressive_rewrite(f: &mut FuncDef) {
    rewrite_block(&mut f.body);
}

fn rewrite_block(b: &mut Block) {
    for s in &mut b.stmts {
        rewrite_stmt(s);
    }
    coalesce(&mut b.stmts);
}

fn rewrite_stmt(s: &mut Stmt) {
    match s {
        Stmt::Block(b) => rewrite_block(b),
        Stmt::If { then_branch, else_branch, .. } => {
            rewrite_stmt(then_branch);
            if let Some(e) = else_branch {
                rewrite_stmt(e);
            }
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => rewrite_stmt(body),
        Stmt::Uc(uc) => {
            for arm in &mut uc.arms {
                rewrite_stmt(&mut arm.body);
            }
            if let Some(o) = &mut uc.others {
                rewrite_stmt(o);
            }
            rewrite_uc(uc);
            // Every arm eliminated and nothing left to mask: the whole
            // construct — space setup included — does no work.
            if uc.kind == UcKind::Par && uc.arms.is_empty() && uc.others.is_none() {
                *s = Stmt::Empty;
            }
        }
        _ => {}
    }
}

fn rewrite_uc(uc: &mut UcStmt) {
    if uc.kind != UcKind::Par {
        // `oneof` arm selection and `seq`/`solve` arm handling depend on
        // the arm list itself; leave them alone.
        return;
    }
    // Dead-context elimination: a literally-false predicate masks every
    // write in the arm body, so if the body also has no front-end
    // effects (calls, scalar assignments, declarations, control flow)
    // the whole arm — predicate broadcast included — is dead.
    uc.arms.retain(|arm| {
        match arm.pred.as_ref().and_then(lit_truth) {
            Some(false) => !droppable_stmt(&arm.body),
            _ => true,
        }
    });
    // A literally-true predicate is the full mask; with no `others`
    // clause (whose mask is the OR-complement of *predicated* arms) and
    // no `*` iteration (whose termination test ORs predicated arms'
    // masks) the predicate broadcast is pure overhead.
    if uc.others.is_none() && !uc.star {
        for arm in &mut uc.arms {
            if arm.pred.as_ref().and_then(lit_truth) == Some(true) {
                arm.pred = None;
            }
        }
    }
}

/// Merge `par (I) A; par (I) B;` into `par (I) { A-arms, B-arms }` when
/// the second statement's arms are unpredicated and neither has an
/// `others` clause or `*` iteration. `run_arms` evaluates all predicates
/// before any body, so appending predicate-free arms preserves the
/// exact evaluation order while saving a space push/pop.
fn coalesce(stmts: &mut Vec<Stmt>) {
    let mut i = 0;
    while i + 1 < stmts.len() {
        let can = match (&stmts[i], &stmts[i + 1]) {
            (Stmt::Uc(a), Stmt::Uc(b)) => {
                a.kind == UcKind::Par
                    && b.kind == UcKind::Par
                    && !a.star
                    && !b.star
                    && a.idxs == b.idxs
                    && a.others.is_none()
                    && b.others.is_none()
                    && b.arms.iter().all(|arm| arm.pred.is_none())
            }
            _ => false,
        };
        if can {
            let Stmt::Uc(b) = stmts.remove(i + 1) else { unreachable!() };
            let Stmt::Uc(a) = &mut stmts[i] else { unreachable!() };
            a.arms.extend(b.arms);
        } else {
            i += 1;
        }
    }
}

/// Truthiness of a predicate built purely from literals — no names, so
/// no shadowing or runtime-value concerns. Uses the runtime scalar
/// semantics verbatim.
fn lit_truth(e: &Expr) -> Option<bool> {
    lit_scalar(e).map(|s| s.as_bool())
}

fn lit_scalar(e: &Expr) -> Option<Scalar> {
    match e {
        Expr::IntLit(v, _) => Some(Scalar::Int(*v)),
        Expr::FloatLit(v, _) => Some(Scalar::Float(*v)),
        Expr::Inf(_) => Some(Scalar::Int(i64::MAX)),
        Expr::Unary { op, expr, .. } => Some(scalar_unary(*op, lit_scalar(expr)?)),
        Expr::Binary { op, lhs, rhs, .. } => {
            scalar_binary(*op, lit_scalar(lhs)?, lit_scalar(rhs)?).ok()
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            if lit_scalar(cond)?.as_bool() {
                lit_scalar(then_e)
            } else {
                lit_scalar(else_e)
            }
        }
        _ => None,
    }
}

/// Whether a masked-false arm body is free of front-end effects: only
/// blocks and expression statements, no calls (user calls and `rand()`
/// run unmasked on the front end), and assignments only through array
/// subscripts (scalar assignments are unmasked).
fn droppable_stmt(s: &Stmt) -> bool {
    match s {
        Stmt::Empty => true,
        Stmt::Block(b) => b.stmts.iter().all(droppable_stmt),
        Stmt::Expr(e) => droppable_expr(e),
        _ => false,
    }
}

fn droppable_expr(e: &Expr) -> bool {
    match e {
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::Inf(_) | Expr::Ident(..) => true,
        Expr::Index { subs, .. } => subs.iter().all(droppable_expr),
        Expr::Call { .. } => false,
        Expr::Unary { expr, .. } => droppable_expr(expr),
        Expr::Binary { lhs, rhs, .. } => droppable_expr(lhs) && droppable_expr(rhs),
        Expr::Ternary { cond, then_e, else_e, .. } => {
            droppable_expr(cond) && droppable_expr(then_e) && droppable_expr(else_e)
        }
        Expr::Assign { target, value, .. } => {
            matches!(target.as_ref(), Expr::Index { .. })
                && droppable_expr(target)
                && droppable_expr(value)
        }
        Expr::Reduce(r) => {
            r.arms.iter().all(|(p, o)| {
                p.as_ref().is_none_or(droppable_expr) && droppable_expr(o)
            }) && r.others.as_ref().is_none_or(droppable_expr)
        }
    }
}
