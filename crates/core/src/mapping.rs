//! The map section: data mappings (§4 of the paper).
//!
//! A UC program may re-layout its arrays on the machine without touching
//! program logic. Three mapping classes exist:
//!
//! * **permute** — cyclically re-position the elements of an array
//!   relative to another so that elements accessed together are stored on
//!   a common processor. `permute (I) b[i+1] :- a[i];` stores `b[i+1]`
//!   where `a[i]` lives, i.e. shifts `b`'s storage by −1 (toroidally).
//! * **fold** — fold an axis in half so `a[i]` and `a[N-1-i]` share a
//!   processor: `fold (I) a[i] :- a[N-1-i];`.
//! * **copy** — replicate an array along an extra leading axis to reduce
//!   broadcasts: `copy (J) a[i] :- a[i];` keeps `|J|` replicas; reads use
//!   a local replica, writes update all of them.
//!
//! The executor consults [`ArrayMapping`] on every array access: reads and
//! writes are transformed exactly like the paper's source-to-source
//! subscript rewriting, so **mappings never change program results** —
//! only where elements live and therefore what communication costs.

use crate::ast::{BinaryOp, Expr, MapDecl, MapKind};
use crate::diag::Diagnostics;
use crate::sema::Checked;

/// How one array is laid out on the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayMapping {
    /// The compiler's default: element `k` of every conforming array on
    /// processor `k` (row-major for multi-dimensional arrays).
    Default,
    /// Per-dimension cyclic storage shift: logical element `v` of
    /// dimension `d` is stored at `(v - offsets[d]).rem_euclid(extent_d)`.
    Permute { offsets: Vec<i64> },
    /// Axis `axis` folded at the midpoint: logical `v` is stored at
    /// `2*min(v, n-1-v) + (v >= ceil(n/2))` so `v` and `n-1-v` are
    /// adjacent (same physical processor at VP-ratio ≥ 2).
    Fold { axis: usize },
    /// `replicas` copies along an extra leading storage axis.
    Copy { replicas: usize },
}

impl ArrayMapping {
    /// Shape of the backing storage for a logical shape.
    pub fn storage_shape(&self, logical: &[usize]) -> Vec<usize> {
        match self {
            ArrayMapping::Copy { replicas } => {
                let mut s = Vec::with_capacity(logical.len() + 1);
                s.push(*replicas);
                s.extend_from_slice(logical);
                s
            }
            _ => logical.to_vec(),
        }
    }

    /// Per-dimension logical→storage coordinate transform (for the
    /// non-copy mappings; copy keeps coordinates and adds a replica axis).
    pub fn storage_coord(&self, logical: &[usize], shape: &[usize]) -> Vec<usize> {
        match self {
            ArrayMapping::Default | ArrayMapping::Copy { .. } => logical.to_vec(),
            ArrayMapping::Permute { offsets } => logical
                .iter()
                .zip(offsets)
                .zip(shape)
                .map(|((&v, &o), &n)| (v as i64 - o).rem_euclid(n as i64) as usize)
                .collect(),
            ArrayMapping::Fold { axis } => {
                let mut out = logical.to_vec();
                let n = shape[*axis];
                let v = logical[*axis];
                let mirrored = (n - 1).saturating_sub(v);
                let low = v.min(mirrored);
                out[*axis] = 2 * low + usize::from(v >= n.div_ceil(2));
                out
            }
        }
    }

    /// Linear storage address of a logical linear index (row-major on the
    /// storage shape). For `Copy`, the address of replica `r`.
    pub fn storage_index(&self, logical_linear: usize, shape: &[usize], replica: usize) -> usize {
        let coord = unflatten(logical_linear, shape);
        let sc = self.storage_coord(&coord, shape);
        let base = flatten(&sc, shape);
        match self {
            ArrayMapping::Copy { .. } => {
                let size: usize = shape.iter().product();
                replica * size + base
            }
            _ => base,
        }
    }

    /// Number of replicas (1 for non-copy mappings).
    pub fn replicas(&self) -> usize {
        match self {
            ArrayMapping::Copy { replicas } => *replicas,
            _ => 1,
        }
    }
}

/// Row-major flatten.
pub fn flatten(coord: &[usize], shape: &[usize]) -> usize {
    let mut idx = 0;
    for (c, n) in coord.iter().zip(shape) {
        idx = idx * n + c;
    }
    idx
}

/// Row-major unflatten.
pub fn unflatten(mut idx: usize, shape: &[usize]) -> Vec<usize> {
    let mut coord = vec![0; shape.len()];
    for d in (0..shape.len()).rev() {
        coord[d] = idx % shape[d];
        idx /= shape[d];
    }
    coord
}

/// Interpret the map section of a checked program: produce the mapping for
/// every mapped array. Unmapped arrays default to [`ArrayMapping::Default`].
pub fn interpret_maps(
    checked: &Checked,
    diags: &mut Diagnostics,
) -> Vec<(String, ArrayMapping)> {
    let mut out = Vec::new();
    for decl in &checked.maps {
        match interpret_one(checked, decl) {
            Ok(m) => out.push((decl.target.array.clone(), m)),
            Err(msg) => diags.error(decl.span, msg),
        }
    }
    out
}

fn interpret_one(checked: &Checked, decl: &MapDecl) -> Result<ArrayMapping, String> {
    let target_info = checked
        .arrays
        .get(&decl.target.array)
        .ok_or_else(|| format!("unknown array `{}`", decl.target.array))?;
    match decl.kind {
        MapKind::Permute => {
            // `permute (I) b[i+c] :- a[i+c'];` per dimension:
            // offset_d = c_target - c_source.
            let mut offsets = Vec::new();
            for (t, s) in decl.target.subs.iter().zip(&decl.source.subs) {
                let (te, tc) = elem_plus_const(t)
                    .ok_or("permute patterns must be `elem + constant` per dimension")?;
                let (se, sc) = elem_plus_const(s)
                    .ok_or("permute patterns must be `elem + constant` per dimension")?;
                if te != se {
                    return Err(format!(
                        "permute dimensions must use the same element (found `{te}` vs `{se}`)"
                    ));
                }
                offsets.push(
                    tc.checked_sub(sc)
                        .ok_or("permute offset overflows a 64-bit integer")?,
                );
            }
            if offsets.len() != target_info.shape.len() {
                return Err("permute pattern rank does not match the array".into());
            }
            Ok(ArrayMapping::Permute { offsets })
        }
        MapKind::Fold => {
            // `fold (I) a[i] :- a[N-1-i];` — find the reflected axis.
            for (d, (t, s)) in decl.target.subs.iter().zip(&decl.source.subs).enumerate() {
                let Some((te, 0)) = elem_plus_const(t) else { continue };
                if let Some((se, c)) = const_minus_elem(s, &checked.consts) {
                    if te == se && c == target_info.shape[d] as i64 - 1 {
                        return Ok(ArrayMapping::Fold { axis: d });
                    }
                }
            }
            Err("fold expects a pattern like `a[i] :- a[N-1-i]`".into())
        }
        MapKind::Copy => {
            // `copy (J) a[i] :- a[i];` — replicate over the sets named in
            // the decl whose element does not appear in the pattern.
            let mut replicas = 1usize;
            for set in &decl.idxs {
                let info = checked
                    .index_set(set)
                    .ok_or_else(|| format!("unknown index set `{set}` in copy mapping"))?;
                let used = decl
                    .target
                    .subs
                    .iter()
                    .any(|e| matches!(elem_plus_const(e), Some((n, _)) if n == info.elem));
                if !used {
                    replicas = replicas
                        .checked_mul(info.elements.len())
                        .ok_or("copy mapping replica count overflows")?;
                }
            }
            if replicas <= 1 {
                return Err(
                    "copy mapping needs at least one replication set not used in the pattern"
                        .into(),
                );
            }
            Ok(ArrayMapping::Copy { replicas })
        }
    }
}

/// Match `elem`, `elem + c`, `elem - c` returning `(elem, c)`.
fn elem_plus_const(e: &Expr) -> Option<(String, i64)> {
    match e {
        Expr::Ident(n, _) => Some((n.clone(), 0)),
        Expr::Binary { op: BinaryOp::Add, lhs, rhs, .. } => {
            if let (Expr::Ident(n, _), Expr::IntLit(c, _)) = (lhs.as_ref(), rhs.as_ref()) {
                Some((n.clone(), *c))
            } else if let (Expr::IntLit(c, _), Expr::Ident(n, _)) = (lhs.as_ref(), rhs.as_ref()) {
                Some((n.clone(), *c))
            } else {
                None
            }
        }
        Expr::Binary { op: BinaryOp::Sub, lhs, rhs, .. } => {
            if let (Expr::Ident(n, _), Expr::IntLit(c, _)) = (lhs.as_ref(), rhs.as_ref()) {
                // checked: `elem - (i64::MIN)` must not abort the compiler.
                Some((n.clone(), c.checked_neg()?))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Match `c - elem` (possibly written `N-1-i`, i.e. `(N-1) - i` after
/// constant folding of the left side) returning `(elem, c)`.
fn const_minus_elem(
    e: &Expr,
    consts: &std::collections::HashMap<String, i64>,
) -> Option<(String, i64)> {
    if let Expr::Binary { op: BinaryOp::Sub, lhs, rhs, .. } = e {
        if let Expr::Ident(n, _) = rhs.as_ref() {
            if !consts.contains_key(n) {
                if let Some(c) = fold_const(lhs, consts) {
                    return Some((n.clone(), c));
                }
            }
        }
    }
    None
}

/// Fold a constant subexpression of literals, `#define` names and +/-/*.
fn fold_const(e: &Expr, consts: &std::collections::HashMap<String, i64>) -> Option<i64> {
    match e {
        Expr::IntLit(v, _) => Some(*v),
        Expr::Ident(n, _) => consts.get(n).copied(),
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = fold_const(lhs, consts)?;
            let r = fold_const(rhs, consts)?;
            // checked: hostile `#define` constants must fail the pattern
            // match, not overflow (the build runs with overflow-checks).
            match op {
                BinaryOp::Add => l.checked_add(r),
                BinaryOp::Sub => l.checked_sub(r),
                BinaryOp::Mul => l.checked_mul(r),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn maps_for(src: &str) -> Vec<(String, ArrayMapping)> {
        let mut d = Diagnostics::default();
        let unit = parse(src, &mut d).expect("parse");
        let checked = check(unit, &mut d).expect("sema");
        let maps = interpret_maps(&checked, &mut d);
        assert!(!d.has_errors(), "{d}");
        maps
    }

    #[test]
    fn flatten_roundtrip() {
        let shape = [3usize, 4, 5];
        for idx in 0..60 {
            assert_eq!(flatten(&unflatten(idx, &shape), &shape), idx);
        }
    }

    #[test]
    fn permute_offsets() {
        let maps = maps_for(
            "#define N 8\nindex_set I:i = {0..N-1};\nint a[N], b[N];\nmap (I) { permute (I) b[i+1] :- a[i]; }\nmain() {}",
        );
        assert_eq!(maps, vec![("b".to_string(), ArrayMapping::Permute { offsets: vec![1] })]);
    }

    #[test]
    fn permute_storage_addresses() {
        let m = ArrayMapping::Permute { offsets: vec![1] };
        let shape = [8usize];
        // logical 1 stored at 0 (shift by -1), logical 0 wraps to 7.
        assert_eq!(m.storage_index(1, &shape, 0), 0);
        assert_eq!(m.storage_index(0, &shape, 0), 7);
        assert_eq!(m.storage_index(7, &shape, 0), 6);
        assert_eq!(m.storage_shape(&shape), vec![8]);
        // Storage is a permutation.
        let mut seen: Vec<usize> = (0..8).map(|i| m.storage_index(i, &shape, 0)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn fold_pairs_mirrored_elements() {
        let maps = maps_for(
            "#define N 8\nindex_set I:i = {0..N-1};\nint a[N];\nmap (I) { fold (I) a[i] :- a[N-1-i]; }\nmain() {}",
        );
        let m = &maps[0].1;
        assert_eq!(*m, ArrayMapping::Fold { axis: 0 });
        let shape = [8usize];
        // i and N-1-i are adjacent in storage.
        for i in 0..4usize {
            let lo = m.storage_index(i, &shape, 0);
            let hi = m.storage_index(7 - i, &shape, 0);
            assert_eq!(lo + 1, hi, "fold must pair {i} with {}", 7 - i);
        }
        // Fold is a permutation.
        let mut seen: Vec<usize> = (0..8).map(|i| m.storage_index(i, &shape, 0)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn copy_replication() {
        let maps = maps_for(
            "#define N 4\nindex_set I:i = {0..N-1}, J:j = {0..2};\nint a[N];\nmap (I) { copy (J) a[i] :- a[i]; }\nmain() {}",
        );
        let m = &maps[0].1;
        assert_eq!(*m, ArrayMapping::Copy { replicas: 3 });
        assert_eq!(m.storage_shape(&[4]), vec![3, 4]);
        assert_eq!(m.storage_index(2, &[4], 0), 2);
        assert_eq!(m.storage_index(2, &[4], 1), 6);
        assert_eq!(m.storage_index(2, &[4], 2), 10);
        assert_eq!(m.replicas(), 3);
    }

    #[test]
    fn bad_patterns_are_errors() {
        let mut d = Diagnostics::default();
        let unit = parse(
            "#define N 4\nindex_set I:i = {0..N-1};\nint a[N], b[N];\nmap (I) { permute (I) b[i*2] :- a[i]; }\nmain() {}",
            &mut d,
        )
        .unwrap();
        let checked = check(unit, &mut d).unwrap();
        interpret_maps(&checked, &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn two_dim_permute() {
        let maps = maps_for(
            "#define N 4\nindex_set I:i = {0..N-1}, J:j = I;\nint a[N][N], b[N][N];\nmap (I,J) { permute (I,J) b[i][j+2] :- a[i][j]; }\nmain() {}",
        );
        assert_eq!(maps[0].1, ArrayMapping::Permute { offsets: vec![0, 2] });
    }
}
