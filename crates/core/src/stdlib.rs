//! UC built-in functions.
//!
//! The paper's example programs rely on a handful of helpers: `power2`
//! (Figures 2 and 3), `rand` (Figures 4 and 9), `ABS` (Figure 11) and
//! `swap` (the odd–even transposition sort of §3.7). They are implemented
//! as compiler builtins that work both on the front end and elementwise
//! inside parallel constructs.

use crate::sema::ExprTy;

/// Signature of a builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtin {
    pub name: &'static str,
    pub arity: usize,
    pub ret: ExprTy,
}

const BUILTINS: &[Builtin] = &[
    Builtin { name: "power2", arity: 1, ret: ExprTy::Int },
    Builtin { name: "rand", arity: 0, ret: ExprTy::Int },
    Builtin { name: "abs", arity: 1, ret: ExprTy::Int },
    Builtin { name: "ABS", arity: 1, ret: ExprTy::Int },
    Builtin { name: "min", arity: 2, ret: ExprTy::Int },
    Builtin { name: "max", arity: 2, ret: ExprTy::Int },
    Builtin { name: "swap", arity: 2, ret: ExprTy::Void },
];

/// Look up a builtin by name.
pub fn builtin(name: &str) -> Option<Builtin> {
    BUILTINS.iter().copied().find(|b| b.name == name)
}

/// `power2(k) = 2^k` on the front end (matches the paper's helper).
pub fn power2(k: i64) -> i64 {
    if (0..63).contains(&k) {
        1i64 << k
    } else if k < 0 {
        0
    } else {
        i64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(builtin("power2").unwrap().arity, 1);
        assert_eq!(builtin("rand").unwrap().arity, 0);
        assert_eq!(builtin("swap").unwrap().ret, ExprTy::Void);
        assert!(builtin("printf").is_none());
    }

    #[test]
    fn power2_values() {
        assert_eq!(power2(0), 1);
        assert_eq!(power2(5), 32);
        assert_eq!(power2(-1), 0);
        assert_eq!(power2(100), i64::MAX);
    }
}
