//! Compiler optimizations (§4: "code optimizations").
//!
//! The peephole pass implemented here is constant folding over the AST
//! (the paper lists constant folding and common sub-expression detection
//! among the standard code optimizations of its prototype). The other two
//! optimization classes — *processor optimization* and *communication
//! cost optimization* — live where they act: the executor's reduction
//! engine ([`crate::exec`], `try_procopt`) and the access-path classifier
//! plus map section ([`crate::exec`]'s access module and
//! [`crate::mapping`]).

use crate::ast::*;

/// Fold constant subexpressions in place across a whole unit.
pub fn fold_unit(unit: &mut Unit) {
    for item in &mut unit.items {
        match item {
            Item::Func(f) => fold_block(&mut f.body),
            Item::Var(v) => {
                if let Some(e) = &mut v.init {
                    fold_expr(e);
                }
                for d in &mut v.dims {
                    fold_expr(d);
                }
            }
            _ => {}
        }
    }
}

fn fold_block(b: &mut Block) {
    for s in &mut b.stmts {
        fold_stmt(s);
    }
}

fn fold_stmt(s: &mut Stmt) {
    match s {
        Stmt::Expr(e) => fold_expr(e),
        Stmt::Decl(v) => {
            if let Some(e) = &mut v.init {
                fold_expr(e);
            }
        }
        Stmt::Block(b) => fold_block(b),
        Stmt::If { cond, then_branch, else_branch, .. } => {
            fold_expr(cond);
            fold_stmt(then_branch);
            if let Some(e) = else_branch {
                fold_stmt(e);
            }
        }
        Stmt::While { cond, body, .. } => {
            fold_expr(cond);
            fold_stmt(body);
        }
        Stmt::For { init, cond, step, body, .. } => {
            for e in [init, cond, step].into_iter().flatten() {
                fold_expr(e);
            }
            fold_stmt(body);
        }
        Stmt::Return(Some(e), _) => fold_expr(e),
        Stmt::Uc(uc) => {
            for arm in &mut uc.arms {
                if let Some(p) = &mut arm.pred {
                    fold_expr(p);
                }
                fold_stmt(&mut arm.body);
            }
            if let Some(o) = &mut uc.others {
                fold_stmt(o);
            }
        }
        _ => {}
    }
}

/// Fold one expression tree bottom-up.
pub fn fold_expr(e: &mut Expr) {
    match e {
        Expr::Unary { op, expr, span } => {
            fold_expr(expr);
            if let Expr::IntLit(v, _) = **expr {
                let folded = match op {
                    UnaryOp::Neg => v.wrapping_neg(),
                    UnaryOp::Not => (v == 0) as i64,
                    UnaryOp::BitNot => !v,
                };
                *e = Expr::IntLit(folded, *span);
            } else if let (UnaryOp::Neg, Expr::FloatLit(v, _)) = (&op, &**expr) {
                *e = Expr::FloatLit(-v, *span);
            }
        }
        Expr::Binary { op, lhs, rhs, span } => {
            fold_expr(lhs);
            fold_expr(rhs);
            if let (Expr::IntLit(a, _), Expr::IntLit(b, _)) = (&**lhs, &**rhs) {
                use BinaryOp::*;
                let v = match op {
                    Add => Some(a.wrapping_add(*b)),
                    Sub => Some(a.wrapping_sub(*b)),
                    Mul => Some(a.wrapping_mul(*b)),
                    Div if *b != 0 => Some(a.wrapping_div(*b)),
                    Mod if *b != 0 => Some(a.wrapping_rem(*b)),
                    Shl => Some(a.wrapping_shl(*b as u32)),
                    Shr => Some(a.wrapping_shr(*b as u32)),
                    Lt => Some((a < b) as i64),
                    Le => Some((a <= b) as i64),
                    Gt => Some((a > b) as i64),
                    Ge => Some((a >= b) as i64),
                    Eq => Some((a == b) as i64),
                    Ne => Some((a != b) as i64),
                    BitAnd => Some(a & b),
                    BitXor => Some(a ^ b),
                    BitOr => Some(a | b),
                    LogAnd => Some(((*a != 0) && (*b != 0)) as i64),
                    LogOr => Some(((*a != 0) || (*b != 0)) as i64),
                    _ => None,
                };
                if let Some(v) = v {
                    *e = Expr::IntLit(v, *span);
                    return;
                }
            }
            // Identity simplifications: x+0, x*1, x*0, 0+x, 1*x.
            use BinaryOp::*;
            match (&op, &**lhs, &**rhs) {
                (Add, _, Expr::IntLit(0, _)) | (Sub, _, Expr::IntLit(0, _)) => {
                    *e = (**lhs).clone();
                }
                (Add, Expr::IntLit(0, _), _) => {
                    *e = (**rhs).clone();
                }
                (Mul, _, Expr::IntLit(1, _)) | (Div, _, Expr::IntLit(1, _)) => {
                    *e = (**lhs).clone();
                }
                (Mul, Expr::IntLit(1, _), _) => {
                    *e = (**rhs).clone();
                }
                (Mul, Expr::IntLit(0, _), _) | (Mul, _, Expr::IntLit(0, _)) => {
                    *e = Expr::IntLit(0, *span);
                }
                _ => {}
            }
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            fold_expr(cond);
            fold_expr(then_e);
            fold_expr(else_e);
            if let Expr::IntLit(c, _) = **cond {
                *e = if c != 0 { (**then_e).clone() } else { (**else_e).clone() };
            }
        }
        Expr::Assign { target, value, .. } => {
            fold_expr(target);
            fold_expr(value);
        }
        Expr::Index { subs, .. } => {
            for s in subs {
                fold_expr(s);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                fold_expr(a);
            }
        }
        Expr::Reduce(r) => {
            for (p, o) in &mut r.arms {
                if let Some(p) = p {
                    fold_expr(p);
                }
                fold_expr(o);
            }
            if let Some(o) = &mut r.others {
                fold_expr(o);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn int(v: i64) -> Expr {
        Expr::IntLit(v, Span::default())
    }

    fn bin(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r), span: Span::default() }
    }

    #[test]
    fn folds_arithmetic() {
        let mut e = bin(BinaryOp::Add, int(2), bin(BinaryOp::Mul, int(3), int(4)));
        fold_expr(&mut e);
        assert_eq!(e, int(14));
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let mut e = bin(BinaryOp::LogAnd, bin(BinaryOp::Lt, int(1), int(2)), int(1));
        fold_expr(&mut e);
        assert_eq!(e, int(1));
    }

    #[test]
    fn folds_unary_and_ternary() {
        let mut e = Expr::Ternary {
            cond: Box::new(bin(BinaryOp::Eq, int(1), int(1))),
            then_e: Box::new(int(10)),
            else_e: Box::new(int(20)),
            span: Span::default(),
        };
        fold_expr(&mut e);
        assert_eq!(e, int(10));
        let mut e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(int(5)),
            span: Span::default(),
        };
        fold_expr(&mut e);
        assert_eq!(e, int(-5));
    }

    #[test]
    fn identities() {
        let x = Expr::Ident("x".into(), Span::default());
        let mut e = bin(BinaryOp::Add, x.clone(), int(0));
        fold_expr(&mut e);
        assert_eq!(e, x);
        let mut e = bin(BinaryOp::Mul, x.clone(), int(0));
        fold_expr(&mut e);
        assert_eq!(e, int(0));
        let mut e = bin(BinaryOp::Mul, int(1), x.clone());
        fold_expr(&mut e);
        assert_eq!(e, x);
    }

    #[test]
    fn no_fold_div_by_zero() {
        let mut e = bin(BinaryOp::Div, int(1), int(0));
        fold_expr(&mut e);
        assert!(matches!(e, Expr::Binary { .. }), "division by zero must not fold");
    }
}
