//! Semantic analysis.
//!
//! Validates a parsed [`Unit`] and produces a [`Checked`] program:
//!
//! * `#define` constants and index-set definitions are evaluated (index
//!   sets are *constant data items* in UC — §3.1);
//! * array shapes are computed from constant expressions;
//! * every identifier is resolved against the scope rules of the paper,
//!   including index-element shadowing in nested constructs (§3.4);
//! * UC restrictions are enforced (no `goto` — already a parse error; an
//!   index element is read-only; `solve` arms must be proper assignments);
//! * expressions get basic int/float/bool checking with C-style coercion.

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::span::Span;
use crate::stdlib;

/// Compile-time cap on the elements a constant index-set range may
/// materialise. Mirrors `ExecLimits::max_index_set` in the executor.
pub const MAX_CONST_INDEX_SET: u64 = 1 << 22;

/// An evaluated index set: ordered constant integers plus the element
/// identifier used to range over it.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSetInfo {
    pub elem: String,
    pub elements: Vec<i64>,
}

/// A checked global array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    pub ty: Type,
    pub shape: Vec<usize>,
}

/// The output of semantic analysis, consumed by the executor, the
/// optimizer and the C* emitter.
#[derive(Debug, Clone)]
pub struct Checked {
    pub unit: Unit,
    pub consts: HashMap<String, i64>,
    /// Global index sets in declaration order.
    pub index_sets: Vec<(String, IndexSetInfo)>,
    pub arrays: HashMap<String, ArrayInfo>,
    /// Global scalar variables (type, constant initializer if any).
    pub scalars: HashMap<String, (Type, Option<i64>)>,
    pub funcs: HashMap<String, FuncDef>,
    pub maps: Vec<MapDecl>,
}

impl Checked {
    pub fn index_set(&self, name: &str) -> Option<&IndexSetInfo> {
        self.index_sets.iter().rev().find(|(n, _)| n == name).map(|(_, i)| i)
    }

    /// Function definitions in source order (the `funcs` map is keyed for
    /// lookup; analysis passes walk this for deterministic output).
    pub fn funcs_in_order(&self) -> impl Iterator<Item = &FuncDef> {
        self.unit.items.iter().filter_map(|it| match it {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }
}

/// Evaluate a compile-time constant integer expression against a constant
/// table (`#define`s). Returns the span of the first non-constant
/// subexpression on failure. Exported for the static-analysis passes,
/// which use the same notion of "front-end constant" as sema.
pub fn const_eval(e: &Expr, consts: &HashMap<String, i64>) -> Result<i64, Span> {
    match e {
        Expr::IntLit(v, _) => Ok(*v),
        Expr::Inf(_) => Ok(i64::MAX),
        Expr::Ident(name, span) => consts.get(name).copied().ok_or(*span),
        Expr::Unary { op, expr, .. } => {
            let v = const_eval(expr, consts)?;
            Ok(match op {
                UnaryOp::Neg => -v,
                UnaryOp::Not => (v == 0) as i64,
                UnaryOp::BitNot => !v,
            })
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let l = const_eval(lhs, consts)?;
            let r = const_eval(rhs, consts)?;
            use BinaryOp::*;
            let v = match op {
                Add => l.wrapping_add(r),
                Sub => l.wrapping_sub(r),
                Mul => l.wrapping_mul(r),
                Div => {
                    if r == 0 {
                        return Err(*span);
                    }
                    l / r
                }
                Mod => {
                    if r == 0 {
                        return Err(*span);
                    }
                    l % r
                }
                Shl => l.wrapping_shl(r as u32),
                Shr => l.wrapping_shr(r as u32),
                Lt => (l < r) as i64,
                Le => (l <= r) as i64,
                Gt => (l > r) as i64,
                Ge => (l >= r) as i64,
                Eq => (l == r) as i64,
                Ne => (l != r) as i64,
                BitAnd => l & r,
                BitXor => l ^ r,
                BitOr => l | r,
                LogAnd => ((l != 0) && (r != 0)) as i64,
                LogOr => ((l != 0) || (r != 0)) as i64,
            };
            Ok(v)
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            let c = const_eval(cond, consts)?;
            if c != 0 {
                const_eval(then_e, consts)
            } else {
                const_eval(else_e, consts)
            }
        }
        other => Err(other.span()),
    }
}

/// Run semantic analysis. Errors are recorded in `diags`; returns `None`
/// if any were produced.
pub fn check(unit: Unit, diags: &mut Diagnostics) -> Option<Checked> {
    let mut cx = Checker {
        diags,
        consts: HashMap::new(),
        index_sets: Vec::new(),
        arrays: HashMap::new(),
        scalars: HashMap::new(),
        funcs: HashMap::new(),
        maps: Vec::new(),
        scopes: Vec::new(),
    };
    cx.run(&unit);
    if cx.diags.has_errors() {
        None
    } else {
        Some(Checked {
            unit,
            consts: cx.consts,
            index_sets: cx.index_sets,
            arrays: cx.arrays,
            scalars: cx.scalars,
            funcs: cx.funcs,
            maps: cx.maps,
        })
    }
}

/// What a name means in the current scope.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    /// A construct's index element (read-only integer).
    IndexElem,
    /// A scalar variable of the given type.
    Scalar(Type),
    /// A local array (inside a par body) or function-local array.
    Array(Type, usize),
    /// A locally declared index set.
    LocalIndexSet(IndexSetInfo),
}

struct Checker<'a> {
    diags: &'a mut Diagnostics,
    consts: HashMap<String, i64>,
    index_sets: Vec<(String, IndexSetInfo)>,
    arrays: HashMap<String, ArrayInfo>,
    scalars: HashMap<String, (Type, Option<i64>)>,
    funcs: HashMap<String, FuncDef>,
    maps: Vec<MapDecl>,
    /// Scope stack for function bodies: name → binding.
    scopes: Vec<HashMap<String, Binding>>,
}

/// Inferred expression type. `Bool` is C's 0/1 int but tracked so logical
/// contexts are understood; it freely coerces to `Int`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprTy {
    Int,
    Float,
    Bool,
    Void,
}

impl ExprTy {
    fn of(ty: Type) -> ExprTy {
        match ty {
            Type::Int => ExprTy::Int,
            Type::Float => ExprTy::Float,
            Type::Void => ExprTy::Void,
        }
    }

    fn is_numeric(self) -> bool {
        matches!(self, ExprTy::Int | ExprTy::Float | ExprTy::Bool)
    }

    fn int_like(self) -> bool {
        matches!(self, ExprTy::Int | ExprTy::Bool)
    }
}

impl<'a> Checker<'a> {
    fn run(&mut self, unit: &Unit) {
        for (name, value) in &unit.defines {
            if self.consts.insert(name.clone(), *value).is_some() {
                self.diags
                    .warning(Span::default(), format!("#define {name} redefined"));
            }
        }
        // First pass: collect all top-level declarations so functions can
        // reference globals declared after them.
        for item in &unit.items {
            match item {
                Item::IndexSets(defs) => {
                    for def in defs {
                        if let Some(info) = self.eval_index_set(def) {
                            self.index_sets.push((def.name.clone(), info));
                        }
                    }
                }
                Item::Var(v) => self.declare_global(v),
                Item::Func(f) => {
                    if self.funcs.insert(f.name.clone(), f.clone()).is_some() {
                        self.diags
                            .error(f.span, format!("function `{}` redefined", f.name));
                    }
                }
                Item::Map(_) => {}
            }
        }
        // Second pass: check function bodies and map sections.
        for item in &unit.items {
            match item {
                Item::Func(f) => self.check_func(f),
                Item::Map(m) => self.check_map(m),
                _ => {}
            }
        }
        if !self.funcs.contains_key("main") {
            self.diags.error(Span::default(), "program has no `main` function");
        }
    }

    fn eval_index_set(&mut self, def: &IndexSetDef) -> Option<IndexSetInfo> {
        let elements = match &def.init {
            IndexSetInit::Range(lo, hi) => {
                let lo = self.const_expr(lo)?;
                let hi = self.const_expr(hi)?;
                if hi < lo {
                    self.diags.error(
                        def.span,
                        format!("index-set range {{{lo}..{hi}}} is empty or reversed"),
                    );
                    return None;
                }
                // Constant ranges are materialised at compile time; cap
                // them so a hostile `[0 .. 1<<40]` is a diagnostic, not an
                // OOM. Matches the executor's runtime `max_index_set`.
                let len = hi as i128 - lo as i128 + 1;
                if len > MAX_CONST_INDEX_SET as i128 {
                    self.diags.error(
                        def.span,
                        format!(
                            "index set `{}` materialises {len} elements \
                             (limit {MAX_CONST_INDEX_SET})",
                            def.name
                        ),
                    );
                    return None;
                }
                (lo..=hi).collect()
            }
            IndexSetInit::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.const_expr(e)?);
                }
                out
            }
            IndexSetInit::Alias(src) => match self.lookup_index_set(src) {
                Some(info) => info.elements.clone(),
                None => {
                    self.diags
                        .error(def.span, format!("unknown index set `{src}` in alias"));
                    return None;
                }
            },
        };
        if elements.is_empty() {
            self.diags.error(def.span, format!("index set `{}` is empty", def.name));
            return None;
        }
        Some(IndexSetInfo { elem: def.elem.clone(), elements })
    }

    fn lookup_index_set(&self, name: &str) -> Option<&IndexSetInfo> {
        for scope in self.scopes.iter().rev() {
            if let Some(Binding::LocalIndexSet(info)) = scope.get(name) {
                return Some(info);
            }
        }
        self.index_sets.iter().rev().find(|(n, _)| n == name).map(|(_, i)| i)
    }

    fn declare_global(&mut self, v: &VarDecl) {
        if v.ty == Type::Void {
            self.diags.error(v.span, "variables cannot have type void");
            return;
        }
        if v.dims.is_empty() {
            let init = match &v.init {
                Some(e) => self.const_expr(e),
                None => Some(0),
            };
            if self.scalars.insert(v.name.clone(), (v.ty, init)).is_some() {
                self.diags.error(v.span, format!("variable `{}` redefined", v.name));
            }
        } else {
            let mut shape = Vec::with_capacity(v.dims.len());
            for d in &v.dims {
                match self.const_expr(d) {
                    Some(n) if n > 0 => shape.push(n as usize),
                    Some(n) => {
                        self.diags
                            .error(d.span(), format!("array extent must be positive, got {n}"));
                        return;
                    }
                    None => return,
                }
            }
            if v.init.is_some() {
                self.diags.error(v.span, "array initializers are not supported");
            }
            if self.arrays.insert(v.name.clone(), ArrayInfo { ty: v.ty, shape }).is_some() {
                self.diags.error(v.span, format!("array `{}` redefined", v.name));
            }
        }
    }

    /// Evaluate a compile-time constant integer expression (`#define`s,
    /// literals, arithmetic). Used for array extents and index-set bounds.
    fn const_expr(&mut self, e: &Expr) -> Option<i64> {
        match self.try_const_expr(e) {
            Ok(v) => Some(v),
            Err(span) => {
                self.diags.error(span, "expected a compile-time constant expression");
                None
            }
        }
    }

    fn try_const_expr(&self, e: &Expr) -> Result<i64, Span> {
        const_eval(e, &self.consts)
    }

    // ---- function bodies ------------------------------------------------

    fn check_func(&mut self, f: &FuncDef) {
        let mut scope = HashMap::new();
        for (ty, name) in &f.params {
            if *ty == Type::Void {
                self.diags.error(f.span, format!("parameter `{name}` cannot be void"));
            }
            scope.insert(name.clone(), Binding::Scalar(*ty));
        }
        self.scopes.push(scope);
        self.check_block(&f.body);
        self.scopes.pop();
    }

    fn check_block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    fn declare_local(&mut self, v: &VarDecl) {
        if v.ty == Type::Void {
            self.diags.error(v.span, "variables cannot have type void");
            return;
        }
        let binding = if v.dims.is_empty() {
            if let Some(init) = &v.init {
                self.check_expr(init);
            }
            Binding::Scalar(v.ty)
        } else {
            for d in &v.dims {
                self.const_expr(d);
            }
            if v.init.is_some() {
                self.diags.error(v.span, "array initializers are not supported");
            }
            Binding::Array(v.ty, v.dims.len())
        };
        self.scopes
            .last_mut()
            .expect("inside a scope")
            .insert(v.name.clone(), binding);
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => {
                self.check_expr(e);
            }
            Stmt::Decl(v) => self.declare_local(v),
            Stmt::IndexSets(defs) => {
                for def in defs {
                    if let Some(info) = self.eval_index_set(def) {
                        self.scopes
                            .last_mut()
                            .expect("inside a scope")
                            .insert(def.name.clone(), Binding::LocalIndexSet(info));
                    }
                }
            }
            Stmt::Block(b) => self.check_block(b),
            Stmt::If { cond, then_branch, else_branch, .. } => {
                self.check_expr(cond);
                self.check_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.check_stmt(e);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond);
                self.check_stmt(body);
            }
            Stmt::For { init, cond, step, body, .. } => {
                for e in [init, cond, step].into_iter().flatten() {
                    self.check_expr(e);
                }
                self.check_stmt(body);
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.check_expr(e);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
            Stmt::Uc(uc) => self.check_uc(uc),
        }
    }

    fn check_uc(&mut self, uc: &UcStmt) {
        // Bind the constructs' index elements in a fresh scope. Reuse of a
        // set hides the outer binding, as in the paper (§3.4).
        let mut scope = HashMap::new();
        for name in &uc.idxs {
            match self.lookup_index_set(name) {
                Some(info) => {
                    scope.insert(info.elem.clone(), Binding::IndexElem);
                }
                None => {
                    self.diags.error(uc.span, format!("unknown index set `{name}`"));
                }
            }
        }
        self.scopes.push(scope);
        for arm in &uc.arms {
            if let Some(p) = &arm.pred {
                self.check_expr(p);
            }
            self.check_stmt(&arm.body);
        }
        if let Some(o) = &uc.others {
            if uc.arms.iter().all(|a| a.pred.is_none()) {
                self.diags.error(
                    uc.span,
                    "`others` requires at least one `st`-guarded arm before it",
                );
            }
            self.check_stmt(o);
        }
        if uc.kind == UcKind::Solve {
            self.check_solve_arms(uc);
        }
        if uc.kind == UcKind::Seq && uc.idxs.len() != 1 {
            self.diags
                .error(uc.span, "`seq` iterates a single index set at a time");
        }
        self.scopes.pop();
    }

    /// `solve` arms must be a proper set of assignments (§3.6): every arm
    /// a single assignment statement (or block of them), and — statically
    /// approximated — no two arms assigning the same variable. `*solve`
    /// drops the single-assignment requirement.
    fn check_solve_arms(&mut self, uc: &UcStmt) {
        let mut targets: Vec<String> = Vec::new();
        for arm in &uc.arms {
            self.collect_solve_targets(&arm.body, uc.star, &mut targets);
        }
        if let Some(o) = &uc.others {
            self.collect_solve_targets(o, uc.star, &mut targets);
        }
        if !uc.star {
            let mut seen = std::collections::HashSet::new();
            for t in &targets {
                if !seen.insert(t.clone()) {
                    self.diags.error(
                        uc.span,
                        format!(
                            "solve: variable `{t}` is assigned by more than one statement \
                             (a proper set allows at most one)"
                        ),
                    );
                }
            }
        }
    }

    fn collect_solve_targets(&mut self, s: &Stmt, star: bool, out: &mut Vec<String>) {
        match s {
            Stmt::Expr(Expr::Assign { target, op, .. }) => {
                if op.is_some() && !star {
                    self.diags.error(
                        s_span(s),
                        "solve assignments must be plain `=` (single assignment)",
                    );
                }
                match target.as_ref() {
                    Expr::Ident(n, _) | Expr::Index { base: n, .. } => out.push(n.clone()),
                    _ => {}
                }
            }
            Stmt::Block(b) => {
                for inner in &b.stmts {
                    self.collect_solve_targets(inner, star, out);
                }
            }
            Stmt::Empty => {}
            other => {
                self.diags.error(
                    s_span(other),
                    "solve bodies may contain only assignment statements",
                );
            }
        }
    }

    // ---- expressions ------------------------------------------------------

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        if let Some((ty, _)) = self.scalars.get(name) {
            return Some(Binding::Scalar(*ty));
        }
        if let Some(info) = self.arrays.get(name) {
            return Some(Binding::Array(info.ty, info.shape.len()));
        }
        None
    }

    fn check_expr(&mut self, e: &Expr) -> ExprTy {
        match e {
            Expr::IntLit(..) => ExprTy::Int,
            Expr::FloatLit(..) => ExprTy::Float,
            Expr::Inf(_) => ExprTy::Int,
            Expr::Ident(name, span) => {
                if self.consts.contains_key(name) {
                    return ExprTy::Int;
                }
                match self.lookup(name) {
                    Some(Binding::IndexElem) => ExprTy::Int,
                    Some(Binding::Scalar(t)) => ExprTy::of(t),
                    Some(Binding::Array(..)) => {
                        self.diags.error(
                            *span,
                            format!("array `{name}` used without subscripts"),
                        );
                        ExprTy::Int
                    }
                    Some(Binding::LocalIndexSet(_)) => {
                        self.diags.error(
                            *span,
                            format!("index set `{name}` used as a value"),
                        );
                        ExprTy::Int
                    }
                    None => {
                        self.diags.error(*span, format!("unknown identifier `{name}`"));
                        ExprTy::Int
                    }
                }
            }
            Expr::Index { base, subs, span } => {
                let ty = match self.lookup(base) {
                    Some(Binding::Array(t, rank)) => {
                        if subs.len() != rank {
                            self.diags.error(
                                *span,
                                format!(
                                    "array `{base}` has rank {rank}, subscripted with {}",
                                    subs.len()
                                ),
                            );
                        }
                        ExprTy::of(t)
                    }
                    Some(_) => {
                        self.diags
                            .error(*span, format!("`{base}` is not an array"));
                        ExprTy::Int
                    }
                    None => {
                        self.diags.error(*span, format!("unknown array `{base}`"));
                        ExprTy::Int
                    }
                };
                for sub in subs {
                    let t = self.check_expr(sub);
                    if !t.int_like() {
                        self.diags
                            .error(sub.span(), "array subscripts must be integers");
                    }
                }
                ty
            }
            Expr::Call { name, args, span } => {
                for a in args {
                    self.check_expr(a);
                }
                if let Some(sig) = stdlib::builtin(name) {
                    if args.len() != sig.arity {
                        self.diags.error(
                            *span,
                            format!(
                                "builtin `{name}` takes {} argument(s), got {}",
                                sig.arity,
                                args.len()
                            ),
                        );
                    }
                    if name == "swap" {
                        for a in args {
                            if !matches!(a, Expr::Ident(..) | Expr::Index { .. }) {
                                self.diags.error(
                                    a.span(),
                                    "swap arguments must be variables or array elements",
                                );
                            }
                        }
                    }
                    return sig.ret;
                }
                match self.funcs.get(name) {
                    Some(f) => {
                        if f.params.len() != args.len() {
                            self.diags.error(
                                *span,
                                format!(
                                    "function `{name}` takes {} argument(s), got {}",
                                    f.params.len(),
                                    args.len()
                                ),
                            );
                        }
                        ExprTy::of(f.ret)
                    }
                    None => {
                        self.diags.error(*span, format!("unknown function `{name}`"));
                        ExprTy::Int
                    }
                }
            }
            Expr::Unary { op, expr, span } => {
                let t = self.check_expr(expr);
                match op {
                    UnaryOp::Neg => {
                        if !t.is_numeric() {
                            self.diags.error(*span, "negation needs a numeric operand");
                        }
                        t
                    }
                    UnaryOp::Not => ExprTy::Bool,
                    UnaryOp::BitNot => {
                        if !t.int_like() {
                            self.diags.error(*span, "`~` needs an integer operand");
                        }
                        ExprTy::Int
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                use BinaryOp::*;
                match op {
                    Mod | Shl | Shr | BitAnd | BitOr | BitXor => {
                        if !lt.int_like() || !rt.int_like() {
                            self.diags.error(
                                *span,
                                format!("`{}` requires integer operands", op.symbol()),
                            );
                        }
                        ExprTy::Int
                    }
                    Lt | Le | Gt | Ge | Eq | Ne => ExprTy::Bool,
                    LogAnd | LogOr => ExprTy::Bool,
                    Add | Sub | Mul | Div => {
                        if lt == ExprTy::Float || rt == ExprTy::Float {
                            ExprTy::Float
                        } else {
                            ExprTy::Int
                        }
                    }
                }
            }
            Expr::Ternary { cond, then_e, else_e, .. } => {
                self.check_expr(cond);
                let t = self.check_expr(then_e);
                let f = self.check_expr(else_e);
                if t == ExprTy::Float || f == ExprTy::Float {
                    ExprTy::Float
                } else {
                    ExprTy::Int
                }
            }
            Expr::Assign { target, value, span, .. } => {
                let vt = self.check_expr(value);
                match target.as_ref() {
                    Expr::Ident(name, tspan) => {
                        if self.consts.contains_key(name) {
                            self.diags.error(
                                *tspan,
                                format!("cannot assign to constant `{name}`"),
                            );
                            return ExprTy::Int;
                        }
                        match self.lookup(name) {
                            Some(Binding::IndexElem) => {
                                self.diags.error(
                                    *tspan,
                                    format!(
                                        "cannot assign to index element `{name}` (read-only)"
                                    ),
                                );
                                ExprTy::Int
                            }
                            Some(Binding::Scalar(t)) => {
                                if ExprTy::of(t) == ExprTy::Int && vt == ExprTy::Float {
                                    self.diags.warning(
                                        *span,
                                        "float value truncated in assignment to int",
                                    );
                                }
                                ExprTy::of(t)
                            }
                            Some(_) => {
                                self.diags.error(
                                    *tspan,
                                    format!("`{name}` cannot be assigned directly"),
                                );
                                ExprTy::Int
                            }
                            None => {
                                self.diags
                                    .error(*tspan, format!("unknown identifier `{name}`"));
                                ExprTy::Int
                            }
                        }
                    }
                    Expr::Index { .. } => {
                        let tt = self.check_expr(target);
                        if tt == ExprTy::Int && vt == ExprTy::Float {
                            self.diags.warning(
                                *span,
                                "float value truncated in assignment to int",
                            );
                        }
                        tt
                    }
                    _ => unreachable!("parser enforces lvalue targets"),
                }
            }
            Expr::Reduce(r) => self.check_reduce(r),
        }
    }

    fn check_reduce(&mut self, r: &ReduceExpr) -> ExprTy {
        let mut scope = HashMap::new();
        for name in &r.idxs {
            match self.lookup_index_set(name) {
                Some(info) => {
                    scope.insert(info.elem.clone(), Binding::IndexElem);
                }
                None => {
                    self.diags
                        .error(r.span, format!("unknown index set `{name}` in reduction"));
                }
            }
        }
        self.scopes.push(scope);
        let mut ty = ExprTy::Int;
        for (pred, operand) in &r.arms {
            if let Some(p) = pred {
                self.check_expr(p);
            }
            let t = self.check_expr(operand);
            if t == ExprTy::Float {
                ty = ExprTy::Float;
            }
        }
        if let Some(o) = &r.others {
            if r.arms.iter().all(|(p, _)| p.is_none()) {
                self.diags.error(
                    r.span,
                    "`others` in a reduction requires an `st`-guarded operand before it",
                );
            }
            let t = self.check_expr(o);
            if t == ExprTy::Float {
                ty = ExprTy::Float;
            }
        }
        use crate::token::RedOpToken as R;
        if matches!(r.op, R::And | R::Or | R::Xor) {
            ty = ExprTy::Int;
        }
        self.scopes.pop();
        ty
    }
}

fn s_span(s: &Stmt) -> Span {
    match s {
        Stmt::Expr(e) => e.span(),
        Stmt::Decl(v) => v.span,
        Stmt::If { span, .. }
        | Stmt::While { span, .. }
        | Stmt::For { span, .. }
        | Stmt::Return(_, span)
        | Stmt::Break(span)
        | Stmt::Continue(span) => *span,
        Stmt::Uc(u) => u.span,
        _ => Span::default(),
    }
}

impl<'a> Checker<'a> {
    fn check_map(&mut self, m: &MapSection) {
        for decl in &m.decls {
            for pat in [&decl.target, &decl.source] {
                match self.arrays.get(&pat.array) {
                    Some(info) => {
                        if pat.subs.len() != info.shape.len() {
                            self.diags.error(
                                pat.span,
                                format!(
                                    "mapping pattern for `{}` has {} subscripts, array has rank {}",
                                    pat.array,
                                    pat.subs.len(),
                                    info.shape.len()
                                ),
                            );
                        }
                    }
                    None => {
                        self.diags.error(
                            pat.span,
                            format!("mapping references unknown array `{}`", pat.array),
                        );
                    }
                }
            }
            self.maps.push(decl.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_ok(src: &str) -> Checked {
        let mut d = Diagnostics::default();
        let unit = parse(src, &mut d).expect("parse");
        let c = check(unit, &mut d);
        assert!(c.is_some(), "sema failed: {d}");
        c.unwrap()
    }

    fn check_err(src: &str) -> String {
        let mut d = Diagnostics::default();
        if let Some(unit) = parse(src, &mut d) {
            assert!(check(unit, &mut d).is_none(), "expected sema failure");
        }
        d.to_string()
    }

    #[test]
    fn index_sets_evaluated() {
        let c = check_ok(
            "#define N 5\nindex_set I:i = {0..N-1}, J:j = I, K:k = {4,2,9};\nmain() {}",
        );
        assert_eq!(c.index_set("I").unwrap().elements, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.index_set("J").unwrap().elements, vec![0, 1, 2, 3, 4]);
        assert_eq!(c.index_set("J").unwrap().elem, "j");
        assert_eq!(c.index_set("K").unwrap().elements, vec![4, 2, 9]);
    }

    #[test]
    fn array_shapes() {
        let c = check_ok("#define N 4\nint d[N][N*2];\nfloat f[3];\nmain() {}");
        assert_eq!(c.arrays["d"].shape, vec![4, 8]);
        assert_eq!(c.arrays["f"].shape, vec![3]);
        assert_eq!(c.arrays["f"].ty, Type::Float);
    }

    #[test]
    fn missing_main() {
        let msg = check_err("int x;");
        assert!(msg.contains("main"));
    }

    #[test]
    fn unknown_identifier() {
        let msg = check_err("main() { x = 1; }");
        assert!(msg.contains("unknown identifier `x`"));
    }

    #[test]
    fn unknown_index_set_in_par() {
        let msg = check_err("main() { par (Q) ; }");
        assert!(msg.contains("unknown index set `Q`"));
    }

    #[test]
    fn index_element_read_only() {
        let msg = check_err(
            "index_set I:i = {0..3};\nmain() { par (I) i = 2; }",
        );
        assert!(msg.contains("read-only"));
    }

    #[test]
    fn subscript_arity_checked() {
        let msg = check_err("#define N 4\nint d[N][N];\nindex_set I:i = {0..N-1};\nmain() { par (I) d[i] = 0; }");
        assert!(msg.contains("rank"));
    }

    #[test]
    fn index_element_scoping_and_shadowing() {
        // Reuse of I inside the reduction hides the outer predicate — must
        // check cleanly (paper §3.4 example).
        check_ok(
            "index_set I:i = {0..9};\nint a[10];\nmain() { par (I) st (i%2==0) a[i] = $+(I; i); }",
        );
    }

    #[test]
    fn elements_not_visible_outside() {
        let msg = check_err(
            "index_set I:i = {0..3};\nint a[4];\nmain() { a[i] = 0; }",
        );
        assert!(msg.contains("unknown identifier `i`"));
    }

    #[test]
    fn solve_single_assignment_enforced() {
        let msg = check_err(
            "#define N 4\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { solve (I) { a[i] = 1; a[i] = 2; } }",
        );
        assert!(msg.contains("more than one"));
        // *solve is exempt.
        check_ok(
            "#define N 4\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { *solve (I) { a[i] = 1; a[i] = 2; } }",
        );
    }

    #[test]
    fn solve_rejects_non_assignments() {
        let msg = check_err(
            "#define N 4\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { solve (I) while (1) a[i] = 0; }",
        );
        assert!(msg.contains("only assignment"));
    }

    #[test]
    fn others_needs_guarded_arm() {
        let msg = check_err(
            "index_set I:i = {0..3};\nint a[4];\nmain() { par (I) a[i] = 0; others a[i] = 1; }",
        );
        // The parser binds `others` only after `st` arms, so this becomes a
        // parse error or a sema error depending on shape; either way the
        // message mentions others/declaration.
        assert!(!msg.is_empty());
    }

    #[test]
    fn builtin_arity() {
        let msg = check_err("main() { int x; x = power2(); }");
        assert!(msg.contains("power2"));
    }

    #[test]
    fn local_index_sets() {
        check_ok(
            "#define N 4\nint a[N];\nmain() { index_set I:i = {0..N-1}; par (I) a[i] = i; }",
        );
    }

    #[test]
    fn map_section_checked() {
        let c = check_ok(
            "#define N 4\nindex_set I:i = {0..N-1};\nint a[N], b[N];\nmap (I) { permute (I) b[i+1] :- a[i]; }\nmain() {}",
        );
        assert_eq!(c.maps.len(), 1);
        let msg = check_err(
            "index_set I:i = {0..3};\nint a[4];\nmap (I) { permute (I) q[i] :- a[i]; }\nmain() {}",
        );
        assert!(msg.contains("unknown array `q`"));
    }

    #[test]
    fn float_subscript_rejected() {
        let msg = check_err(
            "#define N 4\nint a[N];\nfloat f;\nmain() { a[f] = 1; }",
        );
        assert!(msg.contains("subscripts must be integers"));
    }

    #[test]
    fn float_truncation_warns_but_compiles() {
        let mut d = Diagnostics::default();
        let unit = parse("int x;\nmain() { x = 1.5; }", &mut d).unwrap();
        assert!(check(unit, &mut d).is_some());
        assert!(!d.has_errors());
        assert!(d.to_string().contains("truncated"));
    }

    #[test]
    fn void_variables_rejected() {
        let msg = check_err("void v;\nmain() {}");
        assert!(msg.contains("void"));
    }

    #[test]
    fn function_redefinition() {
        let msg = check_err("main() {}\nmain() {}");
        assert!(msg.contains("redefined"));
    }

    #[test]
    fn call_arity_of_user_functions() {
        let msg = check_err("int f(int a, int b) { return a + b; }\nmain() { int x; x = f(1); }");
        assert!(msg.contains("argument"));
    }

    #[test]
    fn seq_single_set() {
        let msg = check_err(
            "index_set I:i = {0..3}, J:j = I;\nint a[4];\nmain() { seq (I, J) a[i] = j; }",
        );
        assert!(msg.contains("single index set"));
    }
}
