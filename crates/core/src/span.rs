//! Source positions and spans for diagnostics.

/// A half-open byte range into the source text, with line/column of the
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        let a = Span::new(3, 7, 1, 4);
        let b = Span::new(10, 12, 2, 1);
        let m = a.to(b);
        assert_eq!((m.start, m.end), (3, 12));
        assert_eq!((m.line, m.col), (1, 4));
        // Merging is order-insensitive for the byte range.
        let m2 = b.to(a);
        assert_eq!((m2.start, m2.end), (3, 12));
    }

    #[test]
    fn display_line_col() {
        assert_eq!(Span::new(0, 1, 3, 9).to_string(), "3:9");
    }
}
