//! UC → C* source translation.
//!
//! The paper's prototype compiled UC to C*, Thinking Machines' data-
//! parallel C dialect (Rose & Steele 1987), which was then compiled by the
//! C* compiler. This module reproduces that translation *textually*: it
//! emits a C* program in the domain style of the paper's Appendix
//! (Figures 9 and 10). The emitted code is documentation-grade output —
//! the executable path of this crate runs UC directly on the simulator,
//! which is also what `uc-cstar` (the baseline runtime) models.

use crate::ast::*;
use crate::pretty;
use crate::sema::Checked;

/// Emit a C* rendition of a checked UC program.
///
/// The translation follows the scheme of the paper's appendix:
/// every maximal parallel shape becomes a `domain` with one instance per
/// index point; `par` statements become domain-selection statements; `st`
/// predicates become `where` clauses; reductions become the C* reduction
/// assignment operators (`+=`, `<?=`, `>?=` applied to a mono variable).
pub fn emit_cstar(checked: &Checked) -> String {
    let mut out = String::new();
    out.push_str("/* Translated from UC by uc-core (see Bagrodia, Chandy & Kwan 1990, §5). */\n");
    for (name, value) in &checked.unit.defines {
        out.push_str(&format!("#define {name} {value}\n"));
    }
    out.push('\n');

    // One domain per distinct parallel array shape.
    let mut shapes: Vec<Vec<usize>> = Vec::new();
    for info in checked.arrays.values() {
        if !shapes.contains(&info.shape) {
            shapes.push(info.shape.clone());
        }
    }
    shapes.sort();
    for (k, shape) in shapes.iter().enumerate() {
        out.push_str(&format!("domain SHAPE{k} {{\n"));
        for d in 0..shape.len() {
            out.push_str(&format!("    int coord{d};\n"));
        }
        for (name, info) in sorted_arrays(checked) {
            if info.shape == *shape {
                let cname = match info.ty {
                    Type::Float => "float",
                    _ => "int",
                };
                out.push_str(&format!("    {cname} {name};\n"));
            }
        }
        let dims: String = shape.iter().map(|d| format!("[{d}]")).collect();
        out.push_str(&format!("}} shape{k}{dims};\n\n"));
    }

    for (name, (ty, init)) in sorted_scalars(checked) {
        let cname = match ty {
            Type::Float => "float",
            _ => "int",
        };
        match init {
            Some(v) => out.push_str(&format!("{cname} {name} = {v};\n")),
            None => out.push_str(&format!("{cname} {name};\n")),
        }
    }
    out.push('\n');

    for item in &checked.unit.items {
        if let Item::Func(f) = item {
            out.push_str(&emit_func(checked, f, &shapes));
            out.push('\n');
        }
    }
    out
}

fn sorted_arrays(checked: &Checked) -> Vec<(String, crate::sema::ArrayInfo)> {
    let mut v: Vec<_> = checked.arrays.iter().map(|(n, i)| (n.clone(), i.clone())).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn sorted_scalars(checked: &Checked) -> Vec<(String, (Type, Option<i64>))> {
    let mut v: Vec<_> = checked.scalars.iter().map(|(n, i)| (n.clone(), *i)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn emit_func(checked: &Checked, f: &FuncDef, shapes: &[Vec<usize>]) -> String {
    let ret = match f.ret {
        Type::Float => "float",
        Type::Void => "void",
        Type::Int => "int",
    };
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(t, n)| {
            format!("{} {}", if *t == Type::Float { "float" } else { "int" }, n)
        })
        .collect();
    let mut out = format!("{ret} {}({}) {{\n", f.name, params.join(", "));
    for s in &f.body.stmts {
        emit_stmt(checked, s, shapes, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn emit_stmt(checked: &Checked, s: &Stmt, shapes: &[Vec<usize>], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Uc(uc) => {
            let dims = construct_shape(checked, uc);
            let shape_id = shapes.iter().position(|s| *s == dims);
            let selector = match shape_id {
                Some(k) => format!("[domain SHAPE{k}]."),
                None => format!("/* shape {dims:?} */ [domain SHAPE?]."),
            };
            match uc.kind {
                UcKind::Par | UcKind::Oneof | UcKind::Solve => {
                    if uc.star {
                        out.push_str(&format!(
                            "{pad}/* *{}: iterate while any predicate holds */\n",
                            uc.kind.keyword()
                        ));
                        out.push_str(&format!("{pad}do {{\n"));
                    }
                    out.push_str(&format!("{pad}{selector}{{\n"));
                    for arm in &uc.arms {
                        match &arm.pred {
                            Some(p) => {
                                out.push_str(&format!(
                                    "{pad}    where ({}) {{\n",
                                    pretty::expr(p)
                                ));
                                emit_stmt(checked, &arm.body, shapes, indent + 2, out);
                                out.push_str(&format!("{pad}    }}\n"));
                            }
                            None => emit_stmt(checked, &arm.body, shapes, indent + 1, out),
                        }
                    }
                    if let Some(o) = &uc.others {
                        out.push_str(&format!("{pad}    else {{\n"));
                        emit_stmt(checked, o, shapes, indent + 2, out);
                        out.push_str(&format!("{pad}    }}\n"));
                    }
                    out.push_str(&format!("{pad}}}\n"));
                    if uc.star {
                        out.push_str(&format!("{pad}}} while (/* any enabled */ 0);\n"));
                    }
                }
                UcKind::Seq => {
                    let set = &uc.idxs[0];
                    let elem = checked
                        .index_set(set)
                        .map(|i| i.elem.clone())
                        .unwrap_or_else(|| "k".into());
                    out.push_str(&format!(
                        "{pad}for ({elem} = 0; {elem} < /* |{set}| */ N; {elem}++) {{\n"
                    ));
                    for arm in &uc.arms {
                        emit_stmt(checked, &arm.body, shapes, indent + 1, out);
                    }
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
        }
        Stmt::Expr(Expr::Assign { target, op: None, value, .. }) => {
            // Min/max reductions become C*'s <?= / >?= on the target.
            if let Expr::Reduce(r) = value.as_ref() {
                use crate::token::RedOpToken as R;
                let cop = match r.op {
                    R::Add => Some("+="),
                    R::Min => Some("<?="),
                    R::Max => Some(">?="),
                    R::Mul => Some("*="),
                    _ => None,
                };
                if let (Some(cop), [(None, operand)]) = (cop, &r.arms[..]) {
                    out.push_str(&format!(
                        "{pad}{} {cop} {};\n",
                        pretty::expr(target),
                        pretty::expr(operand)
                    ));
                    return;
                }
            }
            out.push_str(&format!("{pad}{};\n", pretty::expr(&Expr::Assign {
                target: target.clone(),
                op: None,
                value: value.clone(),
                span: crate::span::Span::default(),
            })));
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                emit_stmt(checked, s, shapes, indent, out);
            }
        }
        other => {
            out.push_str(&format!("{pad}{}\n", pretty::stmt_to_string(other, indent)));
        }
    }
}

/// The Cartesian shape a construct iterates over.
fn construct_shape(checked: &Checked, uc: &UcStmt) -> Vec<usize> {
    uc.idxs
        .iter()
        .filter_map(|n| checked.index_set(n).map(|i| i.elements.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;
    use crate::sema::check;

    fn emit(src: &str) -> String {
        let mut d = Diagnostics::default();
        let u = parse(src, &mut d).expect("parse");
        let c = check(u, &mut d).expect("sema");
        emit_cstar(&c)
    }

    #[test]
    fn emits_domains_for_shapes() {
        let text = emit(
            "#define N 8\nindex_set I:i = {0..N-1}, J:j = I;\nint d[N][N];\nmain() { par (I,J) d[i][j] = 0; }",
        );
        assert!(text.contains("domain SHAPE0"), "{text}");
        assert!(text.contains("int d;"), "{text}");
        assert!(text.contains("[domain SHAPE0]."), "{text}");
        assert!(text.contains("#define N 8"), "{text}");
    }

    #[test]
    fn where_clauses_from_st() {
        let text = emit(
            "#define N 8\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { par (I) st (a[i] != 0) a[i] = 1; }",
        );
        assert!(text.contains("where (a[i] != 0)"), "{text}");
    }

    #[test]
    fn min_reduction_becomes_cstar_operator() {
        let text = emit(
            "#define N 4\nindex_set I:i = {0..N-1}, J:j = I, K:k = I;\nint d[N][N];\nmain() { par (I,J) d[i][j] = $<(K; d[i][k] + d[k][j]); }",
        );
        assert!(text.contains("<?="), "expected C* min-assignment: {text}");
    }
}
