//! # uc-core — the UC language
//!
//! A full implementation of *UC: A Language for the Connection Machine*
//! (Bagrodia, Chandy & Kwan, Supercomputing 1990): lexer, parser, semantic
//! analysis, compiler optimizations, the declarative **map section** of §4,
//! and an executor that runs UC programs on the deterministic Connection
//! Machine simulator of the `uc-cm` crate.
//!
//! The language is C restricted (no `goto`, no general pointers) plus:
//!
//! * `index_set I:i = {0..N-1}, J:j = I, K:k = {4,2,9};`
//! * reductions `$+ $* $&& $|| $> $< $^ $,` with `st` predicates and
//!   `others` clauses;
//! * `par` — synchronous parallel assignment over enabled index elements;
//! * `seq` — ordered iteration over an index set;
//! * `solve` — single-assignment equation systems executed in dependency
//!   order; `*solve` — fixed-point iteration;
//! * `oneof` — non-deterministic selection of one enabled arm;
//! * `*` prefixes for iterate-while-enabled semantics;
//! * a `map` section with `permute`, `fold` and `copy` mappings that
//!   re-layout arrays without touching program logic.
//!
//! ## Quickstart
//!
//! ```
//! use uc_core::Program;
//!
//! let src = r#"
//!     #define N 16
//!     index_set I:i = {0..N-1}, J:j = I;
//!     int a[N], rank[N], sorted[N];
//!     main() {
//!         par (I) a[i] = (7 * i + 3) % N;          /* distinct keys */
//!         par (I) {
//!             rank[i] = $+(J st (a[j] < a[i]) 1);  /* ranksort (§3.4) */
//!             sorted[rank[i]] = a[i];
//!         }
//!     }
//! "#;
//! let mut p = Program::compile(src).unwrap();
//! p.run().unwrap();
//! let sorted = p.read_int_array("sorted").unwrap();
//! assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! ```

pub mod analysis;
pub mod ast;
pub mod cstar_emit;
pub mod diag;
pub mod exec;
pub mod ir;
pub mod lexer;
pub mod mapping;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod stdlib;
pub mod token;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use exec::{ExecBackend, ExecConfig, ExecLimits, IrOpt, Program, RunError, RuntimeError};
pub use span::Span;
