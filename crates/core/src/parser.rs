//! Recursive-descent parser for UC.
//!
//! The grammar follows §3 of the paper: C expressions and statements
//! (minus `goto`, which is rejected with a diagnostic), `index_set`
//! declarations, reduction expressions, the four constructs with their
//! `st`/`others` arms and `*` iteration prefix, and the map section of §4.
//!
//! `sc-block` binding follows the paper's dangling-`else`-style rule: an
//! `st`/`others` arm binds to the innermost construct; braces force a
//! different binding.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::{lex, LexOutput};
use crate::span::Span;
use crate::token::{Token, TokenKind, TokenKind as T};

/// Parse a UC translation unit. Returns `None` if errors were found (all
/// recorded in `diags`).
pub fn parse(src: &str, diags: &mut Diagnostics) -> Option<Unit> {
    let LexOutput { tokens, defines } = lex(src, diags);
    if diags.has_errors() {
        return None;
    }
    let mut p = Parser { tokens, pos: 0, diags };
    let unit = p.unit(defines);
    if p.diags.has_errors() {
        None
    } else {
        Some(unit)
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    diags: &'a mut Diagnostics,
}

type PResult<T> = Result<T, ()>;

impl<'a> Parser<'a> {
    // ---- token plumbing ---------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: &TokenKind, what: &str) -> PResult<()> {
        if self.eat(k) {
            Ok(())
        } else {
            let msg = format!("expected {what}, found {:?}", self.peek());
            self.diags.error(self.span(), msg);
            Err(())
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        if let T::Ident(name) = self.peek().clone() {
            self.bump();
            Ok(name)
        } else {
            let msg = format!("expected {what}, found {:?}", self.peek());
            self.diags.error(self.span(), msg);
            Err(())
        }
    }

    /// Skip to the next statement boundary after an error.
    fn synchronize(&mut self) {
        loop {
            match self.peek() {
                T::Semi => {
                    self.bump();
                    return;
                }
                T::RBrace | T::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- top level --------------------------------------------------------

    fn unit(&mut self, defines: Vec<(String, i64)>) -> Unit {
        let mut items = Vec::new();
        while !self.at(&T::Eof) {
            let before = self.pos;
            match self.item() {
                Ok(batch) => items.extend(batch),
                Err(()) => self.synchronize(),
            }
            // `synchronize` stops *before* `}` (it must not eat the brace
            // when recovering inside a block), so a stray `}` at top level
            // would otherwise leave the cursor parked and loop forever.
            if self.pos == before && !self.at(&T::Eof) {
                self.bump();
            }
        }
        Unit { items, defines }
    }

    fn item(&mut self) -> PResult<Vec<Item>> {
        match self.peek() {
            T::KwIndexSet => Ok(vec![Item::IndexSets(self.index_set_decl()?)]),
            T::KwMap => Ok(vec![Item::Map(self.map_section()?)]),
            T::KwInt | T::KwFloat | T::KwVoid => {
                let ty = self.type_name()?;
                let name = self.ident("a declarator name")?;
                if self.at(&T::LParen) {
                    Ok(vec![self.func_rest(ty, name)?])
                } else {
                    let (first, rest) = self.var_decl_rest(ty, name)?;
                    let mut items = vec![Item::Var(first)];
                    items.extend(rest.into_iter().map(Item::Var));
                    Ok(items)
                }
            }
            T::Ident(_) if *self.peek2() == T::LParen => {
                // `main() { ... }` — return type defaults to int, as in C.
                let name = self.ident("a function name")?;
                Ok(vec![self.func_rest(Type::Int, name)?])
            }
            _ => {
                let msg = format!("expected a declaration, found {:?}", self.peek());
                self.diags.error(self.span(), msg);
                Err(())
            }
        }
    }

    fn type_name(&mut self) -> PResult<Type> {
        match self.bump() {
            T::KwInt => Ok(Type::Int),
            T::KwFloat => Ok(Type::Float),
            T::KwVoid => Ok(Type::Void),
            other => {
                let msg = format!("expected a type, found {other:?}");
                self.diags.error(self.prev_span(), msg);
                Err(())
            }
        }
    }

    // ---- declarations -----------------------------------------------------

    fn index_set_decl(&mut self) -> PResult<Vec<IndexSetDef>> {
        self.expect(&T::KwIndexSet, "`index_set`")?;
        let mut defs = Vec::new();
        loop {
            let start = self.span();
            let name = self.ident("an index-set name")?;
            self.expect(&T::Colon, "`:` between set and element names")?;
            let elem = self.ident("an element identifier")?;
            self.expect(&T::Assign, "`=` in index-set definition")?;
            let init = if self.eat(&T::LBrace) {
                let first = self.expr()?;
                if self.eat(&T::DotDot) {
                    let hi = self.expr()?;
                    self.expect(&T::RBrace, "`}` after range")?;
                    IndexSetInit::Range(first, hi)
                } else {
                    let mut elems = vec![first];
                    while self.eat(&T::Comma) {
                        elems.push(self.expr()?);
                    }
                    self.expect(&T::RBrace, "`}` after element list")?;
                    IndexSetInit::List(elems)
                }
            } else {
                IndexSetInit::Alias(self.ident("an index-set name to alias")?)
            };
            defs.push(IndexSetDef { name, elem, init, span: start.to(self.prev_span()) });
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::Semi, "`;` after index-set declaration")?;
        Ok(defs)
    }

    /// Parse the declarators of a variable declaration after `ty name`.
    /// Returns the first declaration plus any further comma declarators.
    fn var_decl_rest(&mut self, ty: Type, name: String) -> PResult<(VarDecl, Vec<VarDecl>)> {
        let first = self.one_declarator(ty, name)?;
        let mut rest = Vec::new();
        while self.eat(&T::Comma) {
            let name = self.ident("a declarator name")?;
            rest.push(self.one_declarator(ty, name)?);
        }
        self.expect(&T::Semi, "`;` after declaration")?;
        Ok((first, rest))
    }

    fn one_declarator(&mut self, ty: Type, name: String) -> PResult<VarDecl> {
        let start = self.prev_span();
        let mut dims = Vec::new();
        while self.eat(&T::LBracket) {
            dims.push(self.expr()?);
            self.expect(&T::RBracket, "`]` after array extent")?;
        }
        let init = if self.eat(&T::Assign) { Some(self.expr()?) } else { None };
        Ok(VarDecl { ty, name, dims, init, span: start.to(self.prev_span()) })
    }

    fn func_rest(&mut self, ret: Type, name: String) -> PResult<Item> {
        let start = self.prev_span();
        self.expect(&T::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.at(&T::RParen) {
            loop {
                let ty = self.type_name()?;
                let pname = self.ident("a parameter name")?;
                params.push((ty, pname));
                if !self.eat(&T::Comma) {
                    break;
                }
            }
        }
        self.expect(&T::RParen, "`)` after parameters")?;
        let body = self.block()?;
        Ok(Item::Func(FuncDef { ret, name, params, body, span: start.to(self.prev_span()) }))
    }

    fn map_section(&mut self) -> PResult<MapSection> {
        let start = self.span();
        self.expect(&T::KwMap, "`map`")?;
        let idxs = self.idx_list()?;
        self.expect(&T::LBrace, "`{` opening the map section")?;
        let mut decls = Vec::new();
        while !self.at(&T::RBrace) && !self.at(&T::Eof) {
            let dstart = self.span();
            let kind = match self.bump() {
                T::KwPermute => MapKind::Permute,
                T::KwFold => MapKind::Fold,
                T::KwCopy => MapKind::Copy,
                other => {
                    let msg =
                        format!("expected `permute`, `fold` or `copy`, found {other:?}");
                    self.diags.error(self.prev_span(), msg);
                    return Err(());
                }
            };
            let idxs = self.idx_list()?;
            let target = self.array_pattern()?;
            self.expect(&T::MapsTo, "`:-` between mapping patterns")?;
            let source = self.array_pattern()?;
            self.expect(&T::Semi, "`;` after mapping declaration")?;
            decls.push(MapDecl { kind, idxs, target, source, span: dstart.to(self.prev_span()) });
        }
        self.expect(&T::RBrace, "`}` closing the map section")?;
        Ok(MapSection { idxs, decls, span: start.to(self.prev_span()) })
    }

    fn array_pattern(&mut self) -> PResult<ArrayPattern> {
        let start = self.span();
        let array = self.ident("an array name")?;
        let mut subs = Vec::new();
        while self.eat(&T::LBracket) {
            subs.push(self.expr()?);
            self.expect(&T::RBracket, "`]`")?;
        }
        Ok(ArrayPattern { array, subs, span: start.to(self.prev_span()) })
    }

    fn idx_list(&mut self) -> PResult<Vec<String>> {
        self.expect(&T::LParen, "`(` before index-set list")?;
        let mut idxs = vec![self.ident("an index-set name")?];
        while self.eat(&T::Comma) {
            idxs.push(self.ident("an index-set name")?);
        }
        self.expect(&T::RParen, "`)` after index-set list")?;
        Ok(idxs)
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect(&T::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.at(&T::RBrace) && !self.at(&T::Eof) {
            // Parse declarations here (not via `stmt`) so a multi-
            // declarator `int x, y;` contributes every name to *this*
            // block's scope.
            let parsed = match self.peek() {
                T::KwInt | T::KwFloat => self.decl_stmts().map(|ds| stmts.extend(ds)),
                _ => self.stmt().map(|s| stmts.push(s)),
            };
            if parsed.is_err() {
                self.synchronize();
            }
        }
        self.expect(&T::RBrace, "`}`")?;
        Ok(Block { stmts })
    }

    /// `int|float declarator (, declarator)* ;` as one `Stmt::Decl` each.
    fn decl_stmts(&mut self) -> PResult<Vec<Stmt>> {
        let ty = self.type_name()?;
        let name = self.ident("a declarator name")?;
        let (first, rest) = self.var_decl_rest(ty, name)?;
        let mut stmts = vec![Stmt::Decl(first)];
        stmts.extend(rest.into_iter().map(Stmt::Decl));
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        match self.peek() {
            T::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            T::LBrace => Ok(Stmt::Block(self.block()?)),
            T::KwIndexSet => Ok(Stmt::IndexSets(self.index_set_decl()?)),
            T::KwInt | T::KwFloat => {
                // A declaration in single-statement position (e.g. an
                // unbraced `if` branch): scope it to a synthetic block.
                let mut stmts = self.decl_stmts()?;
                if stmts.len() == 1 {
                    Ok(stmts.pop().unwrap())
                } else {
                    Ok(Stmt::Block(Block { stmts }))
                }
            }
            T::KwGoto => {
                self.diags.error(span, "UC disallows `goto` statements (§3 of the paper)");
                Err(())
            }
            T::KwIf => {
                self.bump();
                self.expect(&T::LParen, "`(` after `if`")?;
                let cond = self.expr()?;
                self.expect(&T::RParen, "`)` after condition")?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat(&T::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_branch, else_branch, span })
            }
            T::KwWhile => {
                self.bump();
                self.expect(&T::LParen, "`(` after `while`")?;
                let cond = self.expr()?;
                self.expect(&T::RParen, "`)` after condition")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            T::KwFor => {
                self.bump();
                self.expect(&T::LParen, "`(` after `for`")?;
                let init = if self.at(&T::Semi) { None } else { Some(self.expr()?) };
                self.expect(&T::Semi, "`;` in for header")?;
                let cond = if self.at(&T::Semi) { None } else { Some(self.expr()?) };
                self.expect(&T::Semi, "`;` in for header")?;
                let step = if self.at(&T::RParen) { None } else { Some(self.expr()?) };
                self.expect(&T::RParen, "`)` after for header")?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For { init, cond, step, body, span })
            }
            T::KwReturn => {
                self.bump();
                let e = if self.at(&T::Semi) { None } else { Some(self.expr()?) };
                self.expect(&T::Semi, "`;` after return")?;
                Ok(Stmt::Return(e, span))
            }
            T::KwBreak => {
                self.bump();
                self.expect(&T::Semi, "`;` after break")?;
                Ok(Stmt::Break(span))
            }
            T::KwContinue => {
                self.bump();
                self.expect(&T::Semi, "`;` after continue")?;
                Ok(Stmt::Continue(span))
            }
            T::Star | T::KwPar | T::KwSeq | T::KwSolve | T::KwOneof
                if self.is_uc_stmt_start() =>
            {
                self.uc_stmt()
            }
            _ => {
                let e = self.expr()?;
                self.expect(&T::Semi, "`;` after expression statement")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// `*` starts a UC statement only when followed by a construct keyword
    /// (there is no unary deref in UC — pointers are disallowed).
    fn is_uc_stmt_start(&self) -> bool {
        match self.peek() {
            T::KwPar | T::KwSeq | T::KwSolve | T::KwOneof => true,
            T::Star => matches!(
                self.peek2(),
                T::KwPar | T::KwSeq | T::KwSolve | T::KwOneof
            ),
            _ => false,
        }
    }

    fn uc_stmt(&mut self) -> PResult<Stmt> {
        let span = self.span();
        let star = self.eat(&T::Star);
        let kind = match self.bump() {
            T::KwPar => UcKind::Par,
            T::KwSeq => UcKind::Seq,
            T::KwSolve => UcKind::Solve,
            T::KwOneof => UcKind::Oneof,
            other => {
                let msg = format!("expected a UC construct keyword, found {other:?}");
                self.diags.error(self.prev_span(), msg);
                return Err(());
            }
        };
        let idxs = self.idx_list()?;
        let mut arms = Vec::new();
        let mut others = None;
        if self.at(&T::KwSt) {
            while self.eat(&T::KwSt) {
                self.expect(&T::LParen, "`(` after `st`")?;
                let pred = self.expr()?;
                self.expect(&T::RParen, "`)` after predicate")?;
                let body = self.stmt()?;
                arms.push(ScBlock { pred: Some(pred), body });
            }
            if self.eat(&T::KwOthers) {
                others = Some(Box::new(self.stmt()?));
            }
        } else {
            let body = self.stmt()?;
            arms.push(ScBlock { pred: None, body });
        }
        Ok(Stmt::Uc(UcStmt { kind, star, idxs, arms, others, span: span.to(self.prev_span()) }))
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            T::Assign => None,
            T::PlusAssign => Some(BinaryOp::Add),
            T::MinusAssign => Some(BinaryOp::Sub),
            T::StarAssign => Some(BinaryOp::Mul),
            T::SlashAssign => Some(BinaryOp::Div),
            T::PercentAssign => Some(BinaryOp::Mod),
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        if !matches!(lhs, Expr::Ident(..) | Expr::Index { .. }) {
            self.diags.error(lhs.span(), "assignment target must be a variable or array element");
            return Err(());
        }
        let value = self.assignment()?; // right associative
        Ok(Expr::Assign {
            target: Box::new(lhs),
            op,
            value: Box::new(value),
            span,
        })
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&T::Question) {
            let span = self.prev_span();
            let then_e = self.expr()?;
            self.expect(&T::Colon, "`:` in conditional expression")?;
            let else_e = self.ternary()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser (C precedence).
    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                T::Star => (BinaryOp::Mul, 10),
                T::Slash => (BinaryOp::Div, 10),
                T::Percent => (BinaryOp::Mod, 10),
                T::Plus => (BinaryOp::Add, 9),
                T::Minus => (BinaryOp::Sub, 9),
                T::Shl => (BinaryOp::Shl, 8),
                T::Shr => (BinaryOp::Shr, 8),
                T::Lt => (BinaryOp::Lt, 7),
                T::Le => (BinaryOp::Le, 7),
                T::Gt => (BinaryOp::Gt, 7),
                T::Ge => (BinaryOp::Ge, 7),
                T::EqEq => (BinaryOp::Eq, 6),
                T::NotEq => (BinaryOp::Ne, 6),
                T::Amp => (BinaryOp::BitAnd, 5),
                T::Caret => (BinaryOp::BitXor, 4),
                T::Pipe => (BinaryOp::BitOr, 3),
                T::AmpAmp => (BinaryOp::LogAnd, 2),
                T::PipePipe => (BinaryOp::LogOr, 1),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), span };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek() {
            T::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e), span })
            }
            T::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(e), span })
            }
            T::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::BitNot, expr: Box::new(e), span })
            }
            T::Plus => {
                self.bump();
                self.unary()
            }
            T::PlusPlus | T::MinusMinus => {
                let op = if self.bump() == T::PlusPlus { BinaryOp::Add } else { BinaryOp::Sub };
                let e = self.unary()?;
                self.desugar_incdec(e, op, span)
            }
            _ => self.postfix(),
        }
    }

    fn desugar_incdec(&mut self, e: Expr, op: BinaryOp, span: Span) -> PResult<Expr> {
        if !matches!(e, Expr::Ident(..) | Expr::Index { .. }) {
            self.diags.error(span, "++/-- requires a variable or array element");
            return Err(());
        }
        Ok(Expr::Assign {
            target: Box::new(e),
            op: Some(op),
            value: Box::new(Expr::IntLit(1, span)),
            span,
        })
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                T::LBracket => {
                    let Expr::Ident(name, span) = e.clone() else {
                        self.diags
                            .error(e.span(), "only named arrays can be subscripted in UC");
                        return Err(());
                    };
                    let mut subs = Vec::new();
                    while self.eat(&T::LBracket) {
                        subs.push(self.expr()?);
                        self.expect(&T::RBracket, "`]`")?;
                    }
                    e = Expr::Index { base: name, subs, span: span.to(self.prev_span()) };
                }
                T::PlusPlus => {
                    let span = self.span();
                    self.bump();
                    e = self.desugar_incdec(e, BinaryOp::Add, span)?;
                }
                T::MinusMinus => {
                    let span = self.span();
                    self.bump();
                    e = self.desugar_incdec(e, BinaryOp::Sub, span)?;
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            T::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, span))
            }
            T::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, span))
            }
            T::KwInf => {
                self.bump();
                Ok(Expr::Inf(span))
            }
            T::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&T::RParen, "`)`")?;
                Ok(e)
            }
            T::Reduce(op) => {
                self.bump();
                self.reduction(op, span)
            }
            T::Ident(name) => {
                self.bump();
                if self.eat(&T::LParen) {
                    let mut args = Vec::new();
                    if !self.at(&T::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&T::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&T::RParen, "`)` after arguments")?;
                    Ok(Expr::Call { name, args, span: span.to(self.prev_span()) })
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            other => {
                let msg = format!("expected an expression, found {other:?}");
                self.diags.error(span, msg);
                Err(())
            }
        }
    }

    /// `$op ( I, J  (';' expr | ['st' '(' p ')' expr]+ ) [others expr] )`
    fn reduction(&mut self, op: crate::token::RedOpToken, span: Span) -> PResult<Expr> {
        self.expect(&T::LParen, "`(` after reduction operator")?;
        let mut idxs = vec![self.ident("an index-set name")?];
        while self.eat(&T::Comma) {
            idxs.push(self.ident("an index-set name")?);
        }
        let semi = self.eat(&T::Semi);
        let mut arms = Vec::new();
        let mut others = None;
        if self.at(&T::KwSt) {
            while self.eat(&T::KwSt) {
                self.expect(&T::LParen, "`(` after `st`")?;
                let pred = self.expr()?;
                self.expect(&T::RParen, "`)` after predicate")?;
                let operand = self.expr()?;
                arms.push((Some(pred), operand));
            }
            if self.eat(&T::KwOthers) {
                others = Some(self.expr()?);
            }
        } else {
            if !semi {
                self.diags.error(
                    self.span(),
                    "a simple reduction needs `;` between the index sets and the operand",
                );
            }
            let operand = self.expr()?;
            arms.push((None, operand));
        }
        self.expect(&T::RParen, "`)` closing the reduction")?;
        Ok(Expr::Reduce(Box::new(ReduceExpr {
            op,
            idxs,
            arms,
            others,
            span: span.to(self.prev_span()),
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        let mut d = Diagnostics::default();
        let u = parse(src, &mut d);
        assert!(u.is_some(), "parse failed: {d}");
        u.unwrap()
    }

    fn parse_err(src: &str) -> Diagnostics {
        let mut d = Diagnostics::default();
        let u = parse(src, &mut d);
        assert!(u.is_none(), "expected parse failure");
        d
    }

    #[test]
    fn index_sets() {
        let u = parse_ok("index_set I:i = {0..9}, J:j = I, K:k = {4,2,9};");
        let Item::IndexSets(defs) = &u.items[0] else { panic!() };
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[0].name, "I");
        assert_eq!(defs[0].elem, "i");
        assert!(matches!(defs[0].init, IndexSetInit::Range(..)));
        assert!(matches!(defs[1].init, IndexSetInit::Alias(ref a) if a == "I"));
        assert!(matches!(defs[2].init, IndexSetInit::List(ref l) if l.len() == 3));
    }

    #[test]
    fn variables_and_functions() {
        let u = parse_ok(
            "#define N 8\nint s, a[N], d[N][N];\nfloat avg;\nmain() { s = 1; }",
        );
        assert_eq!(u.defines, vec![("N".to_string(), 8)]);
        let vars: Vec<_> = u
            .items
            .iter()
            .filter_map(|i| if let Item::Var(v) = i { Some(v) } else { None })
            .collect();
        assert_eq!(vars.len(), 4);
        assert_eq!(vars[1].dims.len(), 1);
        assert_eq!(vars[2].dims.len(), 2);
        assert!(matches!(u.items.last(), Some(Item::Func(f)) if f.name == "main"));
    }

    #[test]
    fn par_with_predicate() {
        let u = parse_ok(
            "index_set I:i = {0..9};\nint a[10];\nmain() { par (I) st (a[i] != 0) a[i] = 1; }",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Uc(uc) = &f.body.stmts[0] else { panic!() };
        assert_eq!(uc.kind, UcKind::Par);
        assert!(!uc.star);
        assert_eq!(uc.idxs, vec!["I"]);
        assert_eq!(uc.arms.len(), 1);
        assert!(uc.arms[0].pred.is_some());
        assert!(uc.others.is_none());
    }

    #[test]
    fn par_with_others_and_multiple_arms() {
        let u = parse_ok(
            "index_set I:i = {0..9};\nint a[10];\nmain() {\n par (I)\n st (i%2==1) a[i] = 0;\n others a[i] = 1;\n}",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Uc(uc) = &f.body.stmts[0] else { panic!() };
        assert_eq!(uc.arms.len(), 1);
        assert!(uc.others.is_some());
    }

    #[test]
    fn starred_constructs() {
        let u = parse_ok(
            "index_set I:i = {0..9};\nint x[10];\nmain() {\n *oneof (I)\n st (i%2==0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n st (i%2!=0 && x[i]>x[i+1]) swap(x[i], x[i+1]);\n}",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Uc(uc) = &f.body.stmts[0] else { panic!() };
        assert_eq!(uc.kind, UcKind::Oneof);
        assert!(uc.star);
        assert_eq!(uc.arms.len(), 2);
    }

    #[test]
    fn reductions() {
        let u = parse_ok(
            "index_set I:i = {0..9}, J:j = I;\nint a[10], s;\nmain() {\n s = $+(I; a[i]);\n s = $<(I st (a[i]==0) i);\n s = $+(I st (a[i]>0) a[i] others -a[i]);\n s = $>(J st (a[j]==$>(J; a[j])) j);\n}",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        assert_eq!(f.body.stmts.len(), 4);
        let Stmt::Expr(Expr::Assign { value, .. }) = &f.body.stmts[2] else { panic!() };
        let Expr::Reduce(r) = value.as_ref() else { panic!() };
        assert!(r.others.is_some());
    }

    #[test]
    fn solve_and_ternary() {
        let u = parse_ok(
            "#define N 4\nindex_set I:i = {0..N-1}, J:j = I;\nint a[N][N];\nmain() {\n solve (I,J) a[i][j] = (i==0 || j==0) ? 1 : a[i-1][j] + a[i-1][j-1] + a[i][j-1];\n}",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Uc(uc) = &f.body.stmts[0] else { panic!() };
        assert_eq!(uc.kind, UcKind::Solve);
        assert_eq!(uc.idxs.len(), 2);
    }

    #[test]
    fn nested_seq_in_par() {
        let u = parse_ok(
            "#define N 8\n#define LOGN 3\nindex_set I:i = {0..N-1}, J:j = {0..LOGN-1};\nint a[N];\nmain() {\n par (I) {\n  a[i] = i;\n  seq (J) st (i - power2(j) >= 0)\n   a[i] = a[i] + a[i - power2(j)];\n }\n}",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Uc(uc) = &f.body.stmts[0] else { panic!() };
        let Stmt::Block(b) = &uc.arms[0].body else { panic!() };
        assert!(matches!(&b.stmts[1], Stmt::Uc(inner) if inner.kind == UcKind::Seq));
    }

    #[test]
    fn map_sections() {
        let u = parse_ok(
            "index_set I:i = {0..9};\nint a[10], b[10];\nmap (I) {\n permute (I) b[i+1] :- a[i];\n copy (I) a[i] :- a[i];\n}",
        );
        let Item::Map(m) = u.items.last().unwrap() else { panic!() };
        assert_eq!(m.decls.len(), 2);
        assert_eq!(m.decls[0].kind, MapKind::Permute);
        assert_eq!(m.decls[0].target.array, "b");
        assert_eq!(m.decls[0].source.array, "a");
    }

    #[test]
    fn goto_rejected() {
        let d = parse_err("main() { goto end; }");
        assert!(d.to_string().contains("goto"));
    }

    #[test]
    fn control_flow_statements() {
        let u = parse_ok(
            "main() { int i; for (i = 0; i < 4; i++) { if (i == 2) continue; else i += 1; } while (i > 0) i--; return 0; }",
        );
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        assert!(matches!(f.body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn error_recovery_collects_multiple() {
        let d = parse_err("int a[;\nint b(;\n");
        assert!(d.items.len() >= 2);
    }

    #[test]
    fn precedence() {
        let u = parse_ok("main() { int x; x = 1 + 2 * 3 == 7 && 1; }");
        let Item::Func(f) = u.items.last().unwrap() else { panic!() };
        let Stmt::Expr(Expr::Assign { value, .. }) = &f.body.stmts[1] else { panic!() };
        // Top node must be `&&`.
        let Expr::Binary { op: BinaryOp::LogAnd, .. } = value.as_ref() else {
            panic!("expected && at top, got {value:?}")
        };
    }
}
