//! AST pretty-printer.
//!
//! Renders an AST back to UC source. Used by tests (parse ∘ print is the
//! identity on the AST, modulo spans) and by the C* emitter for expression
//! fragments.

use crate::ast::*;

/// Render a whole unit.
pub fn unit_to_string(u: &Unit) -> String {
    let mut out = String::new();
    for (name, value) in &u.defines {
        out.push_str(&format!("#define {name} {value}\n"));
    }
    for item in &u.items {
        match item {
            Item::IndexSets(defs) => {
                out.push_str("index_set ");
                let parts: Vec<String> = defs.iter().map(index_set_to_string).collect();
                out.push_str(&parts.join(", "));
                out.push_str(";\n");
            }
            Item::Var(v) => {
                out.push_str(&var_to_string(v));
                out.push('\n');
            }
            Item::Func(f) => {
                out.push_str(&func_to_string(f));
                out.push('\n');
            }
            Item::Map(m) => {
                out.push_str(&map_to_string(m));
                out.push('\n');
            }
        }
    }
    out
}

fn index_set_to_string(d: &IndexSetDef) -> String {
    let init = match &d.init {
        IndexSetInit::Range(lo, hi) => format!("{{{}..{}}}", expr(lo), expr(hi)),
        IndexSetInit::List(items) => {
            format!("{{{}}}", items.iter().map(expr).collect::<Vec<_>>().join(", "))
        }
        IndexSetInit::Alias(a) => a.clone(),
    };
    format!("{}:{} = {}", d.name, d.elem, init)
}

fn type_name(t: Type) -> &'static str {
    match t {
        Type::Int => "int",
        Type::Float => "float",
        Type::Void => "void",
    }
}

fn var_to_string(v: &VarDecl) -> String {
    let dims: String = v.dims.iter().map(|d| format!("[{}]", expr(d))).collect();
    match &v.init {
        Some(e) => format!("{} {}{} = {};", type_name(v.ty), v.name, dims, expr(e)),
        None => format!("{} {}{};", type_name(v.ty), v.name, dims),
    }
}

fn func_to_string(f: &FuncDef) -> String {
    let params: Vec<String> =
        f.params.iter().map(|(t, n)| format!("{} {}", type_name(*t), n)).collect();
    format!(
        "{} {}({}) {}",
        type_name(f.ret),
        f.name,
        params.join(", "),
        block_to_string(&f.body, 0)
    )
}

fn map_to_string(m: &MapSection) -> String {
    let mut out = format!("map ({}) {{\n", m.idxs.join(", "));
    for d in &m.decls {
        out.push_str(&format!(
            "    {} ({}) {} :- {};\n",
            d.kind.keyword(),
            d.idxs.join(", "),
            pattern(&d.target),
            pattern(&d.source)
        ));
    }
    out.push('}');
    out
}

fn pattern(p: &ArrayPattern) -> String {
    let subs: String = p.subs.iter().map(|s| format!("[{}]", expr(s))).collect();
    format!("{}{}", p.array, subs)
}

fn block_to_string(b: &Block, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    let inner = "    ".repeat(indent + 1);
    let mut out = String::from("{\n");
    for s in &b.stmts {
        out.push_str(&inner);
        out.push_str(&stmt_to_string(s, indent + 1));
        out.push('\n');
    }
    out.push_str(&pad);
    out.push('}');
    out
}

/// Render a statement at an indent level.
pub fn stmt_to_string(s: &Stmt, indent: usize) -> String {
    match s {
        Stmt::Empty => ";".into(),
        Stmt::Expr(e) => format!("{};", expr(e)),
        Stmt::Decl(v) => var_to_string(v),
        Stmt::IndexSets(defs) => {
            let parts: Vec<String> = defs.iter().map(index_set_to_string).collect();
            format!("index_set {};", parts.join(", "))
        }
        Stmt::Block(b) => block_to_string(b, indent),
        Stmt::If { cond, then_branch, else_branch, .. } => {
            let mut out = format!(
                "if ({}) {}",
                expr(cond),
                stmt_to_string(then_branch, indent)
            );
            if let Some(e) = else_branch {
                out.push_str(&format!(" else {}", stmt_to_string(e, indent)));
            }
            out
        }
        Stmt::While { cond, body, .. } => {
            format!("while ({}) {}", expr(cond), stmt_to_string(body, indent))
        }
        Stmt::For { init, cond, step, body, .. } => {
            let p = |o: &Option<Expr>| o.as_ref().map(expr).unwrap_or_default();
            format!(
                "for ({}; {}; {}) {}",
                p(init),
                p(cond),
                p(step),
                stmt_to_string(body, indent)
            )
        }
        Stmt::Return(e, _) => match e {
            Some(e) => format!("return {};", expr(e)),
            None => "return;".into(),
        },
        Stmt::Break(_) => "break;".into(),
        Stmt::Continue(_) => "continue;".into(),
        Stmt::Uc(uc) => uc_to_string(uc, indent),
    }
}

fn uc_to_string(uc: &UcStmt, indent: usize) -> String {
    let star = if uc.star { "*" } else { "" };
    let mut out = format!("{}{} ({})", star, uc.kind.keyword(), uc.idxs.join(", "));
    let inner = "    ".repeat(indent + 1);
    for arm in &uc.arms {
        match &arm.pred {
            Some(p) => {
                out.push_str(&format!(
                    "\n{inner}st ({}) {}",
                    expr(p),
                    stmt_to_string(&arm.body, indent + 1)
                ));
            }
            None => {
                out.push(' ');
                out.push_str(&stmt_to_string(&arm.body, indent));
            }
        }
    }
    if let Some(o) = &uc.others {
        out.push_str(&format!("\n{inner}others {}", stmt_to_string(o, indent + 1)));
    }
    out
}

/// Render an expression (fully parenthesised where precedence matters).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v, _) => v.to_string(),
        Expr::FloatLit(v, _) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Inf(_) => "INF".into(),
        Expr::Ident(n, _) => n.clone(),
        Expr::Index { base, subs, .. } => {
            let s: String = subs.iter().map(|x| format!("[{}]", expr(x))).collect();
            format!("{base}{s}")
        }
        Expr::Call { name, args, .. } => {
            format!("{name}({})", args.iter().map(expr).collect::<Vec<_>>().join(", "))
        }
        Expr::Unary { op, expr: inner, .. } => {
            let sym = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
            };
            format!("{sym}{}", atom(inner))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {} {}", atom(lhs), op.symbol(), atom(rhs))
        }
        Expr::Ternary { cond, then_e, else_e, .. } => {
            format!("{} ? {} : {}", atom(cond), expr(then_e), expr(else_e))
        }
        Expr::Assign { target, op, value, .. } => {
            let sym = match op {
                None => "=".to_string(),
                Some(o) => format!("{}=", o.symbol()),
            };
            format!("{} {} {}", expr(target), sym, expr(value))
        }
        Expr::Reduce(r) => {
            let op = r.op.to_string();
            let mut body = String::new();
            let simple = r.arms.len() == 1 && r.arms[0].0.is_none();
            if simple {
                body.push_str(&format!("; {}", expr(&r.arms[0].1)));
            } else {
                for (p, o) in &r.arms {
                    match p {
                        Some(p) => body.push_str(&format!(" st ({}) {}", expr(p), expr(o))),
                        None => body.push_str(&format!("; {}", expr(o))),
                    }
                }
            }
            if let Some(o) = &r.others {
                body.push_str(&format!(" others {}", expr(o)));
            }
            format!("{op}({}{body})", r.idxs.join(", "))
        }
    }
}

/// Parenthesise compound subexpressions.
fn atom(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Ternary { .. } | Expr::Assign { .. } => {
            format!("({})", expr(e))
        }
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostics;
    use crate::parser::parse;

    /// parse ∘ print ∘ parse must be a fixed point of the AST (modulo
    /// spans, which differ; we compare the *printed* forms).
    fn roundtrip(src: &str) {
        let mut d = Diagnostics::default();
        let u1 = parse(src, &mut d).expect("first parse");
        let printed = unit_to_string(&u1);
        let mut d2 = Diagnostics::default();
        let u2 = parse(&printed, &mut d2).unwrap_or_else(|| panic!("reparse failed: {d2}\n{printed}"));
        assert_eq!(unit_to_string(&u2), printed, "pretty-print not idempotent");
    }

    #[test]
    fn roundtrips() {
        roundtrip("#define N 8\nindex_set I:i = {0..N-1}, K:k = {4,2,9};\nint a[N];\nmain() { par (I) st (a[i] != 0) a[i] = 1 / a[i]; }");
        roundtrip("index_set I:i = {0..9}, J:j = I;\nint a[10], s;\nmain() { s = $+(I st (a[i] > 0) a[i] others -a[i]); }");
        roundtrip("#define N 4\nindex_set I:i = {0..N-1}, J:j = I;\nint a[N][N];\nmain() { solve (I, J) a[i][j] = (i == 0 || j == 0) ? 1 : a[i-1][j] + a[i-1][j-1] + a[i][j-1]; }");
        roundtrip("index_set I:i = {0..9};\nint x[10];\nmain() { *oneof (I)\n st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);\n st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);\n}");
        roundtrip("#define N 8\nindex_set I:i = {0..N-1};\nint a[N], b[N];\nmap (I) { permute (I) b[i+1] :- a[i]; }\nmain() { while (1) break; }");
    }

    #[test]
    fn expr_precedence_parens() {
        let mut d = Diagnostics::default();
        let u = parse("main() { int x; x = (1 + 2) * 3; }", &mut d).unwrap();
        let printed = unit_to_string(&u);
        assert!(printed.contains("(1 + 2) * 3"), "got: {printed}");
    }
}
