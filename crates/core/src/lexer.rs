//! The UC lexer.
//!
//! Hand-written scanner producing a token vector. Handles C and C++
//! comments, `#define NAME <integer>` directives (the only preprocessor
//! feature the paper's programs use — they configure problem sizes with
//! it), decimal/float literals, and the `$op` reduction sigils.

use crate::diag::Diagnostics;
use crate::span::Span;
use crate::token::{RedOpToken, Token, TokenKind};

/// Output of lexing: tokens plus the `#define` constant table.
#[derive(Debug, Clone)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    /// `#define` name → integer value, in source order.
    pub defines: Vec<(String, i64)>,
}

/// Lex UC source. Lexical errors are reported in `diags`; scanning
/// continues so later errors are also found.
pub fn lex(src: &str, diags: &mut Diagnostics) -> LexOutput {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1, diags }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    diags: &'a mut Diagnostics,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> LexOutput {
        let mut tokens = Vec::new();
        let mut defines = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start, line, col),
                });
                break;
            };
            match c {
                b'#' => {
                    if let Some((name, value)) = self.directive() {
                        defines.push((name, value));
                    }
                }
                b'0'..=b'9' => {
                    let kind = self.number();
                    tokens.push(self.tok(kind, start, line, col));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let kind = self.ident();
                    tokens.push(self.tok(kind, start, line, col));
                }
                b'$' => {
                    self.bump();
                    let kind = match self.peek() {
                        Some(b'+') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Add)
                        }
                        Some(b'*') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Mul)
                        }
                        Some(b'>') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Max)
                        }
                        Some(b'<') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Min)
                        }
                        Some(b'^') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Xor)
                        }
                        Some(b',') => {
                            self.bump();
                            TokenKind::Reduce(RedOpToken::Arb)
                        }
                        Some(b'&') => {
                            self.bump();
                            if self.peek() == Some(b'&') {
                                self.bump();
                            } else {
                                self.diags.error(
                                    Span::new(start, self.pos, line, col),
                                    "expected `$&&` (logical-and reduction)",
                                );
                            }
                            TokenKind::Reduce(RedOpToken::And)
                        }
                        Some(b'|') => {
                            self.bump();
                            if self.peek() == Some(b'|') {
                                self.bump();
                            } else {
                                self.diags.error(
                                    Span::new(start, self.pos, line, col),
                                    "expected `$||` (logical-or reduction)",
                                );
                            }
                            TokenKind::Reduce(RedOpToken::Or)
                        }
                        _ => {
                            self.diags.error(
                                Span::new(start, self.pos, line, col),
                                "`$` must be followed by a reduction operator (+ * && || > < ^ ,)",
                            );
                            continue;
                        }
                    };
                    tokens.push(self.tok(kind, start, line, col));
                }
                _ => {
                    if let Some(kind) = self.punct() {
                        tokens.push(self.tok(kind, start, line, col));
                    }
                }
            }
        }
        LexOutput { tokens, defines }
    }

    fn tok(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        Token { kind, span: Span::new(start, self.pos, line, col) }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) {
        if let Some(&c) = self.src.get(self.pos) {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.bump(),
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, col, start) = (self.line, self.col, self.pos);
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.peek() {
                        if c == b'*' && self.peek2() == Some(b'/') {
                            self.bump();
                            self.bump();
                            closed = true;
                            break;
                        }
                        self.bump();
                    }
                    if !closed {
                        self.diags.error(
                            Span::new(start, self.pos, line, col),
                            "unterminated block comment",
                        );
                    }
                }
                _ => break,
            }
        }
    }

    /// `#define NAME <integer>`; other directives are reported as errors.
    fn directive(&mut self) -> Option<(String, i64)> {
        let (line, col, start) = (self.line, self.col, self.pos);
        self.bump(); // '#'
        let word = self.word();
        if word != "define" {
            self.diags.error(
                Span::new(start, self.pos, line, col),
                format!("unsupported preprocessor directive `#{word}` (only #define NAME <int>)"),
            );
            self.skip_to_eol();
            return None;
        }
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
        let name = self.word();
        if name.is_empty() {
            self.diags.error(Span::new(start, self.pos, line, col), "#define needs a name");
            self.skip_to_eol();
            return None;
        }
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
        let mut digits = String::new();
        if self.peek() == Some(b'-') {
            digits.push('-');
            self.bump();
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        self.skip_to_eol();
        match digits.parse::<i64>() {
            Ok(v) => Some((name, v)),
            Err(_) => {
                self.diags.error(
                    Span::new(start, self.pos, line, col),
                    format!("#define {name}: expected an integer value"),
                );
                None
            }
        }
    }

    fn skip_to_eol(&mut self) {
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                self.pos = save; // not an exponent; leave `e` for the ident lexer
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            TokenKind::FloatLit(text.parse().unwrap_or(0.0))
        } else {
            TokenKind::IntLit(text.parse().unwrap_or(0))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let w = self.word();
        TokenKind::keyword(&w).unwrap_or(TokenKind::Ident(w))
    }

    fn punct(&mut self) -> Option<TokenKind> {
        use TokenKind::*;
        let (line, col, start) = (self.line, self.col, self.pos);
        let c = self.peek()?;
        self.bump();
        let two = |l: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Some(match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b':' => two(self, b'-', MapsTo, Colon),
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    DotDot
                } else {
                    self.diags.error(
                        Span::new(start, self.pos, line, col),
                        "stray `.` (ranges are written `{lo..hi}`)",
                    );
                    return None;
                }
            }
            b'=' => two(self, b'=', EqEq, Assign),
            b'!' => two(self, b'=', NotEq, Bang),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.bump();
                    Shl
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    Shr
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, b'=', PlusAssign, Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    MinusMinus
                } else {
                    two(self, b'=', MinusAssign, Minus)
                }
            }
            b'*' => two(self, b'=', StarAssign, Star),
            b'/' => two(self, b'=', SlashAssign, Slash),
            b'%' => two(self, b'=', PercentAssign, Percent),
            b'&' => two(self, b'&', AmpAmp, Amp),
            b'|' => two(self, b'|', PipePipe, Pipe),
            b'^' => Caret,
            b'~' => Tilde,
            other => {
                self.diags.error(
                    Span::new(start, self.pos, line, col),
                    format!("unexpected character `{}`", other as char),
                );
                return None;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut d = Diagnostics::default();
        let out = lex(src, &mut d);
        assert!(!d.has_errors(), "unexpected lex errors: {d}");
        out.tokens.into_iter().map(|t| t.kind).filter(|k| *k != Eof).collect()
    }

    #[test]
    fn lexes_index_set_declaration() {
        let ks = kinds("index_set I:i = {0..N-1}, idx2:j = {4,2,9};");
        assert_eq!(
            ks,
            vec![
                KwIndexSet,
                Ident("I".into()),
                Colon,
                Ident("i".into()),
                Assign,
                LBrace,
                IntLit(0),
                DotDot,
                Ident("N".into()),
                Minus,
                IntLit(1),
                RBrace,
                Comma,
                Ident("idx2".into()),
                Colon,
                Ident("j".into()),
                Assign,
                LBrace,
                IntLit(4),
                Comma,
                IntLit(2),
                Comma,
                IntLit(9),
                RBrace,
                Semi,
            ]
        );
    }

    #[test]
    fn lexes_reductions() {
        let ks = kinds("$+ $* $&& $|| $> $< $^ $,");
        use crate::token::RedOpToken::*;
        assert_eq!(
            ks,
            vec![
                Reduce(Add),
                Reduce(Mul),
                Reduce(And),
                Reduce(Or),
                Reduce(Max),
                Reduce(Min),
                Reduce(Xor),
                Reduce(Arb),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42 3.5 1e3 2E-2 7"), vec![
            IntLit(42),
            FloatLit(3.5),
            FloatLit(1000.0),
            FloatLit(0.02),
            IntLit(7)
        ]);
    }

    #[test]
    fn number_then_ident_e() {
        // `3element` lexes as 3 then `element` (error-free split).
        assert_eq!(kinds("3 elements"), vec![IntLit(3), Ident("elements".into())]);
    }

    #[test]
    fn defines_collected() {
        let mut d = Diagnostics::default();
        let out = lex("#define N 32\n#define LOGN 5\nint a[N];", &mut d);
        assert!(!d.has_errors());
        assert_eq!(out.defines, vec![("N".to_string(), 32), ("LOGN".to_string(), 5)]);
        assert!(out.tokens.iter().any(|t| t.kind == KwInt));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a /* inline */ b // trailing\nc");
        assert_eq!(ks, vec![Ident("a".into()), Ident("b".into()), Ident("c".into())]);
    }

    #[test]
    fn maps_to_vs_colon() {
        assert_eq!(kinds("a :- b : c"), vec![
            Ident("a".into()),
            MapsTo,
            Ident("b".into()),
            Colon,
            Ident("c".into())
        ]);
    }

    #[test]
    fn operators() {
        let ks = kinds("a += b << 2 && c || !d ^ ~e % 3 != f >= g <= h");
        assert!(ks.contains(&PlusAssign));
        assert!(ks.contains(&Shl));
        assert!(ks.contains(&AmpAmp));
        assert!(ks.contains(&PipePipe));
        assert!(ks.contains(&Bang));
        assert!(ks.contains(&Caret));
        assert!(ks.contains(&Tilde));
        assert!(ks.contains(&NotEq));
        assert!(ks.contains(&Ge));
        assert!(ks.contains(&Le));
    }

    #[test]
    fn errors_reported() {
        let mut d = Diagnostics::default();
        lex("int a @ b;", &mut d);
        assert!(d.has_errors());
        let mut d = Diagnostics::default();
        lex("/* never closed", &mut d);
        assert!(d.has_errors());
        let mut d = Diagnostics::default();
        lex("#include <stdio.h>", &mut d);
        assert!(d.has_errors());
        let mut d = Diagnostics::default();
        lex("$#", &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn spans_track_lines() {
        let mut d = Diagnostics::default();
        let out = lex("a\n  b", &mut d);
        assert_eq!(out.tokens[0].span.line, 1);
        assert_eq!(out.tokens[1].span.line, 2);
        assert_eq!(out.tokens[1].span.col, 3);
    }
}
