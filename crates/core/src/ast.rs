//! Abstract syntax of UC.
//!
//! UC is C restricted (no `goto`, no general pointers) and extended with
//! index sets, reductions, the four dependency constructs (`par`, `seq`,
//! `solve`, `oneof`, each optionally `*`-iterated) and the map section.

use crate::span::Span;
use crate::token::RedOpToken;

/// Scalar types of UC (arrays are types plus dimension lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
    Void,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    pub items: Vec<Item>,
    /// `#define` constants, in source order, seeded before anything else.
    pub defines: Vec<(String, i64)>,
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    IndexSets(Vec<IndexSetDef>),
    Var(VarDecl),
    Func(FuncDef),
    /// The optional map section of §4.
    Map(MapSection),
}

/// One `NAME : elem = init` definition inside an `index_set` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSetDef {
    pub name: String,
    pub elem: String,
    pub init: IndexSetInit,
    pub span: Span,
}

/// The right-hand side of an index-set definition.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexSetInit {
    /// `{lo .. hi}` — inclusive on both ends, like the paper's `{0..N-1}`.
    Range(Expr, Expr),
    /// `{4, 2, 9}` — explicit ordered elements.
    List(Vec<Expr>),
    /// `= J` — same elements as a previously declared set.
    Alias(String),
}

/// A variable declaration (scalar or array).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub ty: Type,
    pub name: String,
    /// Per-dimension extents; empty for scalars.
    pub dims: Vec<Expr>,
    pub init: Option<Expr>,
    pub span: Span,
}

/// A function definition. The paper's programs use `main()` plus small
/// helpers; parameters are by-value scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub ret: Type,
    pub name: String,
    pub params: Vec<(Type, String)>,
    pub body: Block,
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Expr(Expr),
    Decl(VarDecl),
    IndexSets(Vec<IndexSetDef>),
    Block(Block),
    If { cond: Expr, then_branch: Box<Stmt>, else_branch: Option<Box<Stmt>>, span: Span },
    While { cond: Expr, body: Box<Stmt>, span: Span },
    For {
        init: Option<Expr>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
        span: Span,
    },
    Return(Option<Expr>, Span),
    Break(Span),
    Continue(Span),
    /// `par` / `seq` / `solve` / `oneof`.
    Uc(UcStmt),
    /// An empty statement `;`.
    Empty,
}

/// Which UC construct a [`UcStmt`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UcKind {
    Par,
    Seq,
    Solve,
    Oneof,
}

impl UcKind {
    pub fn keyword(self) -> &'static str {
        match self {
            UcKind::Par => "par",
            UcKind::Seq => "seq",
            UcKind::Solve => "solve",
            UcKind::Oneof => "oneof",
        }
    }
}

/// One `st (pred) stmt` arm. A construct with a bare statement is a single
/// arm with no predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScBlock {
    pub pred: Option<Expr>,
    pub body: Stmt,
}

/// A `[*] par|seq|solve|oneof ( I, J, ... ) arms [others stmt]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UcStmt {
    pub kind: UcKind,
    pub star: bool,
    pub idxs: Vec<String>,
    pub arms: Vec<ScBlock>,
    pub others: Option<Box<Stmt>>,
    pub span: Span,
}

/// Unary expression operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
    BitNot,
}

/// Binary expression operators (C subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Mul,
    Div,
    Mod,
    Add,
    Sub,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

impl BinaryOp {
    /// C operator spelling.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Mul => "*",
            Div => "/",
            Mod => "%",
            Add => "+",
            Sub => "-",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Whether the result is boolean (0/1) in C.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64, Span),
    FloatLit(f64, Span),
    /// The predefined `INF` constant of §3.2.
    Inf(Span),
    Ident(String, Span),
    /// `a[e][e]...`
    Index { base: String, subs: Vec<Expr>, span: Span },
    Call { name: String, args: Vec<Expr>, span: Span },
    Unary { op: UnaryOp, expr: Box<Expr>, span: Span },
    Binary { op: BinaryOp, lhs: Box<Expr>, rhs: Box<Expr>, span: Span },
    Ternary { cond: Box<Expr>, then_e: Box<Expr>, else_e: Box<Expr>, span: Span },
    /// `lhs = value` or a compound assignment `lhs op= value`.
    Assign { target: Box<Expr>, op: Option<BinaryOp>, value: Box<Expr>, span: Span },
    Reduce(Box<ReduceExpr>),
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::FloatLit(_, s)
            | Expr::Inf(s)
            | Expr::Ident(_, s)
            | Expr::Index { span: s, .. }
            | Expr::Call { span: s, .. }
            | Expr::Unary { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Ternary { span: s, .. }
            | Expr::Assign { span: s, .. } => *s,
            Expr::Reduce(r) => r.span,
        }
    }
}

/// A reduction expression `$op ( I, J [st (p) e]+ [others e] )` or the
/// simple form `$op ( I ; e )`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceExpr {
    pub op: RedOpToken,
    pub idxs: Vec<String>,
    /// `(predicate, operand)` arms; a simple reduction has one arm with no
    /// predicate.
    pub arms: Vec<(Option<Expr>, Expr)>,
    pub others: Option<Expr>,
    pub span: Span,
}

/// The declarative map section: `map (I) { permute (I) b[i+1] :- a[i]; }`.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSection {
    pub idxs: Vec<String>,
    pub decls: Vec<MapDecl>,
    pub span: Span,
}

/// Which of the three mapping classes of §4 a declaration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    Permute,
    Fold,
    Copy,
}

impl MapKind {
    pub fn keyword(self) -> &'static str {
        match self {
            MapKind::Permute => "permute",
            MapKind::Fold => "fold",
            MapKind::Copy => "copy",
        }
    }
}

/// One mapping declaration: `kind (I) target_pattern :- source_pattern;`.
#[derive(Debug, Clone, PartialEq)]
pub struct MapDecl {
    pub kind: MapKind,
    pub idxs: Vec<String>,
    /// The array being re-mapped, with index expressions over `idxs`.
    pub target: ArrayPattern,
    /// The array it is aligned against.
    pub source: ArrayPattern,
    pub span: Span,
}

/// `name[e][e]...` in a map declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayPattern {
    pub array: String,
    pub subs: Vec<Expr>,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_metadata() {
        assert_eq!(BinaryOp::Add.symbol(), "+");
        assert_eq!(BinaryOp::Shl.symbol(), "<<");
        assert!(BinaryOp::Le.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn uc_kind_keywords() {
        assert_eq!(UcKind::Par.keyword(), "par");
        assert_eq!(UcKind::Solve.keyword(), "solve");
        assert_eq!(MapKind::Copy.keyword(), "copy");
    }

    #[test]
    fn expr_spans() {
        let s = Span::new(1, 2, 1, 2);
        assert_eq!(Expr::IntLit(4, s).span(), s);
        let e = Expr::Unary { op: UnaryOp::Neg, expr: Box::new(Expr::IntLit(4, s)), span: s };
        assert_eq!(e.span(), s);
    }
}
