//! Boundary behaviour of the executor's resource budgets: each limit is
//! exact — spending a budget to the last unit succeeds, the first unit
//! past it traps — and every trap is a structured error.

use uc_cm::CmError;
use uc_core::{ExecConfig, ExecLimits, Program, RuntimeError};

fn with_limits(src: &str, limits: ExecLimits) -> Program {
    let cfg = ExecConfig { limits, ..Default::default() };
    Program::compile_with(src, cfg).unwrap_or_else(|d| panic!("compile failed:\n{d}"))
}

/// A recursion of depth `n` plus the `main` activation itself.
const RECURSE: &str = r#"
    int out;
    int f(int n) {
        if (n <= 1) return 1;
        return f(n - 1) + 1;
    }
    main() { out = f(DEPTH); }
"#;

fn recurse_to(depth: i64, max_call_depth: usize) -> Result<(), uc_core::RunError> {
    let src = RECURSE.replace("DEPTH", &depth.to_string());
    let limits = ExecLimits { max_call_depth, ..Default::default() };
    with_limits(&src, limits).run()
}

#[test]
fn recursion_at_exactly_max_depth_succeeds() {
    // f(7) keeps 7 activations live below main: 8 frames == the budget.
    recurse_to(7, 8).expect("a stack exactly at the budget is legal");
}

#[test]
fn recursion_one_past_max_depth_traps() {
    let err = recurse_to(8, 8).expect_err("the ninth frame must trap");
    assert!(
        matches!(err.error, RuntimeError::CallDepthExceeded { max: 8 }),
        "{err}"
    );
    assert!(err.to_string().contains("budget exceeded"), "{err}");
}

const MACHINE_WORK: &str = r#"
    #define N 16
    index_set I:i = {0..N-1};
    int a[N], s;
    main() {
        par (I) a[i] = i * 3;
        s = $+(I; a[i]);
    }
"#;

#[test]
fn zero_fuel_traps_on_the_first_machine_op() {
    let limits = ExecLimits { fuel: Some(0), ..Default::default() };
    let err = with_limits(MACHINE_WORK, limits).run().expect_err("no fuel");
    assert!(
        matches!(err.error, RuntimeError::Cm(CmError::FuelExhausted { limit: 0 })),
        "{err}"
    );
}

#[test]
fn fuel_boundary_is_exact() {
    // Measure the program's true cost unmetered, then re-run with the
    // budget set to exactly that: it must succeed. One cycle less traps.
    let mut free = with_limits(MACHINE_WORK, ExecLimits::default());
    free.run().expect("unlimited run succeeds");
    let cost = free.cycles();
    assert!(cost > 0);

    let exact = ExecLimits { fuel: Some(cost), ..Default::default() };
    let mut p = with_limits(MACHINE_WORK, exact);
    p.run().expect("spending exactly the budget is fine");
    assert_eq!(p.read_int("s"), Some((0..16).map(|i| 3 * i).sum()));

    let starved = ExecLimits { fuel: Some(cost - 1), ..Default::default() };
    let err = with_limits(MACHINE_WORK, starved).run().expect_err("one short");
    assert!(
        matches!(err.error, RuntimeError::Cm(CmError::FuelExhausted { .. })),
        "{err}"
    );
}

#[test]
fn oversized_index_sets_are_rejected_at_compile_time() {
    // Index-set bounds are compile-time constants, so the front end can
    // (and must) refuse a 2^24-element materialisation before any
    // allocation happens. The executor keeps an equivalent runtime cap
    // as defence in depth behind this check.
    let src = "index_set J:j = {0..16777216};\nint s;\nmain() { s = $+(J; 1); }";
    let diags = Program::compile(src).expect_err("2^24 + 1 elements must be refused");
    let msg = diags.to_string();
    assert!(msg.contains("materialises") && msg.contains("limit"), "{msg}");
}

#[test]
fn index_set_budget_errors_read_as_budget_errors() {
    let e = RuntimeError::IndexSetTooLarge { name: "J".into(), len: 1 << 24, max: 1 << 22 };
    assert!(e.to_string().contains("budget exceeded"), "{e}");
}

#[test]
fn memory_budget_flows_through_to_the_machine() {
    // 4096 ints = 32 KiB of field storage: over a 16 KiB budget the
    // global allocation itself is refused, as a compile diagnostic.
    let src = r#"
        #define N 4096
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = i; }
    "#;
    let limits = ExecLimits { max_mem_bytes: Some(16 * 1024), ..Default::default() };
    let cfg = ExecConfig { limits, ..Default::default() };
    let diags = Program::compile_with(src, cfg).expect_err("allocation must be refused");
    assert!(diags.to_string().contains("budget exceeded"), "{diags}");
}

#[test]
fn wall_clock_deadline_bounds_front_end_loops() {
    let limits = ExecLimits { timeout_ms: Some(50), ..Default::default() };
    let err = with_limits("main() { while (1) ; }", limits)
        .run()
        .expect_err("the spin must hit either the deadline or the iteration cap");
    assert!(
        matches!(
            err.error,
            RuntimeError::Cm(CmError::DeadlineExceeded { .. }) | RuntimeError::IterationLimit(_)
        ),
        "{err}"
    );
}
