//! Error behaviour: compile-time diagnostics and runtime failures, each
//! exercising a rule of the paper.

use uc_core::{Program, RuntimeError};

fn compile_err(src: &str) -> String {
    match Program::compile(src) {
        Err(d) => d.to_string(),
        Ok(_) => panic!("expected compile failure"),
    }
}

fn runtime_err(src: &str) -> RuntimeError {
    let mut p = Program::compile(src).unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().expect_err("expected runtime failure").error
}

// ---- compile-time -----------------------------------------------------------

#[test]
fn goto_is_rejected() {
    let msg = compile_err("main() { goto done; }");
    assert!(msg.contains("goto"), "{msg}");
}

#[test]
fn unknown_index_set() {
    let msg = compile_err("main() { par (Nope) ; }");
    assert!(msg.contains("Nope"), "{msg}");
}

#[test]
fn index_element_is_read_only() {
    let msg = compile_err("index_set I:i = {0..3};\nmain() { par (I) i = 0; }");
    assert!(msg.contains("read-only"), "{msg}");
}

#[test]
fn assignment_to_define_constant() {
    let msg = compile_err("#define N 4\nmain() { N = 5; }");
    assert!(msg.contains("constant"), "{msg}");
}

#[test]
fn wrong_subscript_arity() {
    let msg = compile_err(
        "#define N 4\nint d[N][N];\nindex_set I:i = {0..N-1};\nmain() { par (I) d[i] = 0; }",
    );
    assert!(msg.contains("rank"), "{msg}");
}

#[test]
fn empty_index_set_range() {
    let msg = compile_err("index_set I:i = {5..2};\nmain() {}");
    assert!(msg.contains("empty") || msg.contains("reversed"), "{msg}");
}

#[test]
fn solve_double_assignment() {
    let msg = compile_err(
        "#define N 4\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { solve (I) { a[i] = 1; a[i] = 2; } }",
    );
    assert!(msg.contains("more than one"), "{msg}");
}

#[test]
fn solve_with_loops_inside() {
    let msg = compile_err(
        "#define N 4\nindex_set I:i = {0..N-1};\nint a[N];\nmain() { solve (I) for (;;) a[i] = 0; }",
    );
    assert!(msg.contains("assignment"), "{msg}");
}

#[test]
fn bad_reduction_syntax() {
    let msg = compile_err(
        "index_set I:i = {0..3};\nint s;\nmain() { s = $+(I i); }",
    );
    assert!(msg.contains(";"), "{msg}");
}

#[test]
fn unsupported_preprocessor() {
    let msg = compile_err("#include <stdio.h>\nmain() {}");
    assert!(msg.contains("include") || msg.contains("directive"), "{msg}");
}

#[test]
fn negative_array_extent() {
    let msg = compile_err("#define N 0\nint a[N];\nmain() {}");
    assert!(msg.contains("positive"), "{msg}");
}

#[test]
fn seq_over_multiple_sets() {
    let msg = compile_err(
        "index_set I:i = {0..3}, J:j = I;\nint a[4];\nmain() { seq (I, J) a[i] = j; }",
    );
    assert!(msg.contains("single"), "{msg}");
}

#[test]
fn diagnostics_carry_positions() {
    let msg = compile_err("int a[4];\n\nmain() { b = 1; }");
    assert!(msg.contains("3:"), "line number expected: {msg}");
}

// ---- runtime ----------------------------------------------------------------

#[test]
fn distinct_multiple_assignment() {
    let err = runtime_err(
        r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], b[N];
        main() {
            par (I) b[i] = i;
            par (I, J) a[i] = b[j];
        }
        "#,
    );
    assert!(matches!(err, RuntimeError::MultipleAssignment { ref name } if name == "a"), "{err}");
}

#[test]
fn out_of_bounds_parallel_write() {
    let err = runtime_err(
        r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i + 1] = 0; }
        "#,
    );
    assert!(matches!(err, RuntimeError::OutOfBounds { ref name } if name == "a"), "{err}");
}

#[test]
fn out_of_bounds_front_end_access() {
    let err = runtime_err(
        r#"
        #define N 4
        int a[N], x;
        main() { x = a[9]; }
        "#,
    );
    assert!(matches!(err, RuntimeError::OutOfBounds { .. }), "{err}");
}

#[test]
fn division_by_zero_parallel() {
    let err = runtime_err(
        r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = 10 / i; }
        "#,
    );
    assert!(matches!(err, RuntimeError::Cm(_)), "{err}");
}

#[test]
fn division_by_zero_guarded_is_fine() {
    let mut p = Program::compile(
        r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) st (i != 0) a[i] = 12 / i; }
        "#,
    )
    .unwrap();
    p.run().unwrap();
    assert_eq!(p.read_int_array("a").unwrap(), vec![0, 12, 6, 4]);
}

#[test]
fn division_by_zero_front_end() {
    let err = runtime_err("int x;\nmain() { x = 1 / (x - x); }");
    assert!(matches!(err, RuntimeError::DivideByZero), "{err}");
}

#[test]
fn iteration_limit_on_divergent_star_par() {
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { *par (I) st (1) a[i] = a[i] + 1; }
    "#;
    let limits = uc_core::ExecLimits { max_iterations: 100, ..Default::default() };
    let cfg = uc_core::ExecConfig { limits, ..Default::default() };
    let mut p = Program::compile_with(src, cfg).unwrap();
    let err = p.run().expect_err("must hit the iteration cap");
    assert!(matches!(err.error, RuntimeError::IterationLimit(_)), "{err}");
}

#[test]
fn iteration_limit_on_infinite_while() {
    let src = "main() { while (1) ; }";
    let limits = uc_core::ExecLimits { max_iterations: 100, ..Default::default() };
    let cfg = uc_core::ExecConfig { limits, ..Default::default() };
    let mut p = Program::compile_with(src, cfg).unwrap();
    let err = p.run().expect_err("must hit the iteration cap");
    assert!(matches!(err.error, RuntimeError::IterationLimit(_)));
}

#[test]
fn front_end_control_inside_par_rejected() {
    let err = runtime_err(
        r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) while (a[i] < 3) a[i] += 1; }
        "#,
    );
    assert!(matches!(err, RuntimeError::NotSupported(_)), "{err}");
}

#[test]
fn scalar_assigned_parallel_value_rejected() {
    let err = runtime_err(
        r#"
        #define N 4
        index_set I:i = {0..N-1};
        int s;
        main() { par (I) s = i; }
        "#,
    );
    assert!(matches!(err, RuntimeError::NotSupported(_)), "{err}");
}

#[test]
fn runtime_errors_display_cleanly() {
    let e = RuntimeError::MultipleAssignment { name: "a".into() };
    assert!(e.to_string().contains("distinct values"));
    let e = RuntimeError::OutOfBounds { name: "a".into() };
    assert!(e.to_string().contains("bounds"));
    let e = RuntimeError::IterationLimit("*par");
    assert!(e.to_string().contains("*par"));
}

#[test]
fn compile_error_recovery_reports_several() {
    let msg = compile_err(
        "index_set I:i = {0..3};\nmain() { x = 1; y = 2; par (Q) ; }",
    );
    assert!(msg.matches("error").count() >= 3, "{msg}");
}
