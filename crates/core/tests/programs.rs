//! End-to-end tests: the example programs of the paper, §3.
//!
//! Each test compiles and runs a verbatim (or near-verbatim) UC program
//! from the paper and checks the result against a sequential oracle.

use uc_core::{ExecConfig, Program};

fn run(src: &str) -> Program {
    let mut p = Program::compile(src).unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    p
}

#[test]
fn simple_par_assignment() {
    let mut p = run(r#"
        #define N 10
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = i * i; }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a, (0..10).map(|i| i * i).collect::<Vec<i64>>());
}

#[test]
fn par_with_predicate_and_others() {
    // §3.4: odd elements 0, others 1.
    let mut p = run(r#"
        #define N 10
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I)
                st (i % 2 == 1) a[i] = 0;
                others a[i] = 1;
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a, vec![1, 0, 1, 0, 1, 0, 1, 0, 1, 0]);
}

#[test]
fn reciprocal_of_nonzero() {
    // §3.4: par (I) st (a[i]!=0) a[i] = 1.0/a[i] — on ints, 4/x style.
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I) a[i] = i - 2;          /* -2 -1 0 1 2 3 */
            par (I) st (a[i] != 0) a[i] = 12 / a[i];
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a, vec![-6, -12, 0, 12, 6, 4]);
}

#[test]
fn figure1_reductions() {
    // The reduction showcase of Figure 1.
    let src = r#"
        #define N 10
        index_set I:i = {0..9}, J:j = I;
        int s, min, first, arb, last, a[N];
        float avg;
        main() {
            par (I) a[i] = (i * 3 + 4) % 7;   /* 4 0 3 6 2 5 1 4 0 3 */
            s = $+(I; i);
            avg = $+(I; i) / 10.0;
            min = $<(I; a[i]);
            first = $<(I st (a[i] == min) i);
            arb = $,(I st (a[i] == min) i);
            last = $>(J st (a[j] == $>(J; a[j])) j);
        }
    "#;
    let p = run(src);
    assert_eq!(p.read_int("s"), Some(45));
    assert_eq!(p.read_scalar("avg").unwrap().as_float(), 4.5);
    assert_eq!(p.read_int("min"), Some(0));
    assert_eq!(p.read_int("first"), Some(1)); // a[1] = 0
    let arb = p.read_int("arb").unwrap();
    assert!(arb == 1 || arb == 8, "arb must be a position of the minimum");
    assert_eq!(p.read_int("last"), Some(3)); // max value 6 occurs only at 3
}

#[test]
fn abs_sum_with_others() {
    // §3.2: sum of absolute values via st/others arms.
    let p = run(r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N], abs_sum;
        main() {
            par (I) a[i] = i - 4;          /* -4..3 */
            abs_sum = $+(I st (a[i] > 0) a[i] others -a[i]);
        }
    "#);
    // |−4|+|−3|+|−2|+|−1|+|0|+|1|+|2|+|3| = 16
    assert_eq!(p.read_int("abs_sum"), Some(16));
}

#[test]
fn empty_reduction_yields_identity() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int s, m, x, a[N];
        main() {
            s = $+(I st (a[i] > 100) 1);
            m = $<(I st (a[i] > 100) a[i]);
            x = $>(I st (a[i] > 100) a[i]);
        }
    "#);
    assert_eq!(p.read_int("s"), Some(0));
    assert_eq!(p.read_int("m"), Some(i64::MAX));
    assert_eq!(p.read_int("x"), Some(i64::MIN));
}

#[test]
fn matrix_multiply_n3_parallelism() {
    // §3.4's first example: c = a×b with an O(N³) space.
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int a[N][N], b[N][N], c[N][N];
        main() {
            par (I, J) {
                a[i][j] = i + j;
                b[i][j] = i * j + 1;
            }
            par (I, J)
                c[i][j] = $+(K; a[i][k] * b[k][j]);
        }
    "#);
    let n = 6usize;
    let a: Vec<i64> = (0..n * n).map(|p| (p / n + p % n) as i64).collect();
    let b: Vec<i64> = (0..n * n).map(|p| ((p / n) * (p % n) + 1) as i64).collect();
    let mut expect = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                expect[i * n + j] += a[i * n + k] * b[k * n + j];
            }
        }
    }
    assert_eq!(p.read_int_array("c").unwrap(), expect);
}

#[test]
fn ranksort() {
    // §3.4's ranksort with distinct keys.
    let mut p = run(r#"
        #define N 16
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], sorted[N];
        main() {
            par (I) a[i] = (7 * i + 3) % 16;   /* a permutation: distinct */
            par (I) {
                int rank;
                rank = $+(J st (a[j] < a[i]) 1);
                sorted[rank] = a[i];
            }
        }
    "#);
    let sorted = p.read_int_array("sorted").unwrap();
    assert_eq!(sorted, (0..16).collect::<Vec<i64>>());
}

#[test]
fn iterative_par_prefix_sums_figure2() {
    // Figure 2: log-step prefix sums with *par.
    let mut p = run(r#"
        #define N 16
        index_set I:i = {0..N-1};
        int a[N], cnt[N];
        main() {
            par (I) { a[i] = i; cnt[i] = 0; }
            *par (I) st (i >= power2(cnt[i])) {
                a[i] = a[i] + a[i - power2(cnt[i])];
                cnt[i] = cnt[i] + 1;
            }
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    let expect: Vec<i64> = (0..16).map(|i| (0..=i).sum()).collect();
    assert_eq!(a, expect);
}

#[test]
fn seq_in_par_partial_sums_figure3() {
    // Figure 3: the same prefix sums with seq nested in par.
    let mut p = run(r#"
        #define N 16
        #define LOGN 4
        index_set I:i = {0..N-1}, J:j = {0..LOGN-1};
        int a[N];
        main() {
            par (I) {
                a[i] = i;
                seq (J) st (i - power2(j) >= 0)
                    a[i] = a[i] + a[i - power2(j)];
            }
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    let expect: Vec<i64> = (0..16).map(|i| (0..=i).sum()).collect();
    assert_eq!(a, expect);
}

#[test]
fn shortest_path_n2_figure4() {
    // Figure 4: APSP with O(N²) parallelism (seq over k).
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int d[N][N];
        main() {
            par (I, J)
                st (i == j) d[i][j] = 0;
                others d[i][j] = rand() % N + 1;
            seq (K)
                par (I, J)
                    st (d[i][k] + d[k][j] < d[i][j])
                        d[i][j] = d[i][k] + d[k][j];
        }
    "#);
    let n = 8usize;
    let d = p.read_int_array("d").unwrap();
    // Verify the triangle inequality holds everywhere (Floyd-Warshall
    // fixed point) and the diagonal is zero.
    for i in 0..n {
        assert_eq!(d[i * n + i], 0);
        for j in 0..n {
            for k in 0..n {
                assert!(
                    d[i * n + j] <= d[i * n + k] + d[k * n + j],
                    "triangle inequality violated at ({i},{j},{k})"
                );
            }
        }
    }
}

#[test]
fn shortest_path_n3_figure5() {
    // Figure 5: APSP with O(N³) parallelism (log N squaring rounds).
    let src = r#"
        #define N 8
        #define LOGN 3
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        index_set L:l = {0..LOGN-1};
        int d[N][N];
        main() {
            par (I, J)
                st (i == j) d[i][j] = 0;
                others d[i][j] = rand() % N + 1;
            seq (L)
                par (I, J)
                    d[i][j] = $<(K; d[i][k] + d[k][j]);
        }
    "#;
    let mut p = run(src);
    let n = 8usize;
    let d = p.read_int_array("d").unwrap();
    for i in 0..n {
        assert_eq!(d[i * n + i], 0);
        for j in 0..n {
            for k in 0..n {
                assert!(d[i * n + j] <= d[i * n + k] + d[k * n + j]);
            }
        }
    }
}

#[test]
fn n2_and_n3_agree() {
    // Both APSP programs over the same deterministic graph must agree.
    let init = r#"
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
    "#;
    let src_n2 = format!(
        r#"
        #define N 10
        index_set I:i = {{0..N-1}}, J:j = I, K:k = I;
        int d[N][N];
        main() {{
            {init}
            seq (K) par (I, J)
                st (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
        }}
    "#
    );
    let src_n3 = format!(
        r#"
        #define N 10
        #define LOGN 4
        index_set I:i = {{0..N-1}}, J:j = I, K:k = I, L:l = {{0..LOGN-1}};
        int d[N][N];
        main() {{
            {init}
            seq (L) par (I, J) d[i][j] = $<(K; d[i][k] + d[k][j]);
        }}
    "#
    );
    let mut p2 = run(&src_n2);
    let mut p3 = run(&src_n3);
    assert_eq!(p2.read_int_array("d").unwrap(), p3.read_int_array("d").unwrap());
}

#[test]
fn wavefront_solve() {
    // §3.6: the wavefront (binomial) matrix via solve.
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = I;
        int a[N][N];
        main() {
            solve (I, J)
                a[i][j] = (i == 0 || j == 0) ? 1
                        : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
        }
    "#);
    let n = 8usize;
    let a = p.read_int_array("a").unwrap();
    let mut expect = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            expect[i * n + j] = if i == 0 || j == 0 {
                1
            } else {
                expect[(i - 1) * n + j] + expect[(i - 1) * n + j - 1] + expect[i * n + j - 1]
            };
        }
    }
    assert_eq!(a, expect);
}

#[test]
fn star_solve_shortest_path() {
    // §3.6: APSP as a fixed-point computation with *solve.
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int dist[N][N];
        main() {
            par (I, J)
                st (i == j) dist[i][j] = 0;
                others dist[i][j] = (i * 5 + j * 11) % N + 1;
            *solve (I, J)
                dist[i][j] = $<(K; dist[i][k] + dist[k][j]);
        }
    "#);
    let n = 8usize;
    let d = p.read_int_array("dist").unwrap();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                assert!(d[i * n + j] <= d[i * n + k] + d[k * n + j]);
            }
        }
    }
}

#[test]
fn odd_even_transposition_sort() {
    // §3.7: *oneof with two guarded swap arms.
    let mut p = run(r#"
        #define N 12
        index_set I:i = {0..N-1};
        int x[N];
        main() {
            par (I) x[i] = (5 * i + 7) % 12;   /* distinct */
            *oneof (I)
                st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
                st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
        }
    "#);
    let x = p.read_int_array("x").unwrap();
    assert_eq!(x, (0..12).collect::<Vec<i64>>());
}

#[test]
fn histogram_processor_optimization() {
    // §4's processor-optimization example: digit counting.
    let src = r#"
        #define N 64
        index_set I:i = {0..N-1}, J:j = {0..9};
        int samples[N];
        int count[10];
        main() {
            par (I) samples[i] = (i * i) % 10;
            par (J)
                count[j] = $+(I st (samples[i] == j) 1);
        }
    "#;
    let mut with = Program::compile(src).unwrap();
    with.run().unwrap();
    let counts = with.read_int_array("count").unwrap();
    let mut expect = vec![0i64; 10];
    for i in 0..64i64 {
        expect[((i * i) % 10) as usize] += 1;
    }
    assert_eq!(counts, expect);
    assert_eq!(counts.iter().sum::<i64>(), 64);

    // Without procopt the result is identical but the machine does more
    // work on the 10×N space.
    let cfg = ExecConfig { procopt: false, ..Default::default() };
    let mut without = Program::compile_with(src, cfg).unwrap();
    without.run().unwrap();
    assert_eq!(without.read_int_array("count").unwrap(), expect);
}

#[test]
fn index_set_shadowing() {
    // §3.4: reuse of I inside the reduction hides the outer predicate.
    let mut p = run(r#"
        index_set I:i = {0..9};
        int a[10];
        main() {
            par (I)
                st (i % 2 == 0) a[i] = $+(I; i);
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    for (i, &v) in a.iter().enumerate() {
        assert_eq!(v, if i % 2 == 0 { 45 } else { 0 });
    }
}

#[test]
fn explicit_element_lists() {
    let mut p = run(r#"
        index_set K:k = {4, 2, 9};
        int a[10];
        main() { par (K) a[k] = k * 10; }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a[4], 40);
    assert_eq!(a[2], 20);
    assert_eq!(a[9], 90);
    assert_eq!(a[0], 0);
}

#[test]
fn multiple_assignment_conflict_detected() {
    // §3.4's illegal program: a[i] = b[j] over (I, J).
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], b[N];
        main() {
            par (I) b[i] = i;          /* distinct values */
            par (I, J) a[i] = b[j];
        }
    "#;
    let mut p = Program::compile(src).unwrap();
    let err = p.run().unwrap_err();
    assert!(matches!(err.error, uc_core::RuntimeError::MultipleAssignment { .. }), "{err}");
}

#[test]
fn identical_multiple_assignment_allowed() {
    // The same shape with identical values is legal.
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int a[N];
        main() { par (I, J) a[i] = 7; }
    "#);
    assert_eq!(p.read_int_array("a").unwrap(), vec![7; 4]);
}

#[test]
fn nondeterministic_choice_with_arb() {
    // §3.4: the corrected non-deterministic program using $,.
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], b[N];
        main() {
            par (J) b[j] = j + 10;
            par (I) a[i] = $,(J; b[j]);
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    for v in a {
        assert!((10..14).contains(&v), "value must come from b");
    }
}

#[test]
fn front_end_control_flow() {
    let p = run(r#"
        int s;
        int triple(int x) { return 3 * x; }
        main() {
            int k;
            s = 0;
            for (k = 0; k < 5; k++) {
                if (k == 3) continue;
                s += triple(k);
            }
            while (s > 20) s -= 2;
        }
    "#);
    // 3*(0+1+2+4) = 21 → while: 21 > 20 → 19.
    assert_eq!(p.read_int("s"), Some(19));
}

#[test]
fn seq_front_end_ordering() {
    // seq iterates elements in declaration order.
    let mut p = run(r#"
        index_set K:k = {4, 2, 9};
        int trace[3], n;
        main() {
            n = 0;
            seq (K) { trace[n] = k; n = n + 1; }
        }
    "#);
    assert_eq!(p.read_int_array("trace").unwrap(), vec![4, 2, 9]);
}

#[test]
fn map_permute_preserves_results() {
    // §4: the permute mapping changes layout, not results.
    let plain = r#"
        #define N 16
        index_set I:i = {0..N-1};
        int a[N], b[N];
        main() {
            par (I) { a[i] = i; b[i] = 100 + i; }
            par (I) st (i < N-1) a[i] = a[i] + b[i+1];
        }
    "#;
    let mapped = r#"
        #define N 16
        index_set I:i = {0..N-1};
        int a[N], b[N];
        map (I) { permute (I) b[i+1] :- a[i]; }
        main() {
            par (I) { a[i] = i; b[i] = 100 + i; }
            par (I) st (i < N-1) a[i] = a[i] + b[i+1];
        }
    "#;
    let mut p1 = run(plain);
    let mut p2 = run(mapped);
    assert_eq!(
        p1.read_int_array("a").unwrap(),
        p2.read_int_array("a").unwrap(),
        "mapping must not change program results"
    );
    assert_eq!(
        p1.read_int_array("b").unwrap(),
        p2.read_int_array("b").unwrap()
    );
}

#[test]
fn cycles_advance_and_reset() {
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = i; }
    "#);
    assert!(p.cycles() > 0);
    p.reset_clock();
    assert_eq!(p.cycles(), 0);
}

#[test]
fn define_overrides() {
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N], s;
        main() { par (I) a[i] = 1; s = $+(I; a[i]); }
    "#;
    let mut p =
        Program::compile_with_defines(src, ExecConfig::default(), &[("N", 32)]).unwrap();
    p.run().unwrap();
    assert_eq!(p.read_int("s"), Some(32));
    assert_eq!(p.shape("a"), Some(&[32usize][..]));
    assert_eq!(p.define("N"), Some(32));
}
