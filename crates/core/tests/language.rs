//! Semantic coverage beyond the paper's own examples: floats, nesting,
//! multi-arm constructs, oneof choice behaviour, local declarations,
//! user functions, mapping variants, and the host API.

use uc_core::{ExecConfig, Program};

fn run(src: &str) -> Program {
    let mut p = Program::compile(src).unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    p
}

// ---- floats ---------------------------------------------------------------

#[test]
fn float_arrays_and_arithmetic() {
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1};
        float f[N];
        float total;
        main() {
            par (I) f[i] = i / 2.0;
            total = $+(I; f[i]);
        }
    "#);
    let f = p.read_float_array("f").unwrap();
    assert_eq!(f[3], 1.5);
    assert_eq!(p.read_scalar("total").unwrap().as_float(), 14.0);
}

#[test]
fn float_min_max_reductions() {
    let p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        float f[N];
        float lo, hi;
        main() {
            par (I) f[i] = (i - 3) * 1.5;
            lo = $<(I; f[i]);
            hi = $>(I; f[i]);
        }
    "#);
    assert_eq!(p.read_scalar("lo").unwrap().as_float(), -4.5);
    assert_eq!(p.read_scalar("hi").unwrap().as_float(), 3.0);
}

#[test]
fn int_float_promotion() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        float avg;
        main() {
            par (I) a[i] = i + 1;          /* 1 2 3 4 */
            avg = $+(I; a[i]) / 4.0;
        }
    "#);
    assert_eq!(p.read_scalar("avg").unwrap().as_float(), 2.5);
}

// ---- nesting --------------------------------------------------------------

#[test]
fn triple_nested_constructs() {
    // par > seq > par with a reduction at the innermost level.
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, T:t = {0..1}, J:j = {0..N-1};
        int a[N], acc[N];
        main() {
            par (I) { a[i] = i + 1; acc[i] = 0; }
            par (I)
                seq (T)
                    acc[i] = acc[i] + $+(J st (j <= i) a[j]);
        }
    "#);
    // Each i adds prefix-sum(i) twice.
    let acc = p.read_int_array("acc").unwrap();
    assert_eq!(acc, vec![2, 6, 12, 20]);
}

#[test]
fn reduction_over_two_sets() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int s;
        main() { s = $+(I, J; i * j); }
    "#);
    // Σ_i Σ_j i*j = (Σi)² = 36.
    assert_eq!(p.read_int("s"), Some(36));
}

#[test]
fn nested_reduction_inside_reduction_operand() {
    // The paper's `last` idiom: compare against an inner reduction.
    let p = run(r#"
        #define N 6
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], last;
        main() {
            par (I) a[i] = (i * 2) % 5;    /* 0 2 4 1 3 0 */
            last = $>(J st (a[j] == $>(J; a[j])) j);
        }
    "#);
    assert_eq!(p.read_int("last"), Some(2)); // max 4 at position 2
}

#[test]
fn multi_arm_par_three_ways() {
    let mut p = run(r#"
        #define N 9
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I)
                st (i % 3 == 0) a[i] = 100;
                st (i % 3 == 1) a[i] = 200;
                others a[i] = 300;
        }
    "#);
    assert_eq!(
        p.read_int_array("a").unwrap(),
        vec![100, 200, 300, 100, 200, 300, 100, 200, 300]
    );
}

#[test]
fn overlapping_arms_both_execute() {
    // Paper: "if an index element is enabled for more than one sc-exp,
    // each one of the corresponding expressions is included".
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int s;
        main() {
            s = $+(I st (i >= 0) 1 st (i >= 2) 10);
        }
    "#);
    assert_eq!(p.read_int("s"), Some(4 + 20));
}

#[test]
fn multi_arm_reduction_with_others() {
    let p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N], s;
        main() {
            par (I) a[i] = i - 2;           /* -2 -1 0 1 2 3 */
            s = $+(I st (a[i] > 0) a[i] others -a[i]);
        }
    "#);
    assert_eq!(p.read_int("s"), Some((2 + 1) + 1 + 2 + 3));
}

// ---- seq ------------------------------------------------------------------

#[test]
fn star_seq_terminates_when_no_arm_enabled() {
    // Bubble a value leftward one slot per sweep.
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I) st (i == N-1) a[i] = 9;
            *seq (I)
                st (i > 0 && a[i] > a[i-1] && a[i-1] == 0) {
                    a[i-1] = a[i];
                    a[i] = 0;
                }
        }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a, vec![9, 0, 0, 0, 0, 0]);
}

#[test]
fn seq_with_predicate_skips_elements() {
    let mut p = run(r#"
        index_set K:k = {0..9};
        int picked[10], n;
        main() {
            n = 0;
            seq (K) st (k % 3 == 0) { picked[n] = k; n = n + 1; }
        }
    "#);
    assert_eq!(p.read_int("n"), Some(4));
    assert_eq!(&p.read_int_array("picked").unwrap()[..4], &[0, 3, 6, 9]);
}

// ---- oneof ----------------------------------------------------------------

#[test]
fn oneof_executes_exactly_one_enabled_arm() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int hits;
        main() {
            int dummy[4];
            oneof (I)
                st (i == 0) hits += 1;
                st (i == 1) hits += 1;
        }
    "#);
    assert_eq!(p.read_int("hits"), Some(1));
}

#[test]
fn oneof_skips_disabled_arms() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int hits;
        main() {
            oneof (I)
                st (i > 100) hits += 1;
                st (i == 2) hits += 10;
        }
    "#);
    assert_eq!(p.read_int("hits"), Some(10));
}

#[test]
fn oneof_with_nothing_enabled_is_a_noop() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int hits;
        main() {
            oneof (I) st (i > 100) hits += 1;
            *oneof (I) st (i > 100) hits += 1;
        }
    "#);
    assert_eq!(p.read_int("hits"), Some(0));
}

// ---- declarations and functions -------------------------------------------

#[test]
fn function_local_arrays() {
    let p = run(r#"
        #define N 5
        int out;
        main() {
            int tmp[N];
            int k;
            for (k = 0; k < N; k++) tmp[k] = k * k;
            out = tmp[4];
        }
    "#);
    assert_eq!(p.read_int("out"), Some(16));
}

#[test]
fn user_functions_and_recursion() {
    let p = run(r#"
        int out;
        int fact(int n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        main() { out = fact(6); }
    "#);
    assert_eq!(p.read_int("out"), Some(720));
}

#[test]
fn user_function_called_in_parallel_with_scalar_args() {
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1}, T:t = {0..2};
        int a[N];
        int triple(int x) { return 3 * x; }
        main() {
            par (I) a[i] = 0;
            seq (T)
                par (I) a[i] = a[i] + triple(t);
        }
    "#);
    // Each element accumulates 3*(0+1+2) = 9.
    assert_eq!(p.read_int_array("a").unwrap(), vec![9; 6]);
}

#[test]
fn par_local_initializer() {
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I) {
                int twice = i * 2;
                a[i] = twice + 1;
            }
        }
    "#);
    assert_eq!(p.read_int_array("a").unwrap(), vec![1, 3, 5, 7]);
}

#[test]
fn local_index_set_shadows_global() {
    let mut p = run(r#"
        index_set I:i = {0..9};
        int a[10];
        main() {
            index_set I:i = {0..4};
            par (I) a[i] = 1;
        }
    "#);
    assert_eq!(p.read_int_array("a").unwrap()[..6], [1, 1, 1, 1, 1, 0]);
}

#[test]
fn index_set_alias_uses_own_element_name() {
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int a[N][N];
        main() { par (I, J) a[i][j] = i * 10 + j; }
    "#);
    let a = p.read_int_array("a").unwrap();
    assert_eq!(a[2 * 4 + 3], 23);
}

// ---- mappings -------------------------------------------------------------

#[test]
fn fold_mapping_preserves_results() {
    let plain = r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N], s;
        main() {
            par (I) a[i] = i * i;
            s = $+(I; a[i] + a[N-1-i]);
        }
    "#;
    let folded = r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N], s;
        map (I) { fold (I) a[i] :- a[N-1-i]; }
        main() {
            par (I) a[i] = i * i;
            s = $+(I; a[i] + a[N-1-i]);
        }
    "#;
    let p1 = run(plain);
    let p2 = run(folded);
    assert_eq!(p1.read_int("s"), p2.read_int("s"));
    let mut p2 = p2;
    let mut p1 = p1;
    assert_eq!(p1.read_int_array("a").unwrap(), p2.read_int_array("a").unwrap());
}

#[test]
fn copy_mapping_preserves_results() {
    let plain = r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = {0..2};
        int a[N], out[N];
        main() {
            par (I) a[i] = i + 1;
            par (I) out[i] = a[i] * 2;
            par (I) a[i] = a[i] + 10;
            par (I) out[i] = out[i] + a[i];
        }
    "#;
    let copied = r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = {0..2};
        int a[N], out[N];
        map (I) { copy (J) a[i] :- a[i]; }
        main() {
            par (I) a[i] = i + 1;
            par (I) out[i] = a[i] * 2;
            par (I) a[i] = a[i] + 10;
            par (I) out[i] = out[i] + a[i];
        }
    "#;
    let mut p1 = run(plain);
    let mut p2 = run(copied);
    assert_eq!(p1.read_int_array("out").unwrap(), p2.read_int_array("out").unwrap());
    assert_eq!(p1.read_int_array("a").unwrap(), p2.read_int_array("a").unwrap());
}

#[test]
fn copy_mapping_eliminates_broadcast_router_traffic() {
    // par (J, I) reads a[i] for every j: without copy that is a router
    // broadcast from the [N]-shaped array into the [R,N] space; with
    // `copy (J) a[i] :- a[i]` every (j,i) point owns a local replica.
    // Written once, read every sweep: the trade the paper's copy mapping
    // is for (writes broadcast to every replica; reads become local).
    let plain = r#"
        #define N 16
        index_set J:j = {0..2}, I:i = {0..N-1}, T:t = {0..9};
        int a[N];
        int b[3][N];
        main() {
            par (I) a[i] = i * i;
            seq (T)
                par (J, I) b[j][i] = b[j][i] + a[i] + j;
        }
    "#;
    let copied = r#"
        #define N 16
        index_set J:j = {0..2}, I:i = {0..N-1}, T:t = {0..9};
        int a[N];
        int b[3][N];
        map (I) { copy (J) a[i] :- a[i]; }
        main() {
            par (I) a[i] = i * i;
            seq (T)
                par (J, I) b[j][i] = b[j][i] + a[i] + j;
        }
    "#;
    let mut p1 = run(plain);
    let mut p2 = run(copied);
    assert_eq!(p1.read_int_array("b").unwrap(), p2.read_int_array("b").unwrap());
    assert!(
        p2.machine().counters().router < p1.machine().counters().router,
        "copy mapping must cut router traffic: {} vs {}",
        p2.machine().counters().router,
        p1.machine().counters().router
    );
    assert!(p2.cycles() < p1.cycles(), "{} vs {}", p2.cycles(), p1.cycles());
}

// ---- misc semantics --------------------------------------------------------

#[test]
fn compound_assignment_in_parallel() {
    let mut p = run(r#"
        #define N 5
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            par (I) a[i] = i;
            par (I) a[i] += 10;
            par (I) a[i] *= 2;
        }
    "#);
    assert_eq!(p.read_int_array("a").unwrap(), vec![20, 22, 24, 26, 28]);
}

#[test]
fn ternary_in_parallel_evaluates_elementwise() {
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = (i % 2 == 0) ? i : -i; }
    "#);
    assert_eq!(p.read_int_array("a").unwrap(), vec![0, -1, 2, -3, 4, -5]);
}

#[test]
fn out_of_bounds_parallel_read_is_inf() {
    // x[i+1] at the right edge reads INF, so the comparison is false —
    // the odd-even sort's implicit boundary handling.
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int x[N], edge_gt, edge_lt;
        main() {
            par (I) x[i] = 5;
            edge_gt = $+(I st (x[i] > x[i+1]) 1);
            edge_lt = $+(I st (x[i] < x[i+1]) 1);
        }
    "#);
    assert_eq!(p.read_int("edge_gt"), Some(0));
    // Only the last element sees INF on its right.
    assert_eq!(p.read_int("edge_lt"), Some(1));
}

#[test]
fn inf_literal() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int m;
        int d[N];
        main() {
            par (I) d[i] = (i == 2) ? i : INF;
            m = $<(I; d[i]);
        }
    "#);
    assert_eq!(p.read_int("m"), Some(2));
}

#[test]
fn rand_is_deterministic_per_seed() {
    let src = r#"
        #define N 16
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = rand() % 100; }
    "#;
    let mut p1 = run(src);
    let mut p2 = run(src);
    assert_eq!(p1.read_int_array("a").unwrap(), p2.read_int_array("a").unwrap());
    let cfg = ExecConfig { seed: 999, ..Default::default() };
    let mut p3 = Program::compile_with(src, cfg).unwrap();
    p3.run().unwrap();
    assert_ne!(p1.read_int_array("a").unwrap(), p3.read_int_array("a").unwrap());
    assert!(p1.read_int_array("a").unwrap().iter().all(|&v| (0..100).contains(&v)));
}

#[test]
fn emit_cstar_convenience() {
    let p = run(r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) st (a[i] != 0) a[i] = 1; }
    "#);
    let text = p.emit_cstar();
    assert!(text.contains("domain SHAPE0"));
    assert!(text.contains("where (a[i] != 0)"));
}

#[test]
fn counters_expose_program_character() {
    // Ranksort routes; the shifted kernel NEWSes; a pure map is ALU-only.
    let mut pure = run(r#"
        #define N 32
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = i * i; }
    "#);
    let k = pure.machine().counters().clone();
    assert_eq!(k.router, 0);
    assert_eq!(k.news, 0);
    assert!(k.alu > 0);
    let _ = pure.read_int_array("a").unwrap();
}

#[test]
fn two_programs_are_isolated() {
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = a[i] + 1; }
    "#;
    let mut p1 = run(src);
    let p2 = Program::compile(src).unwrap(); // never run
    drop(p2);
    assert_eq!(p1.read_int_array("a").unwrap(), vec![1; 4]);
    // Running main again accumulates (the machine persists state).
    p1.run().unwrap();
    assert_eq!(p1.read_int_array("a").unwrap(), vec![2; 4]);
}
