//! Edge-case semantics: unusual index sets, deep nesting, determinism
//! guarantees, and interactions between constructs and masks.

use uc_core::{ExecConfig, Program};

fn run(src: &str) -> Program {
    let mut p = Program::compile(src).unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    p
}

#[test]
fn negative_range_index_sets() {
    let p = run(r#"
        index_set I:i = {-3..3};
        int s, m;
        main() {
            s = $+(I; i);
            m = $<(I; i * i);
        }
    "#);
    assert_eq!(p.read_int("s"), Some(0));
    assert_eq!(p.read_int("m"), Some(0));
}

#[test]
fn offset_range_binds_axis_plus_lo() {
    // A {2..5} set still addresses arrays correctly (value = coord + 2).
    let mut p = run(r#"
        index_set I:i = {2..5};
        int a[8];
        main() { par (I) a[i] = i * 10; }
    "#);
    assert_eq!(p.read_int_array("a").unwrap(), vec![0, 0, 20, 30, 40, 50, 0, 0]);
}

#[test]
fn singleton_index_set() {
    let p = run(r#"
        index_set I:i = {5..5};
        int s;
        main() { s = $+(I; i + 1); }
    "#);
    assert_eq!(p.read_int("s"), Some(6));
}

#[test]
fn three_dimensional_arrays() {
    let mut p = run(r#"
        #define N 3
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int t[N][N][N], s;
        main() {
            par (I, J, K) t[i][j][k] = i * 100 + j * 10 + k;
            s = $+(I, J, K st (i == j && j == k) t[i][j][k]);
        }
    "#);
    let t = p.read_int_array("t").unwrap();
    assert_eq!(t[9 + 2 * 3], 120);
    assert_eq!(p.read_int("s"), Some(111 + 222));
}

#[test]
fn arb_reduction_is_deterministic() {
    let src = r#"
        #define N 16
        index_set I:i = {0..N-1};
        int a[N], pick;
        main() {
            par (I) a[i] = i * 2;
            pick = $,(I st (a[i] % 4 == 0) a[i]);
        }
    "#;
    let p1 = run(src);
    let p2 = run(src);
    assert_eq!(p1.read_int("pick"), p2.read_int("pick"));
    let v = p1.read_int("pick").unwrap();
    assert!(v % 4 == 0 && (0..32).contains(&v));
}

#[test]
fn deeply_nested_masks_compose() {
    // Nested par constructs AND their predicates: innermost statements
    // see the conjunction of every enclosing mask.
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int m[N][N];
        main() {
            par (I)
                st (i % 2 == 0)
                    par (J)
                        st (j > i) m[i][j] = 1;
        }
    "#);
    let m = p.read_int_array("m").unwrap();
    for i in 0..4 {
        for j in 0..4 {
            let expect = (i % 2 == 0 && j > i) as i64;
            assert_eq!(m[i * 4 + j], expect, "({i},{j})");
        }
    }
}

#[test]
fn reduction_sees_enclosing_mask() {
    // A reduction inside an st-guarded par only runs for enabled i, but
    // ranges over ALL j (fresh index set ⇒ fresh full extent).
    let mut p = run(r#"
        #define N 4
        index_set I:i = {0..N-1}, J:j = I;
        int out[N];
        main() {
            par (I) out[i] = -1;
            par (I) st (i >= 2) out[i] = $+(J; 1);
        }
    "#);
    assert_eq!(p.read_int_array("out").unwrap(), vec![-1, -1, 4, 4]);
}

#[test]
fn seq_respects_element_order_of_lists() {
    // Overwrites happen in declared order: the LAST element wins.
    let p = run(r#"
        index_set K:k = {7, 3, 9, 3};
        int last;
        main() { seq (K) last = k; }
    "#);
    assert_eq!(p.read_int("last"), Some(3));
}

#[test]
fn duplicate_elements_in_list_sets() {
    // {3,3} enables element 3 twice; a par assignment writes the same
    // value twice — legal under the identical-values rule.
    let mut p = run(r#"
        index_set K:k = {3, 3};
        int a[8];
        main() { par (K) a[k] = k * 2; }
    "#);
    assert_eq!(p.read_int_array("a").unwrap()[3], 6);
}

#[test]
fn swap_on_plain_scalars() {
    let p = run(r#"
        int x = 3, y = 9;
        main() { swap(x, y); }
    "#);
    assert_eq!(p.read_int("x"), Some(9));
    assert_eq!(p.read_int("y"), Some(3));
}

#[test]
fn swap_is_synchronous_in_parallel() {
    // swap(x[i], x[i+1]) under a full mask would be racy if reads did not
    // precede writes; restrict to even i so pairs are disjoint.
    let mut p = run(r#"
        #define N 8
        index_set I:i = {0..N-1};
        int x[N];
        main() {
            par (I) x[i] = i;
            par (I) st (i % 2 == 0) swap(x[i], x[i+1]);
        }
    "#);
    assert_eq!(p.read_int_array("x").unwrap(), vec![1, 0, 3, 2, 5, 4, 7, 6]);
}

#[test]
fn solve_with_block_of_assignments() {
    // Two coupled single-assignment arrays: b depends on a.
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N], b[N];
        main() {
            solve (I) {
                a[i] = (i == 0) ? 1 : b[i-1] * 2;
                b[i] = a[i] + 1;
            }
        }
    "#);
    // a = 1, b = 2, a = 4, b = 5, a = 10, b = 11, ...
    let a = p.read_int_array("a").unwrap();
    let b = p.read_int_array("b").unwrap();
    assert_eq!(a[0], 1);
    for i in 0..6usize {
        assert_eq!(b[i], a[i] + 1);
        if i > 0 {
            assert_eq!(a[i], b[i - 1] * 2);
        }
    }
}

#[test]
fn solve_backward_dependency_order() {
    // Dependencies run right-to-left; the *par translation must still
    // find the order (source order is the wrong order here).
    let mut p = run(r#"
        #define N 6
        index_set I:i = {0..N-1};
        int a[N];
        main() {
            solve (I)
                a[i] = (i == N-1) ? 100 : a[i+1] - 7;
        }
    "#);
    assert_eq!(
        p.read_int_array("a").unwrap(),
        vec![65, 72, 79, 86, 93, 100]
    );
}

#[test]
fn star_solve_equals_hand_written_star_par() {
    // §3.6: a *solve may be refined by the programmer into a *par with an
    // explicit fixed-point predicate; both must compute the same result.
    let star_solve = r#"
        #define N 8
        index_set I:i = {0..N-1}, K:k = I;
        int d[N];
        main() {
            par (I) d[i] = (i == 0) ? 0 : 100 + i;
            *solve (I)
                d[i] = $<(K st (k == i || k + 1 == i) d[k] + (k + 1 == i));
        }
    "#;
    let star_par = r#"
        #define N 8
        index_set I:i = {0..N-1};
        int d[N];
        main() {
            par (I) d[i] = (i == 0) ? 0 : 100 + i;
            *par (I) st (i > 0 && d[i-1] + 1 < d[i])
                d[i] = d[i-1] + 1;
        }
    "#;
    let mut p1 = run(star_solve);
    let mut p2 = run(star_par);
    assert_eq!(
        p1.read_int_array("d").unwrap(),
        p2.read_int_array("d").unwrap()
    );
    assert_eq!(p2.read_int_array("d").unwrap(), (0..8).collect::<Vec<i64>>());
}

#[test]
fn results_are_thread_count_independent() {
    // The simulator parallelises big fields with rayon; results and the
    // cycle clock must not depend on it. Run the same program with sizes
    // straddling the parallel threshold.
    for n in [64i64, 20000] {
        let src = r#"
            #define N 64
            index_set I:i = {0..N-1};
            int a[N], s;
            main() {
                par (I) a[i] = (i * 2654435761) % 1000;
                s = $+(I st (a[i] % 2 == 0) a[i]);
            }
        "#;
        let mut p1 =
            Program::compile_with_defines(src, ExecConfig::default(), &[("N", n)]).unwrap();
        p1.run().unwrap();
        let mut p2 =
            Program::compile_with_defines(src, ExecConfig::default(), &[("N", n)]).unwrap();
        p2.run().unwrap();
        assert_eq!(p1.read_int("s"), p2.read_int("s"));
        assert_eq!(p1.cycles(), p2.cycles());
    }
}

#[test]
fn vp_ratio_shows_in_cycles() {
    // The same program over 16K and over 64K elements on a 16K machine:
    // 4x the VPs must cost ~4x the cycles (the Figure 7 staircase).
    let src = r#"
        #define N 16384
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i] = i * 3; }
    "#;
    let cycles = |n: i64| {
        let mut p =
            Program::compile_with_defines(src, ExecConfig::default(), &[("N", n)]).unwrap();
        p.run().unwrap();
        p.cycles()
    };
    let one = cycles(16 * 1024);
    let four = cycles(64 * 1024);
    let ratio = four as f64 / one as f64;
    assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio}");
}

#[test]
fn pointer_jumping_list_ranking() {
    // List ranking by pointer jumping: the classic CM idiom that is all
    // router traffic (every hop follows an arbitrary successor pointer).
    // next[i] = i+1 on a linked list laid out by a permutation; rank =
    // distance to the tail, doubling hops each round.
    let mut p = run(r#"
        #define N 16
        index_set I:i = {0..N-1}, T:t = {0..3};
        int next[N], rank[N];
        main() {
            /* a list threaded through the array: i -> (i + 5) % N, tail
               marked with next = self, laid out so hops are scattered. */
            par (I) next[i] = (i + 5) % N;
            par (I) st (i == 11) next[i] = i;       /* tail */
            par (I) st (next[i] == i) rank[i] = 0;
            par (I) st (next[i] != i) rank[i] = 1;
            seq (T) {                               /* log2(16) rounds */
                par (I) st (next[i] != next[next[i]])
                    rank[i] = rank[i] + rank[next[i]];
                par (I) rank[i] = rank[i];          /* keep step shape */
                par (I) next[i] = next[next[i]];
            }
        }
    "#);
    let rank = p.read_int_array("rank").unwrap();
    // Walk the list on the host to get true distances.
    let next: Vec<usize> = (0..16).map(|i| if i == 11 { 11 } else { (i + 5) % 16 }).collect();
    for (i, &r) in rank.iter().enumerate() {
        let mut d = 0;
        let mut cur = i;
        while next[cur] != cur {
            cur = next[cur];
            d += 1;
        }
        assert_eq!(r, d as i64, "node {i}");
    }
    // Pointer jumping is router-bound.
    assert!(p.machine().counters().router > 10);
}

#[test]
fn cstar_translation_of_paper_programs() {
    // The emitter handles each §3 example without panicking and produces
    // domain declarations for every shape.
    for src in [
        "index_set I:i = {0..9};\nint a[10];\nmain() { par (I) st (a[i]!=0) a[i] = 1; }",
        "#define N 8\nindex_set I:i = {0..N-1}, J:j = I;\nint d[N][N];\nmain() { par (I,J) d[i][j] = $+(J; d[i][j]); }",
        "#define N 8\nindex_set I:i = {0..N-1};\nint a[N], cnt[N];\nmain() { *par (I) st (i >= power2(cnt[i])) { a[i] = a[i] + a[i-power2(cnt[i])]; cnt[i] = cnt[i] + 1; } }",
    ] {
        let p = Program::compile(src).unwrap();
        let text = p.emit_cstar();
        assert!(text.contains("domain"), "{text}");
    }
}
