//! Smoke test guarding the crate-root quickstart contract.
//!
//! The ranksort example in `crates/core/src/lib.rs` is the first thing a
//! reader runs; this plain `#[test]` duplicates it so the contract is
//! enforced even in runs that skip doctests, and strengthens it: the
//! quickstart only asserts sortedness, here we also check the exact
//! permutation round-trips the generated keys.

use uc_core::Program;

/// Same source as the `uc-core` crate-root quickstart doctest.
const QUICKSTART: &str = r#"
    #define N 16
    index_set I:i = {0..N-1}, J:j = I;
    int a[N], rank[N], sorted[N];
    main() {
        par (I) a[i] = (7 * i + 3) % N;          /* distinct keys */
        par (I) {
            rank[i] = $+(J st (a[j] < a[i]) 1);  /* ranksort (§3.4) */
            sorted[rank[i]] = a[i];
        }
    }
"#;

#[test]
fn quickstart_compile_run_roundtrip() {
    let mut p = Program::compile(QUICKSTART).expect("quickstart must compile");
    p.run().expect("quickstart must run");

    // The doctest's own assertion.
    let sorted = p.read_int_array("sorted").unwrap();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "not sorted: {sorted:?}");

    // Round-trip: `sorted` is exactly the generated keys in order (7 is
    // coprime to 16, so the keys are a permutation of 0..16).
    let keys: Vec<i64> = (0..16).map(|i| (7 * i + 3) % 16).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect);

    // And `rank` really is the rank of each key.
    let rank = p.read_int_array("rank").unwrap();
    for (i, &r) in rank.iter().enumerate() {
        let true_rank = keys.iter().filter(|&&k| k < keys[i]).count() as i64;
        assert_eq!(r, true_rank, "rank of key {} (index {i})", keys[i]);
    }
}

#[test]
fn quickstart_facade_variant() {
    // The root `uc` facade quickstart (src/lib.rs) uses a squares table;
    // guard that contract too, through the `uc-core` API it re-exports.
    let src = r#"
        index_set I:i = {0..9};
        int a[10];
        main() {
            par (I) a[i] = i * i;
        }
    "#;
    let mut p = Program::compile(src).expect("valid UC program");
    p.run().expect("runs");
    assert_eq!(p.read_int_array("a").unwrap()[3], 9);
}
