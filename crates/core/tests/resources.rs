//! Resource discipline: the executor must not leak machine fields across
//! iterations — every temporary a step allocates is freed when the step
//! ends, so long-running `*` constructs and front-end loops run in
//! bounded space (the CM had 64Kbits of memory per processor; leaking
//! fields would exhaust it).

use uc_core::Program;

fn live_after(src: &str) -> (usize, usize) {
    let mut p = Program::compile(src).unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    let after_first = p.machine().live_fields();
    // Run main several more times; live fields must not keep growing
    // (caches are warm after the first run).
    for _ in 0..5 {
        p.run().unwrap();
    }
    (after_first, p.machine().live_fields())
}

#[test]
fn par_loops_do_not_leak_fields() {
    let (first, later) = live_after(
        r#"
        #define N 32
        index_set I:i = {0..N-1}, T:t = {0..19};
        int a[N], b[N];
        main() {
            par (I) { a[i] = i; b[i] = 0; }
            seq (T)
                par (I) st (i < N-1) b[i] = b[i] + a[i+1];
        }
        "#,
    );
    assert_eq!(first, later, "repeated runs must not grow live fields");
}

#[test]
fn star_par_does_not_leak() {
    let (first, later) = live_after(
        r#"
        #define N 32
        index_set I:i = {0..N-1};
        int a[N], cnt[N];
        main() {
            par (I) { a[i] = i; cnt[i] = 0; }
            *par (I) st (i >= power2(cnt[i])) {
                a[i] = a[i] + a[i - power2(cnt[i])];
                cnt[i] = cnt[i] + 1;
            }
        }
        "#,
    );
    assert_eq!(first, later);
}

#[test]
fn reductions_do_not_leak() {
    let (first, later) = live_after(
        r#"
        #define N 16
        index_set I:i = {0..N-1}, J:j = I, T:t = {0..9};
        int a[N], s;
        main() {
            par (I) a[i] = i;
            seq (T)
                par (I) a[i] = $+(J st (a[j] < a[i]) 1);
        }
        "#,
    );
    assert_eq!(first, later);
}

#[test]
fn solve_does_not_leak() {
    let (first, later) = live_after(
        r#"
        #define N 8
        index_set I:i = {0..N-1}, J:j = I;
        int a[N][N];
        main() {
            solve (I, J)
                a[i][j] = (i == 0 || j == 0) ? 1 : a[i-1][j] + a[i][j-1];
        }
        "#,
    );
    assert_eq!(first, later);
}

#[test]
fn star_solve_does_not_leak() {
    let (first, later) = live_after(
        r#"
        #define N 6
        index_set I:i = {0..N-1}, J:j = I, K:k = I;
        int d[N][N];
        main() {
            par (I, J)
                st (i == j) d[i][j] = 0;
                others d[i][j] = (i * 5 + j * 3) % N + 1;
            *solve (I, J)
                d[i][j] = $<(K; d[i][k] + d[k][j]);
        }
        "#,
    );
    assert_eq!(first, later);
}

#[test]
fn oneof_does_not_leak() {
    let (first, later) = live_after(
        r#"
        #define N 12
        index_set I:i = {0..N-1};
        int x[N];
        main() {
            par (I) x[i] = (5 * i + 7) % N;
            *oneof (I)
                st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
                st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
        }
        "#,
    );
    assert_eq!(first, later);
}

#[test]
fn function_calls_do_not_leak() {
    let (first, later) = live_after(
        r#"
        int acc;
        int add3(int x) { return x + 3; }
        main() {
            int k;
            for (k = 0; k < 50; k++) acc = add3(acc);
        }
        "#,
    );
    assert_eq!(first, later);
}
