//! The sequential grid-goal program of §5.
//!
//! The same iterative algorithm the UC program runs on the CM: every
//! sweep, each non-wall cell takes the minimum of its four neighbours'
//! distances plus one; sweeps repeat until nothing changes. This mirrors
//! the paper's sequential C program (which implements the identical
//! relaxation on the front end), so the op-count scales as
//! `rows × cols × sweeps` with `sweeps ≈ path diameter`.

use crate::SeqMachine;

/// Result of a sequential grid-goal run.
#[derive(Debug, Clone)]
pub struct GridRun {
    pub dist: Vec<i64>,
    pub cycles: u64,
    pub sweeps: usize,
}

/// Run the relaxation on `machine`. `walls` marks disconnected cells; the
/// goal is cell (0,0); `dmax` is the unreached sentinel (wall cells hold
/// `2*dmax`).
pub fn grid_goal(
    machine: &mut SeqMachine,
    rows: usize,
    cols: usize,
    walls: &[bool],
    dmax: i64,
) -> GridRun {
    assert_eq!(walls.len(), rows * cols);
    let mut dist: Vec<i64> = (0..rows * cols)
        .map(|p| {
            if p == 0 {
                0
            } else if walls[p] {
                dmax * 2
            } else {
                dmax
            }
        })
        .collect();
    machine.charge((rows * cols) as u64); // initialisation pass

    let at = |d: &Vec<i64>, r: isize, c: isize| -> i64 {
        if r < 0 || c < 0 || r as usize >= rows || c as usize >= cols {
            i64::MAX
        } else {
            d[r as usize * cols + c as usize]
        }
    };

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let mut changed = false;
        let prev = dist.clone();
        machine.charge((rows * cols) as u64); // state copy for the sweep
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let p = r as usize * cols + c as usize;
                // ~8 abstract ops per cell: 4 neighbour loads, 3 mins,
                // one compare/store.
                machine.charge(8);
                if (r == 0 && c == 0) || walls[p] {
                    continue;
                }
                let m = at(&prev, r - 1, c)
                    .min(at(&prev, r + 1, c))
                    .min(at(&prev, r, c - 1))
                    .min(at(&prev, r, c + 1));
                if m < dmax * 2 && m + 1 < dist[p] {
                    dist[p] = m + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        if sweeps > 4 * (rows + cols) {
            break;
        }
    }
    GridRun { dist, cycles: machine.cycles(), sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn open_grid_is_manhattan() {
        let mut m = SeqMachine::new();
        let run = grid_goal(&mut m, 6, 6, &[false; 36], 1 << 30);
        for r in 0..6usize {
            for c in 0..6usize {
                assert_eq!(run.dist[r * 6 + c], (r + c) as i64);
            }
        }
        assert!(run.cycles > 0);
    }

    #[test]
    fn matches_bfs_oracle_with_walls() {
        let (rows, cols) = (10usize, 10usize);
        let mut walls = vec![false; rows * cols];
        // Diagonal wall with a gap, like Figure 11's obstacle.
        for k in 2..9 {
            walls[k * cols + (cols - 1 - k)] = true;
        }
        let mut m = SeqMachine::new();
        let run = grid_goal(&mut m, rows, cols, &walls, 1 << 30);
        let bfs = oracle::grid_bfs(rows, cols, &walls);
        for p in 0..rows * cols {
            if walls[p] {
                continue;
            }
            match bfs[p] {
                Some(d) => assert_eq!(run.dist[p], d as i64, "cell {p}"),
                None => assert!(run.dist[p] >= 1 << 30, "unreachable cell {p}"),
            }
        }
    }

    #[test]
    fn sweeps_scale_with_diameter() {
        let mut m1 = SeqMachine::new();
        let r1 = grid_goal(&mut m1, 8, 8, &[false; 64], 1 << 30);
        let mut m2 = SeqMachine::new();
        let r2 = grid_goal(&mut m2, 16, 16, &vec![false; 256], 1 << 30);
        assert!(r2.sweeps > r1.sweeps);
        assert!(r2.cycles > 4 * r1.cycles, "cost grows superlinearly in rows");
    }
}
