//! # uc-seqc — sequential baselines (the paper's "C on a SUN 4")
//!
//! Figure 8 of the paper compares the CM execution of the UC grid
//! program against a sequential C program on the SUN 4 front end, both
//! plain and compiled with `-O`. The real machines are gone, so this
//! crate provides the same baselines over an **abstract-operation cost
//! model**: every memory access / arithmetic step of the sequential
//! program charges one abstract cycle, the same unit the CM simulator's
//! `uc_cm::cost::CostModel` uses. The `-O` variant models the
//! compiler-optimisation constant of the paper's third curve: identical
//! algorithm and op count, each op costing a documented fraction
//! ([`OPT_SPEEDUP`]) of a plain op — which is how `cc -O` shows up at
//! this granularity (register promotion, strength reduction), not as an
//! algorithmic change.
//!
//! [`oracle`] holds reference implementations used by tests across the
//! workspace.

pub mod grid;
pub mod oracle;

/// Cost (in abstract cycles) of one sequential abstract operation for the
/// plain-compiled program. The CM cost model (`uc_cm::cost::CostModel`)
/// charges one SIMD macro-instruction 30–600 of these units, reflecting
/// the front-end-dispatch ratio between the CM-2 and its SUN-4 front end.
pub const SEQ_OP_COST: u64 = 1;

/// Speed-up factor of the `-O`-compiled program: each abstract op costs
/// `SEQ_OP_COST / OPT_SPEEDUP` (rounded up). 2–3× is the classic range
/// for un-optimised vs `-O` K&R C on late-80s compilers.
pub const OPT_SPEEDUP: u64 = 2;

/// A sequential "machine": counts abstract operations and converts them
/// to the shared cycle unit.
#[derive(Debug, Default, Clone)]
pub struct SeqMachine {
    ops: u64,
    optimized: bool,
}

impl SeqMachine {
    /// A plain-compiled sequential machine.
    pub fn new() -> Self {
        SeqMachine { ops: 0, optimized: false }
    }

    /// A `-O`-compiled sequential machine.
    pub fn optimized() -> Self {
        SeqMachine { ops: 0, optimized: true }
    }

    /// Charge `n` abstract operations.
    #[inline]
    pub fn charge(&mut self, n: u64) {
        self.ops += n;
    }

    /// Abstract operations executed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Elapsed cycles in the shared unit.
    pub fn cycles(&self) -> u64 {
        if self.optimized {
            (self.ops * SEQ_OP_COST).div_ceil(OPT_SPEEDUP)
        } else {
            self.ops * SEQ_OP_COST
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_and_conversion() {
        let mut m = SeqMachine::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.ops(), 15);
        assert_eq!(m.cycles(), 15 * SEQ_OP_COST);
    }

    #[test]
    fn optimized_is_faster_same_ops() {
        let mut plain = SeqMachine::new();
        let mut opt = SeqMachine::optimized();
        plain.charge(100);
        opt.charge(100);
        assert_eq!(plain.ops(), opt.ops());
        assert!(opt.cycles() < plain.cycles());
        assert_eq!(opt.cycles(), plain.cycles().div_ceil(OPT_SPEEDUP));
    }
}
