//! Reference implementations used as test oracles across the workspace.

/// Floyd–Warshall all-pairs shortest paths over a flattened N×N matrix.
pub fn floyd_warshall(mut d: Vec<i64>, n: usize) -> Vec<i64> {
    assert_eq!(d.len(), n * n);
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k].saturating_add(d[k * n + j]);
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    d
}

/// BFS distances from cell (0,0) on a 4-connected grid with walls.
/// `None` = unreachable (or a wall).
pub fn grid_bfs(rows: usize, cols: usize, walls: &[bool]) -> Vec<Option<usize>> {
    assert_eq!(walls.len(), rows * cols);
    let mut dist = vec![None; rows * cols];
    if walls[0] {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[0] = Some(0);
    queue.push_back(0usize);
    while let Some(p) = queue.pop_front() {
        let (r, c) = (p / cols, p % cols);
        let d = dist[p].unwrap();
        let mut push = |q: usize| {
            if !walls[q] && dist[q].is_none() {
                dist[q] = Some(d + 1);
                queue.push_back(q);
            }
        };
        if r > 0 {
            push(p - cols);
        }
        if r + 1 < rows {
            push(p + cols);
        }
        if c > 0 {
            push(p - 1);
        }
        if c + 1 < cols {
            push(p + 1);
        }
    }
    dist
}

/// The deterministic benchmark graph both UC and C\* programs initialise:
/// zero diagonal, `(i*7 + j*13) % n + 1` elsewhere.
pub fn bench_graph(n: usize) -> Vec<i64> {
    let mut d = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[i * n + j] = ((i * 7 + j * 13) % n + 1) as i64;
            }
        }
    }
    d
}

/// The paper's Figure 11 obstacle: a diagonal wall of length `n/2`
/// centred on the anti-diagonal of an n×n grid.
pub fn figure11_walls(n: usize) -> Vec<bool> {
    let mut walls = vec![false; n * n];
    for i in 0..n {
        let j = n - 1 - i;
        if (i as i64 - n as i64 / 2).abs() <= n as i64 / 4 {
            walls[i * n + j] = true;
        }
    }
    walls
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floyd_small() {
        // 0 -1-> 1 -1-> 2, direct 0->2 = 10.
        let inf = 1 << 20;
        let d = vec![0, 1, 10, inf, 0, 1, inf, inf, 0];
        let r = floyd_warshall(d, 3);
        assert_eq!(r[2], 2);
    }

    #[test]
    fn bfs_open_grid() {
        let d = grid_bfs(3, 3, &[false; 9]);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[8], Some(4));
    }

    #[test]
    fn bfs_blocked_goal() {
        let mut walls = [false; 9];
        walls[0] = true;
        assert!(grid_bfs(3, 3, &walls).iter().all(|d| d.is_none()));
    }

    #[test]
    fn bench_graph_properties() {
        let d = bench_graph(8);
        for i in 0..8 {
            assert_eq!(d[i * 8 + i], 0);
            for j in 0..8 {
                if i != j {
                    assert!((1..=8).contains(&d[i * 8 + j]));
                }
            }
        }
    }

    #[test]
    fn figure11_wall_sits_on_antidiagonal() {
        let n = 16;
        let walls = figure11_walls(n);
        let count = walls.iter().filter(|&&w| w).count();
        assert!(count > 0 && count <= n, "wall length bounded by n, got {count}");
        for i in 0..n {
            for j in 0..n {
                if walls[i * n + j] {
                    assert_eq!(i + j, n - 1);
                }
            }
        }
    }
}
