// All-pairs shortest paths (paper §3.3): Floyd-Warshall with the k loop
// sequential on the front end and the N x N relaxation in parallel.
// `w[i][k]` and `w[k][j]` broadcast one row/column through the router;
// the updates themselves are local, so the lints stay silent.
#define N 8
#define INF 9999
index_set I:i = {0..N-1}, J:j = I;
int w[N][N];
int k;
main() {
    par (I, J) w[i][j] = INF;
    par (I, J) st (i == j) w[i][j] = 0;
    par (I, J) st (j == (i + 1) % N) w[i][j] = i + 1;
    for (k = 0; k < N; k = k + 1) {
        par (I, J) st (w[i][k] + w[k][j] < w[i][j])
            w[i][j] = w[i][k] + w[k][j];
    }
}
