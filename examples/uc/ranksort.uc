// Rank sort (paper §3.2): each element counts, in parallel, how many
// elements precede it, then scatters itself to that rank. Ties are
// broken by index so the permutation is total. Lint-clean: the count
// combines through the $+ reduction and the scatter location varies
// with the rank.
#define N 16
index_set I:i = {0..N-1}, J:j = I;
int a[N], rank[N], sorted[N];
main() {
    par (I) a[i] = (N - i) * 7 % 23;
    par (I) rank[i] = $+(J st (a[j] < a[i] || (a[j] == a[i] && j < i)) 1);
    par (I) sorted[rank[i]] = a[i];
}
