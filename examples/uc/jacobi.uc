// Jacobi relaxation on an N x N grid (paper §2): interior points average
// their four neighbours. Each neighbour access displaces exactly one
// axis, so the executor compiles them to NEWS shifts — the comm lint
// stays silent, and `uc run` reports news (not router) traffic.
#define N 8
#define STEPS 10
index_set I:i = {0..N-1}, J:j = I;
float u[N][N], v[N][N];
int t;
main() {
    par (I, J) u[i][j] = 0.0;
    par (I, J) st (i == 0) u[i][j] = 100.0;
    for (t = 0; t < STEPS; t = t + 1) {
        par (I, J) st (i > 0 && i < N-1 && j > 0 && j < N-1)
            v[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]) / 4.0;
        par (I, J) st (i > 0 && i < N-1 && j > 0 && j < N-1)
            u[i][j] = v[i][j];
    }
}
