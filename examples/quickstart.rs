//! Quickstart: compile and run a UC program on the simulated Connection
//! Machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program is Figure 2 of the paper: prefix sums in log N iterations
//! with the `*par` construct. Note the UC ingredients: an `index_set`,
//! an `st` predicate, and the `*` iteration prefix that repeats the
//! statement while any element stays enabled.

use uc::lang::Program;

const PREFIX_SUMS: &str = r#"
    #define N 32
    index_set I:i = {0..N-1};
    int a[N], cnt[N];
    main() {
        par (I) { a[i] = i; cnt[i] = 0; }
        *par (I) st (i >= power2(cnt[i])) {
            a[i] = a[i] + a[i - power2(cnt[i])];
            cnt[i] = cnt[i] + 1;
        }
    }
"#;

fn main() {
    let mut program = Program::compile(PREFIX_SUMS).expect("valid UC");
    program.run().expect("runs to completion");

    let sums = program.read_int_array("a").expect("a is an int array");
    println!("prefix sums of 0..32:");
    println!("{sums:?}");
    let expect: Vec<i64> = (0..32).map(|i| i * (i + 1) / 2).collect();
    assert_eq!(sums, expect);

    println!();
    println!("simulated CM cycles : {}", program.cycles());
    let k = program.machine().counters();
    println!(
        "instructions        : {} alu, {} news, {} router, {} scan, {} context",
        k.alu, k.news, k.router, k.scan, k.context
    );
    println!("(log-step algorithm: {} iterations for N=32)", 6);
}
