//! Two parallel sorts from §3 of the paper: ranksort (`par` + a counting
//! reduction) and odd–even transposition sort (`*oneof` with guarded
//! swap arms — the paper's illustration of non-deterministic choice).
//!
//! ```sh
//! cargo run --example sorting
//! ```

use uc::lang::Program;

const RANKSORT: &str = r#"
    #define N 24
    index_set I:i = {0..N-1}, J:j = I;
    int a[N], sorted[N];
    main() {
        par (I) a[i] = (11 * i + 5) % N;     /* distinct keys */
        par (I) {
            int rank;
            rank = $+(J st (a[j] < a[i]) 1);
            sorted[rank] = a[i];
        }
    }
"#;

const ODD_EVEN: &str = r#"
    #define N 24
    index_set I:i = {0..N-1};
    int x[N];
    main() {
        par (I) x[i] = (11 * i + 5) % N;
        *oneof (I)
            st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
            st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
    }
"#;

fn main() {
    let mut rank = Program::compile(RANKSORT).expect("ranksort compiles");
    rank.run().expect("ranksort runs");
    let sorted = rank.read_int_array("sorted").unwrap();
    println!("ranksort input : {:?}", rank.read_int_array("a").unwrap());
    println!("ranksort output: {sorted:?}");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));

    let mut oe = Program::compile(ODD_EVEN).expect("odd-even compiles");
    oe.run().expect("odd-even runs");
    let x = oe.read_int_array("x").unwrap();
    println!("odd-even output: {x:?}");
    assert!(x.windows(2).all(|w| w[0] <= w[1]));

    println!();
    println!("ranksort : {:>8} cycles ({} router ops)", rank.cycles(), rank.machine().counters().router);
    println!("odd-even : {:>8} cycles ({} news ops)", oe.cycles(), oe.machine().counters().news);
    println!();
    println!(
        "ranksort pays one big all-to-all; the transposition sort trades\n\
         that for O(N) cheap nearest-neighbour rounds — the communication\n\
         classes whose costs §4's mappings are designed around."
    );
}
