//! Jacobi relaxation — the numerical-computation direction §5 of the
//! paper says was "in progress" (CFD, SVD, Jacobi): solve Laplace's
//! equation on a square plate with fixed boundary temperatures by
//! repeatedly averaging each interior cell's four neighbours.
//!
//! ```sh
//! cargo run --example jacobi
//! ```
//!
//! UC expresses the whole solver as one `seq`-iterated `par` over the
//! grid with NEWS-neighbour reads; the example verifies against a
//! sequential reference sweep-for-sweep.

use uc::lang::Program;

const N: usize = 12;
const SWEEPS: usize = 60;

const JACOBI: &str = r#"
    #define N 12
    #define SWEEPS 60
    index_set I:i = {0..N-1}, J:j = I, T:t = {0..SWEEPS-1};
    float u[N][N], next[N][N];
    main() {
        /* Boundary: top edge hot (100), others cold (0). */
        par (I, J)
            st (i == 0) u[i][j] = 100.0;
            others u[i][j] = 0.0;
        seq (T) {
            par (I, J)
                st (i > 0 && i < N-1 && j > 0 && j < N-1)
                    next[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]) / 4.0;
            par (I, J)
                st (i > 0 && i < N-1 && j > 0 && j < N-1)
                    u[i][j] = next[i][j];
        }
    }
"#;

fn sequential_reference() -> Vec<f64> {
    let mut u = vec![0.0f64; N * N];
    u[..N].fill(100.0);
    let mut next = u.clone();
    for _ in 0..SWEEPS {
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                next[i * N + j] =
                    (u[(i - 1) * N + j] + u[(i + 1) * N + j] + u[i * N + j - 1] + u[i * N + j + 1])
                        / 4.0;
            }
        }
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                u[i * N + j] = next[i * N + j];
            }
        }
    }
    u
}

fn main() {
    let mut p = Program::compile(JACOBI).expect("jacobi compiles");
    p.run().expect("jacobi runs");
    let u = p.read_float_array("u").unwrap();
    let reference = sequential_reference();
    for (k, (&a, &b)) in u.iter().zip(&reference).enumerate() {
        assert!((a - b).abs() < 1e-9, "cell {k}: {a} vs {b}");
    }

    println!("temperature field after {SWEEPS} Jacobi sweeps (top edge held at 100):\n");
    for i in 0..N {
        let row: String = (0..N)
            .map(|j| format!("{:>6.1}", u[i * N + j]))
            .collect();
        println!("{row}");
    }
    println!("\nmatches the sequential reference sweep-for-sweep.");
    println!("simulated CM cycles: {} ({} NEWS shifts — the stencil is all\nnearest-neighbour communication)",
        p.cycles(), p.machine().counters().news);
}
