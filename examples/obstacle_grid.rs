//! The grid-goal problem of §5 with the Figure 11 obstacle: every cell of
//! a grid computes its shortest distance to the goal at (0,0), routing
//! around a diagonal wall, by iterating neighbour relaxation with `*par`
//! until the global fixed point.
//!
//! ```sh
//! cargo run --example obstacle_grid
//! ```
//!
//! Prints the distance field as ASCII art and compares the CM cycle count
//! against the sequential baselines (the Figure 8 experiment at one size).

use uc::lang::{ExecConfig, Program};
use uc::seqc::{grid, oracle, SeqMachine};

const N: usize = 16;

/// The UC program (Figure 11's initialisation plus the `*par`
/// relaxation described in §5). `WALLV` marks obstacle cells, `DMAX`
/// is the "unreached" sentinel.
const GRID_GOAL: &str = r#"
    #define N 16
    #define DMAX 1073741824
    #define WALLV 2147483648
    index_set I:i = {0..N-1}, J:j = I;
    int a[N][N];
    main() {
        par (I, J)
            st (i + j == N - 1 && ABS(i - N/2) <= N/4) a[i][j] = WALLV;
            others a[i][j] = DMAX;
        par (I, J) st (i == 0 && j == 0) a[i][j] = 0;
        *par (I, J)
            st (a[i][j] != WALLV && (i != 0 || j != 0)
                && min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1 < a[i][j])
            a[i][j] = min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1;
    }
"#;

fn main() {
    let mut p = Program::compile_with_defines(GRID_GOAL, ExecConfig::default(), &[("N", N as i64)])
        .expect("grid program compiles");
    p.run().expect("grid program runs");
    let dist = p.read_int_array("a").unwrap();

    println!("shortest distance to goal G at the top-left, '##' = obstacle:\n");
    for r in 0..N {
        let mut line = String::new();
        for c in 0..N {
            let v = dist[r * N + c];
            if v >= 2 * (1 << 30) {
                line.push_str(" ##");
            } else if r == 0 && c == 0 {
                line.push_str("  G");
            } else if v >= 1 << 30 {
                line.push_str("  ?");
            } else {
                line.push_str(&format!("{v:>3}"));
            }
        }
        println!("{line}");
    }

    // Verify against BFS.
    let walls = oracle::figure11_walls(N);
    let bfs = oracle::grid_bfs(N, N, &walls);
    for p in 0..N * N {
        if walls[p] {
            continue;
        }
        if let Some(d) = bfs[p] {
            assert_eq!(dist[p], d as i64, "cell {p}");
        }
    }
    println!("\nverified against BFS.");

    let mut seq = SeqMachine::new();
    let seq_run = grid::grid_goal(&mut seq, N, N, &walls, 1 << 30);
    let mut opt = SeqMachine::optimized();
    let opt_run = grid::grid_goal(&mut opt, N, N, &walls, 1 << 30);
    println!();
    println!("UC on the 16K CM : {:>9} cycles", p.cycles());
    println!("sequential C     : {:>9} cycles", seq_run.cycles);
    println!("sequential C -O  : {:>9} cycles", opt_run.cycles);
    println!("(sweep counts: CM converges in the same {} sweeps)", seq_run.sweeps);
}
