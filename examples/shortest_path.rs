//! The paper's flagship benchmark: all-pairs shortest path, in both the
//! O(N²)-parallel form (Figure 4: front-end loop over pivots) and the
//! O(N³)-parallel form (Figure 5: log N min-reduction rounds).
//!
//! ```sh
//! cargo run --example shortest_path
//! ```
//!
//! Both programs run on the same random graph; the example verifies they
//! agree with each other and with Floyd–Warshall, then compares their
//! simulated cycle counts — the data behind Figures 6 and 7.

use uc::lang::{ExecConfig, Program};
use uc::seqc::oracle;

const N: usize = 16;

const APSP_N2: &str = r#"
    #define N 16
    index_set I:i = {0..N-1}, J:j = I, K:k = I;
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
        seq (K)
            par (I, J)
                st (d[i][k] + d[k][j] < d[i][j])
                    d[i][j] = d[i][k] + d[k][j];
    }
"#;

const APSP_N3: &str = r#"
    #define N 16
    #define LOGN 4
    index_set I:i = {0..N-1}, J:j = I, K:k = I, L:l = {0..LOGN-1};
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = (i * 7 + j * 13) % N + 1;
        seq (L)
            par (I, J)
                d[i][j] = $<(K; d[i][k] + d[k][j]);
    }
"#;

fn main() {
    let mut p2 = Program::compile_with(APSP_N2, ExecConfig::default()).expect("N2 compiles");
    p2.run().expect("N2 runs");
    let d2 = p2.read_int_array("d").unwrap();

    let mut p3 = Program::compile(APSP_N3).expect("N3 compiles");
    p3.run().expect("N3 runs");
    let d3 = p3.read_int_array("d").unwrap();

    let oracle = oracle::floyd_warshall(oracle::bench_graph(N), N);
    assert_eq!(d2, oracle, "O(N^2) program must match Floyd-Warshall");
    assert_eq!(d3, oracle, "O(N^3) program must match Floyd-Warshall");

    println!("all-pairs shortest paths on a {N}-node graph — both programs correct");
    println!();
    println!("first row of the distance matrix: {:?}", &d2[..N]);
    println!();
    println!("O(N^2) parallelism (N pivot rounds)  : {:>9} cycles", p2.cycles());
    println!("O(N^3) parallelism (log N reductions): {:>9} cycles", p3.cycles());
    println!();
    println!(
        "the O(N^3) form trades {}x more virtual processors for {} rounds instead of {}",
        N,
        (usize::BITS - (N - 1).leading_zeros()),
        N
    );
}
