//! The `solve` construct (§3.6): declare a *proper set* of equations and
//! let the compiler execute assignments in dependency order.
//!
//! ```sh
//! cargo run --example wavefront
//! ```
//!
//! The wavefront problem builds a matrix where each entry depends on its
//! north, west and north-west neighbours; `solve` discovers the
//! anti-diagonal wavefront schedule automatically. The example also shows
//! `*solve`: all-pairs shortest path as a fixed-point computation with no
//! explicit termination condition.

use uc::lang::Program;
use uc::seqc::oracle;

const WAVEFRONT: &str = r#"
    #define N 10
    index_set I:i = {0..N-1}, J:j = I;
    int a[N][N];
    main() {
        solve (I, J)
            a[i][j] = (i == 0 || j == 0) ? 1
                    : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
    }
"#;

const STAR_SOLVE_APSP: &str = r#"
    #define N 12
    index_set I:i = {0..N-1}, J:j = I, K:k = I;
    int dist[N][N];
    main() {
        par (I, J)
            st (i == j) dist[i][j] = 0;
            others dist[i][j] = (i * 7 + j * 13) % N + 1;
        *solve (I, J)
            dist[i][j] = $<(K; dist[i][k] + dist[k][j]);
    }
"#;

fn main() {
    let mut wf = Program::compile(WAVEFRONT).expect("wavefront compiles");
    wf.run().expect("wavefront runs");
    let a = wf.read_int_array("a").unwrap();
    println!("wavefront (Delannoy) matrix via solve:");
    for r in 0..10 {
        println!(
            "{}",
            a[r * 10..(r + 1) * 10]
                .iter()
                .map(|v| format!("{v:>7}"))
                .collect::<String>()
        );
    }
    assert_eq!(a[99], {
        // Sequential recurrence as the oracle.
        let mut e = vec![0i64; 100];
        for i in 0..10usize {
            for j in 0..10usize {
                e[i * 10 + j] = if i == 0 || j == 0 {
                    1
                } else {
                    e[(i - 1) * 10 + j] + e[(i - 1) * 10 + j - 1] + e[i * 10 + j - 1]
                };
            }
        }
        e[99]
    });

    let mut apsp = Program::compile(STAR_SOLVE_APSP).expect("*solve compiles");
    apsp.run().expect("*solve runs");
    let d = apsp.read_int_array("dist").unwrap();
    let expect = oracle::floyd_warshall(oracle::bench_graph(12), 12);
    assert_eq!(d, expect, "fixed point must equal Floyd-Warshall");
    println!();
    println!("*solve reached the shortest-path fixed point with no explicit");
    println!("termination test; cycles: {} (the compiler's snapshot/compare", apsp.cycles());
    println!("overhead is the price §3.6 notes a hand-refined *par avoids).");
}
