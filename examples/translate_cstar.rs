//! The UC→C* translation (§5): the prototype compiler emitted C* source
//! for the Connection Machine's C* compiler. This example prints the
//! translation of the O(N³) shortest-path program — compare with the
//! paper's Figure 10.
//!
//! ```sh
//! cargo run --example translate_cstar
//! ```

use uc::lang::{diag::Diagnostics, cstar_emit, parser, sema};

const APSP_N3: &str = r#"
    #define N 32
    #define LOGN 5
    index_set I:i = {0..N-1}, J:j = I, K:k = I, L:l = {0..LOGN-1};
    int d[N][N];
    main() {
        par (I, J)
            st (i == j) d[i][j] = 0;
            others d[i][j] = rand() % N + 1;
        seq (L)
            par (I, J)
                d[i][j] = $<(K; d[i][k] + d[k][j]);
    }
"#;

fn main() {
    let mut diags = Diagnostics::default();
    let unit = parser::parse(APSP_N3, &mut diags).expect("parses");
    let checked = sema::check(unit, &mut diags).expect("checks");
    println!("/* ---- UC source ---- */");
    println!("{APSP_N3}");
    println!("/* ---- emitted C* ---- */");
    println!("{}", cstar_emit::emit_cstar(&checked));
}
