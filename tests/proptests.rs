//! Property-based tests over whole UC programs: for arbitrary inputs,
//! parallel programs must agree with their sequential semantics.

use proptest::prelude::*;
use uc::lang::Program;
use uc::seqc::oracle;

fn compile(src: &str, defines: &[(&str, i64)]) -> Program {
    Program::compile_with_defines(src, Default::default(), defines)
        .unwrap_or_else(|d| panic!("compile failed:\n{d}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Σ, min, max and guarded reductions equal sequential folds.
    #[test]
    fn reductions_match_folds(data in prop::collection::vec(-1000i64..1000, 1..40)) {
        let n = data.len();
        let src = r#"
            #define N 8
            index_set I:i = {0..N-1};
            int a[N], s, mn, mx, pos;
            main() {
                s = $+(I; a[i]);
                mn = $<(I; a[i]);
                mx = $>(I; a[i]);
                pos = $+(I st (a[i] > 0) a[i]);
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.write_int_array("a", &data).unwrap();
        p.run().unwrap();
        prop_assert_eq!(p.read_int("s").unwrap(), data.iter().sum::<i64>());
        prop_assert_eq!(p.read_int("mn").unwrap(), *data.iter().min().unwrap());
        prop_assert_eq!(p.read_int("mx").unwrap(), *data.iter().max().unwrap());
        prop_assert_eq!(
            p.read_int("pos").unwrap(),
            data.iter().filter(|&&x| x > 0).sum::<i64>()
        );
    }

    /// The logical reductions ($&&, $||, $^) are C-truth folds.
    #[test]
    fn logical_reductions(data in prop::collection::vec(0i64..3, 1..30)) {
        let n = data.len();
        let src = r#"
            #define N 8
            index_set I:i = {0..N-1};
            int a[N], andv, orv, xorv;
            main() {
                andv = $&&(I; a[i]);
                orv = $||(I; a[i]);
                xorv = $^(I; a[i]);
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.write_int_array("a", &data).unwrap();
        p.run().unwrap();
        prop_assert_eq!(p.read_int("andv").unwrap(), data.iter().all(|&x| x != 0) as i64);
        prop_assert_eq!(p.read_int("orv").unwrap(), data.iter().any(|&x| x != 0) as i64);
        let parity = data.iter().filter(|&&x| x != 0).count() % 2;
        prop_assert_eq!(p.read_int("xorv").unwrap(), parity as i64);
    }

    /// Ranksort sorts any set of distinct keys.
    #[test]
    fn ranksort_sorts(perm in prop::collection::vec(0usize..64, 2..32)) {
        // Deduplicate to distinct keys (ranksort's precondition, §3.4).
        let mut keys: Vec<i64> = perm.iter().map(|&x| x as i64).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut rng_order = keys.clone();
        // A deterministic shuffle.
        let n = rng_order.len();
        for k in 1..n {
            rng_order.swap(k, (k * 7 + 3) % (k + 1));
        }
        let src = r#"
            #define N 8
            index_set I:i = {0..N-1}, J:j = I;
            int a[N], sorted[N];
            main() {
                par (I) {
                    int rank;
                    rank = $+(J st (a[j] < a[i]) 1);
                    sorted[rank] = a[i];
                }
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.write_int_array("a", &rng_order).unwrap();
        p.run().unwrap();
        prop_assert_eq!(p.read_int_array("sorted").unwrap(), keys);
    }

    /// Odd–even transposition sorts arbitrary data (duplicates allowed).
    #[test]
    fn odd_even_sorts(mut data in prop::collection::vec(-50i64..50, 2..24)) {
        let n = data.len();
        let src = r#"
            #define N 8
            index_set I:i = {0..N-1};
            int x[N];
            main() {
                *oneof (I)
                    st (i % 2 == 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
                    st (i % 2 != 0 && x[i] > x[i+1]) swap(x[i], x[i+1]);
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.write_int_array("x", &data).unwrap();
        p.run().unwrap();
        data.sort_unstable();
        prop_assert_eq!(p.read_int_array("x").unwrap(), data);
    }

    /// The Figure 4 APSP program equals Floyd–Warshall on random graphs.
    #[test]
    fn apsp_matches_oracle(n in 2usize..10, seed in 0u64..500) {
        let mut graph = vec![0i64; n * n];
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    graph[i * n + j] = ((s >> 33) % (2 * n as u64) + 1) as i64;
                }
            }
        }
        let src = r#"
            #define N 4
            index_set I:i = {0..N-1}, J:j = I, K:k = I;
            int d[N][N];
            main() {
                seq (K)
                    par (I, J)
                        st (d[i][k] + d[k][j] < d[i][j])
                            d[i][j] = d[i][k] + d[k][j];
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.write_int_array("d", &graph).unwrap();
        p.run().unwrap();
        prop_assert_eq!(
            p.read_int_array("d").unwrap(),
            oracle::floyd_warshall(graph, n)
        );
    }

    /// Permute mappings never change results, only layout: the shifted
    /// kernel agrees for any shift in a small window.
    #[test]
    fn permute_mapping_transparent(shift in 1i64..4, n in 8usize..32) {
        let plain = format!(
            r#"
            #define N {n}
            index_set I:i = {{0..N-1}};
            int a[N], b[N];
            main() {{
                par (I) {{ a[i] = i * 3; b[i] = 100 - i; }}
                par (I) st (i < N - {shift}) a[i] = a[i] + b[i + {shift}];
            }}
            "#
        );
        let mapped = format!(
            r#"
            #define N {n}
            index_set I:i = {{0..N-1}};
            int a[N], b[N];
            map (I) {{ permute (I) b[i + {shift}] :- a[i]; }}
            main() {{
                par (I) {{ a[i] = i * 3; b[i] = 100 - i; }}
                par (I) st (i < N - {shift}) a[i] = a[i] + b[i + {shift}];
            }}
            "#
        );
        let mut p1 = compile(&plain, &[]);
        p1.run().unwrap();
        let mut p2 = compile(&mapped, &[]);
        p2.run().unwrap();
        prop_assert_eq!(
            p1.read_int_array("a").unwrap(),
            p2.read_int_array("a").unwrap()
        );
        prop_assert_eq!(
            p1.read_int_array("b").unwrap(),
            p2.read_int_array("b").unwrap()
        );
    }

    /// The prefix-sums program (Figure 2) equals the scan oracle for any
    /// power-of-two-or-not size.
    #[test]
    fn prefix_sums_any_size(n in 2usize..48) {
        let src = r#"
            #define N 8
            index_set I:i = {0..N-1};
            int a[N], cnt[N];
            main() {
                par (I) { a[i] = i * i - 3; cnt[i] = 0; }
                *par (I) st (i >= power2(cnt[i])) {
                    a[i] = a[i] + a[i - power2(cnt[i])];
                    cnt[i] = cnt[i] + 1;
                }
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.run().unwrap();
        let vals: Vec<i64> = (0..n as i64).map(|i| i * i - 3).collect();
        let expect: Vec<i64> = vals
            .iter()
            .scan(0i64, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        prop_assert_eq!(p.read_int_array("a").unwrap(), expect);
    }

    /// The wavefront solve equals the sequential recurrence at any size.
    #[test]
    fn wavefront_any_size(n in 2usize..12) {
        let src = r#"
            #define N 4
            index_set I:i = {0..N-1}, J:j = I;
            int a[N][N];
            main() {
                solve (I, J)
                    a[i][j] = (i == 0 || j == 0) ? 1
                            : a[i-1][j] + a[i-1][j-1] + a[i][j-1];
            }
        "#;
        let mut p = compile(src, &[("N", n as i64)]);
        p.run().unwrap();
        let mut expect = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                expect[i * n + j] = if i == 0 || j == 0 {
                    1
                } else {
                    expect[(i - 1) * n + j]
                        + expect[(i - 1) * n + j - 1]
                        + expect[i * n + j - 1]
                };
            }
        }
        prop_assert_eq!(p.read_int_array("a").unwrap(), expect);
    }
}
