//! Golden lint corpus.
//!
//! Every `tests/corpus/*.uc` file declares the exact findings `uc check`
//! must report in a leading `// expect: CODE@LINE ...` header (an empty
//! list marks a program every pass must stay silent on). The harness
//! runs the full pipeline — lex, parse, sema, map interpretation, all
//! lint passes — and compares code + line against the header, so lint
//! spans are pinned by the corpus, not just by unit tests.

use std::fs;
use std::path::{Path, PathBuf};

use uc::lang::analysis::{self, LintConfig, LINTS};

fn corpus() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "uc"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p).expect("readable corpus file");
            (p, src)
        })
        .collect()
}

/// The `CODE@LINE` entries from the `// expect:` header, sorted.
fn expectations(path: &Path, src: &str) -> Vec<String> {
    let first = src.lines().next().unwrap_or("");
    let Some(rest) = first.strip_prefix("// expect:") else {
        panic!("{} is missing its `// expect:` header", path.display());
    };
    let mut out: Vec<String> = rest.split_whitespace().map(str::to_string).collect();
    out.sort();
    out
}

#[test]
fn corpus_findings_match_headers() {
    let files = corpus();
    assert!(files.len() >= 10, "corpus shrank to {} files", files.len());
    for (path, src) in &files {
        let expected = expectations(path, src);
        let diags = analysis::check_source(src, &[], &LintConfig::default());
        assert!(
            !diags.has_errors(),
            "{} must be a valid program:\n{diags}",
            path.display()
        );
        let mut got: Vec<String> = diags
            .items
            .iter()
            .filter_map(|d| d.code.map(|c| format!("{c}@{}", d.span.line)))
            .collect();
        got.sort();
        assert_eq!(got, expected, "{} findings diverge from header", path.display());
    }
}

#[test]
fn corpus_covers_every_lint_code() {
    let mut covered: Vec<&str> = Vec::new();
    for (path, src) in &corpus() {
        for entry in expectations(path, src) {
            let code = entry.split('@').next().unwrap().to_string();
            let info = analysis::lint(&code)
                .unwrap_or_else(|| panic!("{}: unknown code {code}", path.display()));
            covered.push(info.code);
        }
    }
    for lint in LINTS {
        assert!(
            covered.contains(&lint.code),
            "no positive corpus program triggers {} ({})",
            lint.code,
            lint.name
        );
    }
}

#[test]
fn deny_warnings_fails_positive_and_passes_clean_programs() {
    let mut cfg = LintConfig::default();
    cfg.deny("warnings").unwrap();
    for (path, src) in &corpus() {
        let expected = expectations(path, src);
        let diags = analysis::check_source(src, &[], &cfg);
        assert_eq!(
            diags.has_errors(),
            !expected.is_empty(),
            "{} under --deny warnings",
            path.display()
        );
    }
}

#[test]
fn allowing_a_code_silences_it() {
    let (path, src) = corpus()
        .into_iter()
        .find(|(p, _)| p.ends_with("race_scalar.uc"))
        .expect("race_scalar.uc in corpus");
    let mut cfg = LintConfig::default();
    cfg.allow("UC101").unwrap();
    let diags = analysis::check_source(&src, &[], &cfg);
    assert!(
        diags.items.iter().all(|d| d.code != Some("UC101")),
        "{}: UC101 still reported under --allow UC101",
        path.display()
    );
}
