//! Hostile-input stress harness.
//!
//! Every program in `tests/corpus/hostile/` is written to break the
//! implementation: infinite loops, unbounded recursion, huge or empty
//! geometries, conflicting sends, division storms. The contract under
//! test is fault containment — each one must end in a structured
//! compile diagnostic or a structured [`RuntimeError`], never a panic,
//! a hang or an OOM, under both default and tightened budgets.
//!
//! A seeded generator (driven through the proptest shim so failures
//! shrink to a minimal statement list) extends the curated corpus with
//! arbitrary small programs assembled from the same attack fragments.

use proptest::prelude::*;
use uc::lang::{ExecConfig, ExecLimits, Program, RuntimeError};

fn corpus() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/hostile");
    let mut programs = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "uc") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            programs.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    programs.sort();
    assert!(programs.len() >= 10, "hostile corpus shrank to {}", programs.len());
    programs
}

/// The budgets `uc run` applies when no flags are given, plus a
/// wall-clock deadline: several corpus programs terminate only via the
/// 2^22-iteration cap, which takes minutes in debug builds. The
/// deadline is itself one of the budgets under test, so leaning on it
/// keeps the run honest *and* fast.
fn default_budgets() -> ExecConfig {
    let limits = ExecLimits { timeout_ms: Some(3_000), ..Default::default() };
    ExecConfig { limits, ..Default::default() }
}

/// The budgets a hosting service would impose per request.
fn tight_budgets() -> ExecConfig {
    let limits = ExecLimits {
        fuel: Some(50_000),
        max_mem_bytes: Some(1 << 20),
        max_call_depth: 16,
        max_iterations: 1_000,
        timeout_ms: Some(2_000),
        ..Default::default()
    };
    ExecConfig { limits, ..Default::default() }
}

/// Compile and run one hostile program, asserting containment: a
/// structured rejection or a structured runtime error — in particular
/// never `RuntimeError::Internal`, which would mean a caught panic.
fn assert_contained(name: &str, src: &str, cfg: ExecConfig, label: &str) {
    let mut p = match Program::compile_with(src, cfg) {
        // A compile diagnostic is a structured rejection; it just has
        // to say something.
        Err(diags) => {
            assert!(!diags.to_string().is_empty(), "{name} [{label}]: empty diagnostics");
            return;
        }
        Ok(p) => p,
    };
    let err = p
        .run()
        .expect_err(&format!("{name} [{label}]: hostile program ran to completion"));
    assert!(
        !matches!(err.error, RuntimeError::Internal(_)),
        "{name} [{label}]: contained a panic instead of trapping cleanly: {err}"
    );
    assert!(!err.to_string().is_empty(), "{name} [{label}]: silent failure");
}

#[test]
fn corpus_is_contained_under_default_budgets() {
    for (name, src) in corpus() {
        assert_contained(&name, &src, default_budgets(), "default");
    }
}

#[test]
fn corpus_is_contained_under_tight_budgets() {
    for (name, src) in corpus() {
        assert_contained(&name, &src, tight_budgets(), "tight");
    }
}

/// Budget traps must read as budget traps: the CLI greps for this
/// phrase, and so do users' scripts.
#[test]
fn budget_traps_mention_the_budget() {
    let (name, src) = corpus()
        .into_iter()
        .find(|(name, _)| name == "infinite_machine_loop.uc")
        .expect("corpus lists infinite_machine_loop.uc");
    let limits = ExecLimits { fuel: Some(10_000), ..Default::default() };
    let mut p = Program::compile_with(&src, ExecConfig { limits, ..Default::default() })
        .unwrap_or_else(|d| panic!("{name}: {d}"));
    let err = p.run().expect_err("must exhaust fuel");
    assert!(err.to_string().contains("budget exceeded"), "{err}");
}

// ---------------------------------------------------------------------
// Generated programs: arbitrary compositions of attack fragments.
// ---------------------------------------------------------------------

/// Statement fragments the generator draws from. Each is hostile on its
/// own or in combination; none may escape the budget envelope.
const FRAGMENTS: &[&str] = &[
    "par (I) a[i] = a[i] + b[i];",
    "par (I) a[i + 1] = i;",
    "par (I) a[0] = i;",
    "par (I) a[i] = a[i] / b[i];",
    "s = $+(I; a[i]);",
    "while (s < 100) s = s + 1;",
    "while (1) par (I) a[i] = a[i] + 1;",
    "*par (I) st (1) a[i] = 1 - a[i];",
    "s = rec(s);",
    "par (I) { int t = i * i; a[i] = t; }",
    "seq (I) b[i] = a[i] + s;",
    "for (s = 0; s < 1000000; s = s + 1) ;",
];

fn render_program(ops: &[usize], n: i64) -> String {
    let mut src = format!(
        "#define N {n}\n\
         index_set I:i = {{0..N-1}};\n\
         int a[N], b[N], s;\n\
         int rec(int x) {{ return rec(x + 1); }}\n\
         main() {{\n"
    );
    for &op in ops {
        src.push_str("    ");
        src.push_str(FRAGMENTS[op % FRAGMENTS.len()]);
        src.push('\n');
    }
    src.push_str("}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of attack fragments, at any small size, either runs
    /// to completion or traps with a structured, non-internal error
    /// under service budgets. The shrinker reduces a failure to the
    /// shortest offending statement list.
    #[test]
    fn generated_programs_are_contained(
        ops in prop::collection::vec(0usize..FRAGMENTS.len(), 0..10),
        n in 1i64..9,
    ) {
        let src = render_program(&ops, n);
        match Program::compile_with(&src, tight_budgets()) {
            Err(diags) => prop_assert!(!diags.to_string().is_empty(), "empty diagnostics"),
            Ok(mut p) => {
                if let Err(e) = p.run() {
                    prop_assert!(
                        !matches!(e.error, RuntimeError::Internal(_)),
                        "caught a panic from:\n{src}\n{e}"
                    );
                }
            }
        }
    }
}
