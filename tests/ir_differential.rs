//! Differential testing of the two executor backends.
//!
//! The register-IR backend promises bit-identical observable behaviour
//! to the AST tree-walker: same global scalars and arrays (floats by
//! bit pattern), same simulated cycles and per-class op counters, and
//! the same `RunError` — variant, span and UC call stack — when a
//! program traps. This suite runs every committed example, the lint
//! corpus and the hostile corpus under both backends with explicitly
//! pinned configs (so `UC_EXEC` / `UC_IR_OPT` in the environment cannot
//! flake it) and compares everything.
//!
//! A subprocess leg re-runs the example sweep under `UC_THREADS=1` and
//! `8`, proving backend parity is also thread-count-invariant (the
//! worker pool is env-sized once per process, so this needs a child
//! process per thread count — same protocol as `determinism.rs`).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use uc::lang::exec::{ExecBackend, IrOpt};
use uc::lang::{ExecConfig, ExecLimits, Program};

/// Every observable of one program run, ready for exact comparison.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// `Ok` is the rendered globals; `Err` the full structured error.
    result: Result<Vec<String>, String>,
    cycles: u64,
    counters: Vec<u64>,
}

fn observe(src: &str, cfg: ExecConfig) -> Result<Outcome, String> {
    let mut p = Program::compile_with(src, cfg).map_err(|d| d.to_string())?;
    let run = p.run();
    // Capture the cost model before reading arrays back.
    let cycles = p.cycles();
    let k = p.machine().counters();
    let counters = vec![k.alu, k.news, k.router, k.scan, k.context, k.front_end];
    let result = match run {
        Err(e) => Err(format!("{e:?}")),
        Ok(()) => {
            let mut state = Vec::new();
            let mut scalars = p.scalar_names();
            scalars.sort();
            for name in scalars {
                if let Some(v) = p.read_scalar(&name) {
                    state.push(format!("{name} = {v:?}"));
                }
            }
            let mut arrays = p.array_names();
            arrays.sort();
            for name in arrays {
                if let Ok(data) = p.read_int_array(&name) {
                    state.push(format!("{name} = {data:?}"));
                } else if let Ok(data) = p.read_float_array(&name) {
                    let bits: Vec<u64> = data.iter().map(|f| f.to_bits()).collect();
                    state.push(format!("{name} = {bits:?}"));
                }
            }
            Ok(state)
        }
    };
    Ok(Outcome { result, cycles, counters })
}

fn config(backend: ExecBackend, ir_opt: IrOpt, limits: ExecLimits) -> ExecConfig {
    ExecConfig { backend, ir_opt, limits, ..Default::default() }
}

/// Deterministic tight budgets for the hostile corpus: every attack
/// program must trap on fuel, memory, depth or the iteration cap —
/// never the wall clock, whose timing would make the comparison flaky.
fn hostile_limits() -> ExecLimits {
    ExecLimits {
        fuel: Some(50_000),
        max_mem_bytes: Some(1 << 20),
        max_call_depth: 16,
        max_iterations: 1_000,
        ..Default::default()
    }
}

fn uc_files(dir: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "uc"))
        .collect();
    files.sort();
    files
}

/// All differential inputs with the limits they run under.
fn corpus() -> Vec<(PathBuf, ExecLimits)> {
    let mut inputs = Vec::new();
    for f in uc_files("examples/uc") {
        inputs.push((f, ExecLimits::default()));
    }
    for f in uc_files("tests/corpus") {
        inputs.push((f, ExecLimits::default()));
    }
    for f in uc_files("tests/corpus/hostile") {
        inputs.push((f, hostile_limits()));
    }
    assert!(inputs.len() >= 20, "differential corpus shrank to {}", inputs.len());
    inputs
}

/// The headline parity guarantee: on every input, the IR backend matches
/// the tree-walker observable-for-observable, including error spans and
/// call stacks on the hostile corpus.
#[test]
fn ir_matches_ast_on_every_corpus_program() {
    for (path, limits) in corpus() {
        let src = std::fs::read_to_string(&path).unwrap();
        let ast = observe(&src, config(ExecBackend::Ast, IrOpt::Balanced, limits.clone()));
        let ir = observe(&src, config(ExecBackend::Ir, IrOpt::Balanced, limits));
        match (ast, ir) {
            // Compile rejections carry no backend; both must agree.
            (Err(a), Err(b)) => assert_eq!(a, b, "{}", path.display()),
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{}", path.display()),
            (a, b) => panic!("{}: one backend rejected, one ran:\n{a:?}\n{b:?}", path.display()),
        }
    }
}

/// Aggressive IR rewrites may only *remove* charged machine work: the
/// program state must stay identical and the cycle count must never
/// rise. On the dead-context corpus program the drop must be strict —
/// that file exists to prove the pass fires.
#[test]
fn aggressive_opt_preserves_results_and_never_adds_cycles() {
    for (path, limits) in corpus() {
        let src = std::fs::read_to_string(&path).unwrap();
        let bal = observe(&src, config(ExecBackend::Ir, IrOpt::Balanced, limits.clone()));
        let agg = observe(&src, config(ExecBackend::Ir, IrOpt::Aggressive, limits));
        let (Ok(bal), Ok(agg)) = (bal, agg) else { continue };
        // Errors may legitimately differ (a trap inside an eliminated
        // dead arm vanishes), but successful runs must agree exactly.
        if let (Ok(b), Ok(a)) = (&bal.result, &agg.result) {
            assert_eq!(b, a, "{}: aggressive IR changed results", path.display());
            assert!(
                agg.cycles <= bal.cycles,
                "{}: aggressive IR raised cycles {} -> {}",
                path.display(),
                bal.cycles,
                agg.cycles
            );
            if path.ends_with("tests/corpus/dead_context.uc")
                || path.file_name().is_some_and(|n| n == "dead_context.uc")
            {
                assert!(
                    agg.cycles < bal.cycles,
                    "dead-context elimination did not fire ({} cycles)",
                    agg.cycles
                );
            }
        }
    }
}

/// FNV-1a over the debug rendering of an outcome.
fn digest(o: &Outcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{o:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Child half of the subprocess protocol: inert unless `UC_IR_DIFF_CHILD`
/// is set. Prints one digest line per (program, backend) pair.
#[test]
fn emit_backend_digests_when_asked() {
    if std::env::var("UC_IR_DIFF_CHILD").is_err() {
        return;
    }
    for (path, limits) in corpus() {
        let src = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for (tag, backend) in [("ast", ExecBackend::Ast), ("ir", ExecBackend::Ir)] {
            let d = match observe(&src, config(backend, IrOpt::Balanced, limits.clone())) {
                Ok(o) => digest(&o),
                Err(_) => 0, // compile rejection: backend-independent
            };
            println!("DIGEST {name}/{tag} {d:016x}");
        }
    }
}

fn digests_under(threads: &str) -> BTreeMap<String, String> {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["emit_backend_digests_when_asked", "--exact", "--nocapture", "--test-threads=1"])
        .env("UC_IR_DIFF_CHILD", "1")
        .env("UC_THREADS", threads)
        .output()
        .expect("spawn child test binary");
    assert!(
        out.status.success(),
        "child under UC_THREADS={threads} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| l.split("DIGEST ").nth(1))
        .filter_map(|l| {
            let (name, hex) = l.split_once(' ')?;
            Some((name.to_string(), hex.to_string()))
        })
        .collect()
}

/// Backend parity must hold at every thread count, and each backend's
/// digests must themselves be thread-count-invariant.
#[test]
fn backends_agree_under_one_and_eight_threads() {
    if std::env::var("UC_IR_DIFF_CHILD").is_ok() {
        return; // don't recurse when the whole binary runs in a child
    }
    let one = digests_under("1");
    let eight = digests_under("8");
    assert!(!one.is_empty(), "child produced no digests");
    assert_eq!(one, eight, "digests moved with the thread count");
    for (name, d) in &one {
        let Some(prog) = name.strip_suffix("/ast") else { continue };
        let ir = &one[&format!("{prog}/ir")];
        assert_eq!(d, ir, "{prog}: IR and AST backends diverge under UC_THREADS=1");
    }
}
