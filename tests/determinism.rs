//! Bit-for-bit determinism across thread counts.
//!
//! The parallel runtime (shims/rayon driving `uc_cm::par`) promises that
//! results never depend on how many threads execute a kernel: chunk
//! boundaries are a function of element count only, so even float
//! fold/scan association is fixed. This suite enforces that promise the
//! only way an env-var-sized global pool can be tested — by re-running
//! this very test binary as a subprocess under `UC_THREADS=1`, `2` and
//! `8` and comparing digests of everything observable: field contents
//! (floats via `to_bits`), `cycles()` and every `OpCounters` class.
//!
//! The child side is the `emit_digests_when_asked` test, which only does
//! work when `UC_DET_CHILD` is set; it prints one `DIGEST <name> <hex>`
//! line per kernel.

use std::collections::BTreeMap;
use std::process::Command;

use uc::cm::{Combine, FieldData, Machine, ReduceOp, Scalar};

/// Large enough that every wired hot path (`PAR_THRESHOLD = 1 << 13`)
/// takes its parallel branch.
const N: usize = 1 << 14;

/// FNV-1a, inlined so the digest does not depend on any crate internals.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fold a machine's full observable state into a digest: every field the
/// kernel left behind plus the cost model (cycles and per-class counts).
fn digest_machine(m: &Machine, fields: &[uc::cm::FieldId], h: &mut Fnv) {
    for &f in fields {
        match m.elem_type(f).unwrap() {
            uc::cm::ElemType::Int => {
                for &v in m.int_data(f).unwrap() {
                    h.write_u64(v as u64);
                }
            }
            uc::cm::ElemType::Float => {
                for &v in m.float_data(f).unwrap() {
                    h.write_u64(v.to_bits());
                }
            }
            uc::cm::ElemType::Bool => {
                for &v in m.bool_data(f).unwrap() {
                    h.write(&[v as u8]);
                }
            }
        }
    }
    h.write_u64(m.cycles());
    let c = m.counters();
    for v in [c.alu, c.context, c.news, c.router, c.scan, c.front_end] {
        h.write_u64(v);
    }
}

fn scalar_digest(s: Scalar, h: &mut Fnv) {
    match s {
        Scalar::Int(i) => h.write_u64(i as u64),
        Scalar::Float(f) => h.write_u64(f.to_bits()),
        Scalar::Bool(b) => h.write(&[b as u8]),
    }
}

/// Router send with heavy collisions under every combine mode, plus the
/// collision-detecting variant.
fn kernel_router_send() -> u64 {
    let mut h = Fnv::new();
    for combine in [Combine::Overwrite, Combine::Add, Combine::Min, Combine::Max] {
        let mut m = Machine::with_defaults();
        let vp = m.new_vp_set("senders", &[N]).unwrap();
        let src = m.alloc_int(vp, "src").unwrap();
        let addr = m.alloc_int(vp, "addr").unwrap();
        let dst = m.alloc_int(vp, "dst").unwrap();
        m.iota(src).unwrap();
        // Addresses land in [0, N/8): ~8 colliding senders per slot.
        m.rand_int(addr, (N / 8) as i64, 0x5eed).unwrap();
        m.fill_unconditional(dst, Scalar::Int(-1)).unwrap();
        let distinct = m.send_detect(dst, addr, src, combine).unwrap();
        h.write(&[distinct as u8]);
        digest_machine(&m, &[src, addr, dst], &mut h);
    }
    h.finish()
}

/// Router get (collision-free gather) through random addresses, with an
/// inactive stripe so masked positions stay untouched.
fn kernel_router_get() -> u64 {
    let mut h = Fnv::new();
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("getters", &[N]).unwrap();
    let table = m.alloc_int(vp, "table").unwrap();
    let addr = m.alloc_int(vp, "addr").unwrap();
    let out = m.alloc_int(vp, "out").unwrap();
    let mask = m.alloc_bool(vp, "mask").unwrap();
    m.iota(table).unwrap();
    m.binop_imm(uc::cm::BinOp::Mul, table, table, Scalar::Int(3)).unwrap();
    m.rand_int(addr, N as i64, 0xfe7c).unwrap();
    m.fill_unconditional(out, Scalar::Int(-7)).unwrap();
    m.write_all(mask, FieldData::Bool((0..N).map(|i| i % 3 != 0).collect())).unwrap();
    m.push_context(mask).unwrap();
    m.get(out, addr, table).unwrap();
    m.pop_context(vp).unwrap();
    h.write(&[0x67]);
    digest_machine(&m, &[table, addr, out, mask], &mut h);
    h.finish()
}

/// Scan chains: unsegmented / masked / segmented integer scans and a
/// float `+`-scan whose association must not move with the thread count.
fn kernel_scan_chain() -> u64 {
    let mut h = Fnv::new();
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("scans", &[N]).unwrap();
    let src = m.alloc_int(vp, "src").unwrap();
    let acc = m.alloc_int(vp, "acc").unwrap();
    let segs = m.alloc_bool(vp, "segs").unwrap();
    let mask = m.alloc_bool(vp, "mask").unwrap();
    m.rand_int(src, 1000, 0xabcd).unwrap();
    m.scan(acc, src, ReduceOp::Add, true, None).unwrap();
    m.scan(acc, acc, ReduceOp::Max, false, None).unwrap();
    m.write_all(segs, FieldData::Bool((0..N).map(|i| i % 1021 == 0).collect())).unwrap();
    m.scan(acc, acc, ReduceOp::Add, true, Some(segs)).unwrap();
    m.write_all(mask, FieldData::Bool((0..N).map(|i| i % 5 != 2).collect())).unwrap();
    m.push_context(mask).unwrap();
    m.scan(acc, acc, ReduceOp::Min, false, None).unwrap();
    m.pop_context(vp).unwrap();
    digest_machine(&m, &[src, acc, segs, mask], &mut h);

    let fsrc = m.alloc_float(vp, "fsrc").unwrap();
    let facc = m.alloc_float(vp, "facc").unwrap();
    m.write_all(
        fsrc,
        FieldData::F64((0..N).map(|i| (i as f64 + 0.25) * 1e-3).collect()),
    )
    .unwrap();
    m.scan(facc, fsrc, ReduceOp::Add, true, None).unwrap();
    m.scan(facc, facc, ReduceOp::Add, false, None).unwrap();
    digest_machine(&m, &[fsrc, facc], &mut h);
    h.finish()
}

/// Reductions, including float `+` (association-sensitive) and `Arb`
/// (which must deterministically pick the first active operand).
fn kernel_reduce_suite() -> u64 {
    let mut h = Fnv::new();
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("reds", &[N]).unwrap();
    let src = m.alloc_int(vp, "src").unwrap();
    let mask = m.alloc_bool(vp, "mask").unwrap();
    m.rand_int(src, 1 << 20, 0x1234).unwrap();
    m.write_all(mask, FieldData::Bool((0..N).map(|i| i % 7 != 3).collect())).unwrap();
    m.push_context(mask).unwrap();
    for op in [
        ReduceOp::Add,
        ReduceOp::Mul,
        ReduceOp::Min,
        ReduceOp::Max,
        ReduceOp::And,
        ReduceOp::Or,
        ReduceOp::Xor,
        ReduceOp::Arb,
    ] {
        scalar_digest(m.reduce(src, op).unwrap(), &mut h);
    }
    m.pop_context(vp).unwrap();

    let fsrc = m.alloc_float(vp, "fsrc").unwrap();
    m.write_all(
        fsrc,
        FieldData::F64((0..N).map(|i| ((i * 37) % 1009) as f64 * 1e-2).collect()),
    )
    .unwrap();
    for op in [ReduceOp::Add, ReduceOp::Min, ReduceOp::Max] {
        scalar_digest(m.reduce(fsrc, op).unwrap(), &mut h);
    }
    digest_machine(&m, &[src, mask, fsrc], &mut h);
    h.finish()
}

/// An elementwise chain through the wired `ops.rs` paths: binops,
/// select, masked fill and the parallel `any_ne` comparison.
fn kernel_elementwise() -> u64 {
    let mut h = Fnv::new();
    let mut m = Machine::with_defaults();
    let vp = m.new_vp_set("elems", &[N]).unwrap();
    let a = m.alloc_int(vp, "a").unwrap();
    let b = m.alloc_int(vp, "b").unwrap();
    let c = m.alloc_int(vp, "c").unwrap();
    let cond = m.alloc_bool(vp, "cond").unwrap();
    m.iota(a).unwrap();
    m.rand_int(b, 1 << 16, 0x77).unwrap();
    m.binop(uc::cm::BinOp::Add, c, a, b).unwrap();
    m.binop_imm(uc::cm::BinOp::Mod, c, c, Scalar::Int(911)).unwrap();
    m.binop(uc::cm::BinOp::Lt, cond, c, b).unwrap();
    m.select(c, cond, a, b).unwrap();
    h.write(&[m.any_ne(a, c).unwrap() as u8]);
    m.fill_unconditional(b, Scalar::Int(42)).unwrap();
    digest_machine(&m, &[a, b, c, cond], &mut h);
    h.finish()
}

/// The paper's Figure 6/7 pipelines end to end (UC compile + run + C*
/// baseline), digested through their rendered JSON.
fn kernel_figures() -> u64 {
    let mut h = Fnv::new();
    h.write(uc_bench::to_json(&uc_bench::fig6(&[4, 8])).as_bytes());
    h.write(uc_bench::to_json(&uc_bench::fig7(&[4, 8])).as_bytes());
    h.finish()
}

fn all_kernels() -> Vec<(&'static str, u64)> {
    vec![
        ("router_send", kernel_router_send()),
        ("router_get", kernel_router_get()),
        ("scan_chain", kernel_scan_chain()),
        ("reduce_suite", kernel_reduce_suite()),
        ("elementwise", kernel_elementwise()),
        ("figures", kernel_figures()),
    ]
}

/// Child half of the subprocess protocol: inert unless `UC_DET_CHILD` is
/// set, in which case the pool has already been sized from the parent's
/// `UC_THREADS` and we print one digest line per kernel.
#[test]
fn emit_digests_when_asked() {
    if std::env::var("UC_DET_CHILD").is_err() {
        return;
    }
    for (name, digest) in all_kernels() {
        println!("DIGEST {name} {digest:016x}");
    }
}

fn digests_under(threads: &str) -> BTreeMap<String, String> {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["emit_digests_when_asked", "--exact", "--nocapture", "--test-threads=1"])
        .env("UC_DET_CHILD", "1")
        .env("UC_THREADS", threads)
        .output()
        .expect("spawn child test binary");
    assert!(
        out.status.success(),
        "child under UC_THREADS={threads} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    // The libtest harness glues its "test ... " progress prefix onto the
    // first digest (no newline before our println!), so match the marker
    // anywhere in the line rather than only at the start.
    let map: BTreeMap<String, String> = stdout
        .lines()
        .filter_map(|l| l.split("DIGEST ").nth(1))
        .filter_map(|l| {
            let (name, hex) = l.split_once(' ')?;
            Some((name.to_string(), hex.to_string()))
        })
        .collect();
    assert_eq!(map.len(), all_kernels().len(), "missing digest lines:\n{stdout}");
    map
}

/// The headline guarantee: every kernel digest — field bits, cycles and
/// op counters — is identical under 1, 2 and 8 threads.
#[test]
fn bit_identical_across_thread_counts() {
    if std::env::var("UC_DET_CHILD").is_ok() {
        return; // don't recurse when the whole binary runs in a child
    }
    let one = digests_under("1");
    let two = digests_under("2");
    let eight = digests_under("8");
    for (name, d1) in &one {
        assert_eq!(d1, &two[name], "kernel {name}: UC_THREADS=1 vs 2 diverge");
        assert_eq!(d1, &eight[name], "kernel {name}: UC_THREADS=1 vs 8 diverge");
    }
}

/// The digests must also be stable run-to-run at a fixed thread count —
/// otherwise the cross-thread-count comparison could pass vacuously on
/// noise cancelling out.
#[test]
fn digests_are_stable_within_a_thread_count() {
    if std::env::var("UC_DET_CHILD").is_ok() {
        return;
    }
    assert_eq!(digests_under("2"), digests_under("2"));
}
