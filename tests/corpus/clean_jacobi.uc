// expect:
// Four single-axis NEWS shifts: the executor keeps these off the router,
// and the comm lint has nothing to say.
#define N 8
index_set I:i = {0..N-1}, J:j = I;
float u[N][N], v[N][N];
int t;
main() {
    par (I, J) u[i][j] = i * N + j;
    for (t = 0; t < 4; t = t + 1) {
        par (I, J) st (i > 0 && i < N-1 && j > 0 && j < N-1)
            v[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]) / 4.0;
        par (I, J) u[i][j] = v[i][j];
    }
}
