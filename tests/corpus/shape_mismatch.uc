// expect: UC111@7
// `a` has 16 elements laid out over an 8-element iteration space, so the
// identity access is misaligned and takes the general router.
index_set I:i = {0..7};
int a[16], b[8];
main() {
    par (I) b[i] = a[i];
}
