// expect:
// Rank sort from the paper's §3: every pass is clean on it. The rank
// reduction combines with $+, so the shared-location rule is satisfied.
#define N 8
index_set I:i = {0..N-1}, J:j = I;
int a[N], rank[N], sorted[N];
main() {
    par (I) a[i] = (N - i) * 3 % 17;
    par (I) rank[i] = $+(J st (a[j] < a[i] || (a[j] == a[i] && j < i)) 1);
    par (I) sorted[rank[i]] = a[i];
}
