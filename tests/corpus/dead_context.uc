// expect: UC120@8 UC120@9
// Constant-false predicates select the empty context: the guarded
// statements can never execute (§3.4).
index_set I:i = {0..7};
int a[8];
main() {
    int x;
    x = 0; if (1 > 2) x = 1;
    par (I) st (0) a[i] = x;
}
