// expect: UC111@7
// `a[j][i]` is a regular access whose axes are transposed relative to the
// iteration space: a `map` declaration could make it local or NEWS (§4).
index_set I:i = {0..7}, J:j = I;
int a[8][8], b[8][8];
main() {
    par (I, J) b[i][j] = a[j][i];
}
