// expect: UC130@6
// `x` is read before any path has assigned it.
int s;
main() {
    int x;
    s = x + 1;
}
