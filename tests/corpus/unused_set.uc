// expect: UC121@4
// `J` allocates a virtual-processor set that no statement ever activates.
index_set I:i = {0..7};
index_set J:jj = {0..3};
int a[8];
main() {
    par (I) a[i] = 1;
}
