// expect: UC132@7
// `orphan` is never reached from `main`, directly or transitively.
int s;
int used() {
    return 1;
}
int orphan() {
    return 2;
}
main() {
    s = used();
}
