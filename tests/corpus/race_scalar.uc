// expect: UC101@7
// Every enabled element stores its own index into the one global `s`:
// a write-write race under the §3.4 single-assignment rule.
index_set I:i = {0..7};
int s;
main() {
    par (I) s = i;
}
