/* Every virtual processor sends a different value to the same element:
 * the exclusive-write rule (paper §2.2) must trap the collision. */
#define N 8
index_set I:i = {0..N-1};
int a[N];
main() {
    par (I) a[0] = i;
}
