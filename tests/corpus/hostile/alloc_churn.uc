/* An endless loop that allocates and frees parallel locals every pass:
 * memory must not creep (the budget would catch a leak) and a cycle or
 * wall-clock budget must end the loop. */
#define N 16
index_set I:i = {0..N-1};
int a[N];
main() {
    while (1) {
        par (I) {
            int t = i * 2;
            a[i] = t + 1;
        }
    }
}
