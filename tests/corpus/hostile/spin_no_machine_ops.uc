/* A pure front-end spin: the body issues no machine instructions, so
 * fuel never burns. The iteration cap or the polled deadline must
 * still bound it. */
main() {
    while (1) ;
}
