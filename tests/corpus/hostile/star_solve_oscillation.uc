/* *solve iterates to a fixed point that does not exist: every step
 * flips every cell. Must hit a budget, never hang. */
#define N 4
index_set I:i = {0..N-1}, J:j = I;
int d[N][N];
main() {
    par (I, J) d[i][j] = (i + j) % 2;
    *solve (I, J) d[i][j] = 1 - d[i][j];
}
