/* A zero-sized geometry: N = 0 makes the index range {0..-1} empty and
 * the array extent zero. Must be a structured rejection, not a crash. */
#define N 0
index_set I:i = {0..N-1};
int a[N];
main() {
    par (I) a[i] = 0;
}
