/* A 2^30-element constant index set: the front end must reject the
 * materialisation outright instead of allocating gigabytes. */
index_set I:i = {0..1073741823};
int s;
main() {
    s = $+(I; 1);
}
