/* 2^20 x 64 ints = 512 MiB of field storage, over the default 256 MiB
 * budget: allocation must be refused up front, never attempted. */
#define N 1048576
index_set I:i = {0..N-1};
int a[N][64];
main() {
    par (I) a[i][0] = i;
}
