/* Every active processor divides by zero at once. */
#define N 64
index_set I:i = {0..N-1};
int a[N], z[N];
main() {
    par (I) z[i] = 0;
    par (I) a[i] = (i + 1) / z[i];
}
