/* Never terminates, and every iteration issues machine instructions:
 * the cycle-fuel budget, the iteration cap or the wall-clock deadline
 * must stop it. */
#define N 8
index_set I:i = {0..N-1};
int a[N];
main() {
    while (1) par (I) a[i] = a[i] + 1;
}
