/* The guard never goes false and the state oscillates, so the *par
 * fixpoint never converges: the iteration cap, fuel or deadline must
 * stop it. Kept tiny so capped runs resolve quickly. */
#define N 2
index_set I:i = {0..N-1};
int a[N];
main() {
    *par (I) st (1) a[i] = 1 - a[i];
}
