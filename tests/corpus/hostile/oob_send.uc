/* i*i runs far past the extent of `a`: the router must bounds-check
 * the send, not scribble or crash. */
#define N 8
index_set I:i = {0..N-1};
int a[N];
main() {
    par (I) a[i * i] = i;
}
