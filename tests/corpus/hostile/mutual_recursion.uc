/* Unbounded mutual recursion: the depth budget must catch cycles that
 * never revisit the same function frame shape. */
int out;
int ping(int n) {
    return pong(n + 1);
}
int pong(int n) {
    return ping(n + 1);
}
main() {
    out = ping(0);
}
