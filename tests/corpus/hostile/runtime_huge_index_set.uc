/* Index-set bounds are compile-time constants in UC; a bound computed
 * at run time must be rejected with a clean diagnostic, and the
 * executor keeps its own materialisation cap as defence in depth. */
int n, out;
main() {
    n = 1;
    while (n < 134217728) n = n * 2;
    index_set J:j = {0..n};
    out = n;
}
