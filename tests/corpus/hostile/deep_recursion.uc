/* Unbounded self-recursion: must trap on the call-depth budget, not
 * blow the host stack. */
int out;
int down(int n) {
    return down(n + 1);
}
main() {
    out = down(0);
}
