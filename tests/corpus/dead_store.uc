// expect: UC131@6
// The first store to `x` is overwritten before anything reads it.
int s;
main() {
    int x;
    x = 1;
    x = 2;
    s = x;
}
