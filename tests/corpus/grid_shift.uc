// expect: UC110@7
// A diagonal shift displaces two axes at once, so the executor routes it
// through the general router; two NEWS shifts would be cheaper (§4).
index_set I:i = {0..7}, J:j = I;
int a[8][8], b[8][8];
main() {
    par (I, J) b[i][j] = a[i-1][j-1];
}
