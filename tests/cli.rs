//! End-to-end tests of the `uc` command-line driver.

use std::io::Write;
use std::process::Command;

fn uc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_uc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = r#"
    #define N 8
    index_set I:i = {0..N-1};
    int a[N], s;
    main() {
        par (I) a[i] = i * i;
        s = $+(I; a[i]);
    }
"#;

#[test]
fn run_prints_globals_and_cycles() {
    let path = write_temp("uc_cli_run.uc", PROGRAM);
    let out = uc().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s = 140"), "{stdout}");
    assert!(stdout.contains("a[8] = [0, 1, 4, 9, 16, 25, 36, 49]"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cycles on a 16384-processor CM"), "{stderr}");
}

#[test]
fn define_overrides_from_the_command_line() {
    let path = write_temp("uc_cli_define.uc", PROGRAM);
    let out = uc()
        .args(["run", path.to_str().unwrap(), "-D", "N=4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s = 14"), "{stdout}");
}

#[test]
fn check_reports_ok_and_errors() {
    let good = write_temp("uc_cli_good.uc", PROGRAM);
    let out = uc().args(["check", good.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());

    let bad = write_temp("uc_cli_bad.uc", "main() { goto x; }");
    let out = uc().args(["check", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("goto"));
}

#[test]
fn emit_cstar_prints_translation() {
    let path = write_temp("uc_cli_emit.uc", PROGRAM);
    let out = uc().args(["emit-cstar", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("domain SHAPE0"), "{stdout}");
}

#[test]
fn runtime_errors_are_reported() {
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i + 1] = 0; }
    "#;
    let path = write_temp("uc_cli_rterr.uc", src);
    let out = uc().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bounds"));
}

/// `--fuel` must kill a program that would otherwise never terminate,
/// with a nonzero exit and a diagnostic that names the spent budget.
#[test]
fn fuel_flag_kills_an_infinite_loop() {
    let src = r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N];
        main() { while (1) par (I) a[i] = a[i] + 1; }
    "#;
    let path = write_temp("uc_cli_fuel.uc", src);
    let out = uc()
        .args(["run", path.to_str().unwrap(), "--fuel", "50000"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "{stderr}");
    // The failure is located: file, line and column of the trapping
    // statement, rendered through the shared diagnostics path.
    assert!(stderr.contains("uc_cli_fuel.uc:"), "{stderr}");
}

/// `--timeout-ms` bounds even loops that never touch the machine.
#[test]
fn timeout_flag_kills_a_front_end_spin() {
    let path = write_temp("uc_cli_spin.uc", "main() { while (1) ; }");
    let out = uc()
        .args(["run", path.to_str().unwrap(), "--timeout-ms", "200"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "{stderr}");
}

/// `--max-depth` turns runaway recursion into a located diagnostic with
/// a UC-level call stack.
#[test]
fn max_depth_flag_reports_a_call_stack() {
    let src = r#"
        int out;
        int down(int n) { return down(n + 1); }
        main() { out = down(0); }
    "#;
    let path = write_temp("uc_cli_depth.uc", src);
    let out = uc()
        .args(["run", path.to_str().unwrap(), "--max-depth", "12"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exceeded"), "{stderr}");
    assert!(stderr.contains("in `down`"), "{stderr}");
}

/// A program with one deliberate UC101 race for the lint-flag tests.
const RACY: &str = r#"
    index_set I:i = {0..7};
    int s;
    main() { par (I) s = i; }
"#;

#[test]
fn check_reports_lints_as_warnings() {
    let path = write_temp("uc_cli_racy.uc", RACY);
    let out = uc().args(["check", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "plain warnings must not fail the check");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[UC101]"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok (1 warnings)"));
}

#[test]
fn deny_warnings_fails_the_check() {
    let path = write_temp("uc_cli_racy_deny.uc", RACY);
    let out = uc()
        .args(["check", "--deny", "warnings", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[UC101]"));
}

#[test]
fn allow_silences_a_lint_code() {
    let path = write_temp("uc_cli_racy_allow.uc", RACY);
    let out = uc()
        .args(["check", "--allow", "UC101", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("UC101"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok (0 warnings)"));
}

#[test]
fn unknown_lint_code_is_rejected() {
    let path = write_temp("uc_cli_racy_unknown.uc", RACY);
    let out = uc()
        .args(["check", "--deny", "UC999", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown lint code"));
}

/// `--format json` output must round-trip through the shared JSON module
/// the benches use, with the documented fields intact.
#[test]
fn json_format_round_trips() {
    use uc_bench::json::parse_value;

    let path = write_temp("uc_cli_racy_json.uc", RACY);
    let out = uc()
        .args(["check", "--format", "json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = parse_value(stdout.trim()).expect("valid JSON");
    let diags = value.as_array().expect("top-level array");
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    assert_eq!(d.get("code").and_then(|v| v.as_str()), Some("UC101"));
    assert_eq!(d.get("severity").and_then(|v| v.as_str()), Some("warning"));
    assert_eq!(d.get("line").and_then(|v| v.as_u64()), Some(4));
    assert!(d
        .get("message")
        .and_then(|v| v.as_str())
        .is_some_and(|m| m.contains("race")));
}

/// The committed examples are the dogfood corpus: every one must stay
/// clean under `--deny warnings` and actually execute. CI runs the same
/// loop against the release binary.
#[test]
fn examples_stay_lint_clean_and_run() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/uc");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "uc") {
            continue;
        }
        let out = uc()
            .args(["check", "--deny", "warnings", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let out = uc().args(["run", path.to_str().unwrap()]).output().unwrap();
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        seen += 1;
    }
    assert!(seen >= 3, "expected at least 3 UC examples, found {seen}");
}

#[test]
fn usage_errors() {
    let out = uc().output().unwrap();
    assert!(!out.status.success());
    let out = uc().args(["frobnicate", "x.uc"]).output().unwrap();
    assert!(!out.status.success());
}
