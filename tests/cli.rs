//! End-to-end tests of the `uc` command-line driver.

use std::io::Write;
use std::process::Command;

fn uc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_uc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = r#"
    #define N 8
    index_set I:i = {0..N-1};
    int a[N], s;
    main() {
        par (I) a[i] = i * i;
        s = $+(I; a[i]);
    }
"#;

#[test]
fn run_prints_globals_and_cycles() {
    let path = write_temp("uc_cli_run.uc", PROGRAM);
    let out = uc().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s = 140"), "{stdout}");
    assert!(stdout.contains("a[8] = [0, 1, 4, 9, 16, 25, 36, 49]"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cycles on a 16384-processor CM"), "{stderr}");
}

#[test]
fn define_overrides_from_the_command_line() {
    let path = write_temp("uc_cli_define.uc", PROGRAM);
    let out = uc()
        .args(["run", path.to_str().unwrap(), "-D", "N=4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s = 14"), "{stdout}");
}

#[test]
fn check_reports_ok_and_errors() {
    let good = write_temp("uc_cli_good.uc", PROGRAM);
    let out = uc().args(["check", good.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());

    let bad = write_temp("uc_cli_bad.uc", "main() { goto x; }");
    let out = uc().args(["check", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("goto"));
}

#[test]
fn emit_cstar_prints_translation() {
    let path = write_temp("uc_cli_emit.uc", PROGRAM);
    let out = uc().args(["emit-cstar", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("domain SHAPE0"), "{stdout}");
}

#[test]
fn runtime_errors_are_reported() {
    let src = r#"
        #define N 4
        index_set I:i = {0..N-1};
        int a[N];
        main() { par (I) a[i + 1] = 0; }
    "#;
    let path = write_temp("uc_cli_rterr.uc", src);
    let out = uc().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bounds"));
}

#[test]
fn usage_errors() {
    let out = uc().output().unwrap();
    assert!(!out.status.success());
    let out = uc().args(["frobnicate", "x.uc"]).output().unwrap();
    assert!(!out.status.success());
}
