//! Golden-file tests for `--emit ir`.
//!
//! The rendered IR is a public, line-oriented artifact (`uc run --emit
//! ir` / `uc check --emit ir`): these tests pin it byte-for-byte for a
//! few corpus programs so lowering, pass-pipeline, and renderer changes
//! are always deliberate. To refresh after an intentional change:
//!
//! ```text
//! uc run <input> --emit ir > tests/corpus/golden/<name>.ir
//! ```
//!
//! (with `UC_IR_OPT=aggressive` for the `.aggressive.ir` files).

use std::path::Path;
use std::process::Command;

/// Run the CLI with the backend environment pinned, so `UC_EXEC` /
/// `UC_IR_OPT` in the ambient environment cannot flake the comparison.
fn emit(cmd: &str, input: &str, aggressive: bool) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut uc = Command::new(env!("CARGO_BIN_EXE_uc"));
    uc.args([cmd, root.join(input).to_str().unwrap(), "--emit", "ir"])
        .env_remove("UC_EXEC")
        .env_remove("UC_IR_OPT");
    if aggressive {
        uc.env("UC_IR_OPT", "aggressive");
    }
    let out = uc.output().unwrap();
    assert!(
        out.status.success(),
        "{cmd} {input} --emit ir failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/golden").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn shortest_path_ir_is_stable() {
    assert_eq!(emit("run", "examples/uc/shortest_path.uc", false), golden("shortest_path.ir"));
}

#[test]
fn dead_store_ir_is_stable() {
    assert_eq!(emit("run", "tests/corpus/dead_store.uc", false), golden("dead_store.ir"));
}

#[test]
fn aggressive_dead_context_ir_is_stable() {
    assert_eq!(
        emit("run", "tests/corpus/dead_context.uc", true),
        golden("dead_context.aggressive.ir")
    );
}

/// `uc check --emit ir` prints the same artifact after the lint passes.
#[test]
fn check_emits_the_same_ir() {
    assert_eq!(emit("check", "examples/uc/jacobi.uc", false), golden("jacobi.ir"));
    assert_eq!(
        emit("run", "examples/uc/jacobi.uc", false),
        emit("check", "examples/uc/jacobi.uc", false)
    );
}

/// Every function in every committed example lowers completely — no
/// `<unlowered>` fallback markers, and parallel statements appear as
/// single `tree` escapes inside registerized control flow.
#[test]
fn examples_lower_without_fallback() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/uc");
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "uc") {
            let rel = path.strip_prefix(env!("CARGO_MANIFEST_DIR")).unwrap();
            let ir = emit("run", rel.to_str().unwrap(), false);
            assert!(!ir.contains("<unlowered"), "{}:\n{ir}", path.display());
            assert!(ir.contains("inline="), "{}:\n{ir}", path.display());
        }
    }
}
