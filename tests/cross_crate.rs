//! Cross-crate integration: the UC executor, the C* baseline DSL and the
//! sequential baselines must agree on every shared workload — the
//! precondition for the paper's figures to be meaningful comparisons.

use uc::cstar::programs;
use uc::lang::Program;
use uc::seqc::{grid, oracle, SeqMachine};

const PHYS: usize = 16 * 1024;

fn run_uc(src: &str, defines: &[(&str, i64)]) -> Program {
    let mut p = Program::compile_with_defines(src, Default::default(), defines)
        .unwrap_or_else(|d| panic!("compile failed:\n{d}"));
    p.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    p
}

#[test]
fn apsp_uc_equals_cstar_equals_oracle() {
    for n in [4usize, 8, 16] {
        let graph = oracle::bench_graph(n);
        let oracle_d = oracle::floyd_warshall(graph.clone(), n);

        let (cstar2, _) = programs::apsp_n2(&graph, n, PHYS);
        assert_eq!(cstar2, oracle_d, "C* N2, n={n}");
        let (cstar3, _) = programs::apsp_n3(&graph, n, PHYS);
        assert_eq!(cstar3, oracle_d, "C* N3, n={n}");

        let src = format!(
            r#"
            #define N {n}
            index_set I:i = {{0..N-1}}, J:j = I, K:k = I;
            int d[N][N];
            main() {{
                par (I, J)
                    st (i == j) d[i][j] = 0;
                    others d[i][j] = (i * 7 + j * 13) % N + 1;
                seq (K)
                    par (I, J)
                        st (d[i][k] + d[k][j] < d[i][j])
                            d[i][j] = d[i][k] + d[k][j];
            }}
            "#
        );
        let mut p = run_uc(&src, &[]);
        assert_eq!(p.read_int_array("d").unwrap(), oracle_d, "UC, n={n}");
    }
}

#[test]
fn grid_uc_equals_cstar_equals_seq_equals_bfs() {
    for n in [8usize, 16] {
        let walls = oracle::figure11_walls(n);
        let bfs = oracle::grid_bfs(n, n, &walls);

        let (cstar_d, _, _) = programs::grid_goal(n, n, &walls, 1 << 30, PHYS);
        let mut m = SeqMachine::new();
        let seq_run = grid::grid_goal(&mut m, n, n, &walls, 1 << 30);

        let src = r#"
            #define N 8
            #define DMAX 1073741824
            #define WALLV 2147483648
            index_set I:i = {0..N-1}, J:j = I;
            int a[N][N];
            main() {
                par (I, J)
                    st (i + j == N - 1 && ABS(i - N/2) <= N/4) a[i][j] = WALLV;
                    others a[i][j] = DMAX;
                par (I, J) st (i == 0 && j == 0) a[i][j] = 0;
                *par (I, J)
                    st (a[i][j] != WALLV && (i != 0 || j != 0)
                        && min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1 < a[i][j])
                    a[i][j] = min(min(a[i-1][j], a[i+1][j]), min(a[i][j-1], a[i][j+1])) + 1;
            }
        "#;
        let mut p = run_uc(src, &[("N", n as i64)]);
        let uc_d = p.read_int_array("a").unwrap();

        for cell in 0..n * n {
            if walls[cell] {
                continue;
            }
            if let Some(d) = bfs[cell] {
                assert_eq!(uc_d[cell], d as i64, "UC n={n} cell {cell}");
                assert_eq!(cstar_d[cell], d as i64, "C* n={n} cell {cell}");
                assert_eq!(seq_run.dist[cell], d as i64, "seq n={n} cell {cell}");
            }
        }
    }
}

#[test]
fn histogram_procopt_both_match_counting() {
    let src = r#"
        #define N 200
        index_set I:i = {0..N-1}, J:j = {0..9};
        int samples[N];
        int count[10];
        main() {
            par (I) samples[i] = (i * 3 + 1) % 10;
            par (J) count[j] = $+(I st (samples[i] == j) 1);
        }
    "#;
    let mut expect = vec![0i64; 10];
    for i in 0..200i64 {
        expect[((i * 3 + 1) % 10) as usize] += 1;
    }
    for procopt in [true, false] {
        let cfg = uc::lang::ExecConfig { procopt, ..Default::default() };
        let mut p = Program::compile_with(src, cfg).unwrap();
        p.run().unwrap();
        assert_eq!(p.read_int_array("count").unwrap(), expect, "procopt={procopt}");
    }
}

#[test]
fn access_optimization_is_semantics_preserving() {
    // The same program under all four on/off combinations of the §4
    // optimizations must produce identical results (only cycles differ).
    let src = r#"
        #define N 32
        index_set I:i = {0..N-1}, J:j = I;
        int a[N], b[N], c[N][N], s;
        main() {
            par (I) { a[i] = (i * 5) % 17; b[i] = i; }
            par (I) st (i > 0 && i < N-1) b[i] = a[i-1] + a[i+1];
            par (I, J) c[i][j] = a[i] * b[j];
            s = $+(I, J st (c[i][j] % 3 == 0) c[i][j]);
        }
    "#;
    let mut results = Vec::new();
    for optimize_access in [true, false] {
        for constfold in [true, false] {
            let cfg = uc::lang::ExecConfig {
                optimize_access,
                constfold,
                ..Default::default()
            };
            let mut p = Program::compile_with(src, cfg).unwrap();
            p.run().unwrap();
            results.push((
                p.read_int_array("b").unwrap(),
                p.read_int_array("c").unwrap(),
                p.read_int("s").unwrap(),
            ));
        }
    }
    for r in &results[1..] {
        assert_eq!(*r, results[0]);
    }
}

#[test]
fn cm_counters_reflect_communication_classes() {
    // A NEWS-pattern program must not touch the router when optimization
    // is on; the same program with optimization off must.
    let src = r#"
        #define N 64
        index_set I:i = {0..N-1};
        int a[N], b[N];
        main() {
            par (I) { a[i] = i; b[i] = 0; }
            par (I) st (i < N-1) b[i] = a[i+1];
        }
    "#;
    let mut p = Program::compile(src).unwrap();
    p.run().unwrap();
    assert!(p.machine().counters().news > 0, "shifted access should use NEWS");

    let cfg = uc::lang::ExecConfig { optimize_access: false, ..Default::default() };
    let mut p2 = Program::compile_with(src, cfg).unwrap();
    p2.run().unwrap();
    assert!(p2.machine().counters().router > 0, "unoptimized access should route");
    assert_eq!(
        p.read_int_array("b").unwrap(),
        p2.read_int_array("b").unwrap()
    );
}

#[test]
fn write_then_run_external_inputs() {
    // The host API can inject inputs before running (used by benches).
    let src = r#"
        #define N 8
        index_set I:i = {0..N-1};
        int a[N], s;
        main() { s = $+(I; a[i]); }
    "#;
    let mut p = Program::compile(src).unwrap();
    p.write_int_array("a", &[5, 0, 0, 0, 0, 0, 0, 37]).unwrap();
    p.run().unwrap();
    assert_eq!(p.read_int("s"), Some(42));
}

#[test]
fn committed_bench_baseline_parses_as_a_figure() {
    // `BENCH_sim_hotpaths.json` is the committed hot-path baseline; it
    // must stay readable by the same JSON module the benches emit with.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sim_hotpaths.json");
    let text = std::fs::read_to_string(path).unwrap();
    let fig = uc_bench::json::from_str(&text).unwrap();
    assert_eq!(fig.id, "sim_hotpaths");
    assert_eq!(fig.series.len(), 2);
    for s in &fig.series {
        assert_eq!(s.points.len(), 3, "{} baseline points", s.label);
        assert!(s.points.iter().all(|&(_, ns)| ns > 0));
    }
}
