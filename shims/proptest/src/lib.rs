//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, `#[test]`
//!   attributes, doc comments, and `pat in strategy` bindings, including
//!   `mut` bindings);
//! * integer-range strategies (`-1000i64..1000`), [`any`]`::<bool>()`,
//!   [`collection::vec`] and [`strategy::Just`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * **shrinking**: a failing case is reduced by a bounded greedy halving
//!   search ([`Strategy::shrink`]) before it is reported, so the panic
//!   message names a (locally) minimal failing input instead of the raw
//!   random sample.
//!
//! Each test runs `ProptestConfig::cases` deterministic pseudo-random
//! cases (seeded from the test's module path and case index, so failures
//! reproduce exactly). Swap in the real proptest by removing the path
//! override in the workspace `Cargo.toml`.

pub mod test_runner {
    /// How many pseudo-random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, seedable, and good enough for test-case
    /// generation. Seeded per (test, case) so every failure reproduces.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Deterministic RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            case.hash(&mut h);
            Self::from_seed(h.finish())
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n = 0` returns 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            // Multiply-shift reduction; bias is irrelevant at test scale.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one `pat in strategy` binding.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing value, *simplest first*.
        /// The runner greedily walks to the first candidate that still
        /// fails; strategies with nothing meaningful to shrink return
        /// nothing (the default).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $t)
                        .collect()
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Halving toward the range start: `start` itself, the midpoint, and
    /// the predecessor — simplest first, `value` excluded.
    pub(crate) fn int_shrink(start: i128, value: i128) -> Vec<i128> {
        if value == start {
            return Vec::new();
        }
        let mut out = vec![start, start + (value - start) / 2, value - 1];
        out.dedup();
        out.retain(|&v| v != value);
        out
    }

    /// `any::<T>()` — full-domain strategy for small types.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // The `proptest!` macro folds a test's bindings into a nested tuple
    // strategy `(s1, (s2, ()))`, so shrinking can vary one binding while
    // holding the others fixed.

    impl Strategy for () {
        type Value = ();
        fn sample(&self, _rng: &mut TestRng) {}
    }

    impl<A, B> Strategy for (A, B)
    where
        A: Strategy,
        B: Strategy,
        A::Value: Clone,
        B::Value: Clone,
    {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            for a in self.0.shrink(&value.0) {
                out.push((a, value.1.clone()));
            }
            for b in self.1.shrink(&value.1) {
                out.push((value.0.clone(), b));
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments to [`vec`]: a range or an exact length.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// Strategy producing `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Length halving first (smaller inputs are simpler), then
            // dropping one element, then shrinking elements in place.
            if value.len() > self.min {
                let half = (value.len() / 2).max(self.min);
                if half < value.len() - 1 {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            for (i, x) in value.iter().enumerate() {
                for c in self.elem.shrink(x) {
                    let mut w = value.clone();
                    w[i] = c;
                    out.push(w);
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of real proptest's `prelude::prop` module path
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Greedy bounded shrink: walk to the first candidate that still fails,
/// repeat from there, stop when no candidate fails (local minimum) or
/// after `MAX_SHRINK_RUNS` property executions. Returns the minimal
/// failing value and its failure message.
pub fn shrink_failure<S, F>(
    strat: &S,
    mut value: S::Value,
    run: &F,
    mut message: String,
) -> (S::Value, String)
where
    S: strategy::Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), String>,
{
    const MAX_SHRINK_RUNS: usize = 512;
    let mut runs = 0;
    'outer: while runs < MAX_SHRINK_RUNS {
        for candidate in strat.shrink(&value) {
            runs += 1;
            if let Err(msg) = run(candidate.clone()) {
                value = candidate;
                message = msg;
                continue 'outer;
            }
            if runs >= MAX_SHRINK_RUNS {
                break;
            }
        }
        break; // every candidate passes: local minimum
    }
    (value, message)
}

/// Pins a runner closure's argument type to `S::Value` so the
/// `proptest!` expansion type-checks without explicit annotations.
#[doc(hidden)]
pub fn bind_runner<S, F>(_strat: &S, f: F) -> F
where
    S: strategy::Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    f
}

/// Fails the current case (returning its message) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// The property-test macro: each contained `#[test] fn name(bindings)`
/// becomes a zero-argument test running `cases` deterministic samples,
/// shrinking any failure before reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strat = $crate::__proptest_strats!($($params)*);
            let __run = $crate::bind_runner(&__strat, |__vals| {
                $crate::__proptest_unbind!{ __vals; $($params)* }
                (move || {
                    $body
                    Ok(())
                })()
            });
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __vals = $crate::strategy::Strategy::sample(&__strat, &mut __rng);
                if let Err(__msg) = __run(::std::clone::Clone::clone(&__vals)) {
                    let (__min, __min_msg) =
                        $crate::shrink_failure(&__strat, __vals, &__run, __msg);
                    panic!(
                        "proptest case {} of {} failed: {}\nminimal failing input ({}): {:?}",
                        __case,
                        __config.cases,
                        __min_msg,
                        stringify!($($params)*),
                        __min,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Folds `a in s1, b in s2, ...` into the nested tuple strategy
/// `(s1, (s2, ()))`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strats {
    () => { () };
    (mut $var:ident in $strat:expr) => { (($strat), ()) };
    (mut $var:ident in $strat:expr, $($rest:tt)*) => {
        (($strat), $crate::__proptest_strats!($($rest)*))
    };
    ($var:ident in $strat:expr) => { (($strat), ()) };
    ($var:ident in $strat:expr, $($rest:tt)*) => {
        (($strat), $crate::__proptest_strats!($($rest)*))
    };
}

/// Destructures the nested tuple value produced by the strategy of
/// [`__proptest_strats!`] back into the test's named bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_unbind {
    ($vals:ident;) => { let () = $vals; };
    ($vals:ident; mut $var:ident in $strat:expr) => {
        let (mut $var, _) = $vals;
    };
    ($vals:ident; mut $var:ident in $strat:expr, $($rest:tt)*) => {
        let (mut $var, $vals) = $vals;
        $crate::__proptest_unbind!{ $vals; $($rest)* }
    };
    ($vals:ident; $var:ident in $strat:expr) => {
        let ($var, _) = $vals;
    };
    ($vals:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let ($var, $vals) = $vals;
        $crate::__proptest_unbind!{ $vals; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let v = Strategy::sample(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let u = Strategy::sample(&(3usize..6), &mut rng);
            assert!((3..6).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0i64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn int_shrink_halves_toward_start() {
        let s = 0i64..100;
        assert_eq!(s.shrink(&57), vec![0, 28, 56]);
        assert_eq!(s.shrink(&0), Vec::<i64>::new());
        let neg = -10i64..10;
        assert_eq!(neg.shrink(&-10), Vec::<i64>::new());
        assert!(neg.shrink(&6).contains(&-2));
        assert!(Strategy::shrink(&any::<bool>(), &true).contains(&false));
        assert!(Strategy::shrink(&any::<bool>(), &false).is_empty());
    }

    #[test]
    fn vec_shrink_reduces_length_and_elements() {
        let s = prop::collection::vec(0i64..10, 1..9);
        let cands = s.shrink(&vec![5, 6, 7, 8]);
        assert!(cands.contains(&vec![5, 6]), "{cands:?}"); // halving
        assert!(cands.contains(&vec![5, 6, 7]), "{cands:?}"); // drop last
        assert!(cands.contains(&vec![0, 6, 7, 8]), "{cands:?}"); // element
        assert!(s.shrink(&vec![0]).is_empty());
    }

    #[test]
    fn shrink_failure_finds_local_minimum() {
        // Property: x < 10. Failing sample 57 must shrink to exactly 10.
        let strat = (0i64..100, ());
        let run = |(x, ()): (i64, ())| {
            if x >= 10 {
                Err(format!("{x} too big"))
            } else {
                Ok(())
            }
        };
        let (min, msg) = crate::shrink_failure(&strat, (57, ()), &run, "seed".into());
        assert_eq!(min.0, 10);
        assert_eq!(msg, "10 too big");
    }

    #[test]
    fn failing_property_reports_minimal_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn sums_stay_small(data in prop::collection::vec(0i64..100, 1..9)) {
                prop_assert!(data.iter().sum::<i64>() < 50);
            }
        }
        let err = std::panic::catch_unwind(sums_stay_small).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("minimal failing input"), "{msg}");
        // The greedy shrinker lands on a single-element vector whose value
        // sits exactly at the property boundary.
        assert!(msg.contains("[50]"), "{msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, mut bindings, and prop_asserts.
        #[test]
        fn macro_binds_and_asserts(mut data in prop::collection::vec(-5i64..5, 1..9),
                                   k in 1i64..4) {
            data.sort_unstable();
            prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(k.signum(), 1);
            prop_assert_ne!(k, 0);
        }
    }
}
