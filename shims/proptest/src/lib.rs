//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, `#[test]`
//!   attributes, doc comments, and `pat in strategy` bindings, including
//!   `mut` bindings);
//! * integer-range strategies (`-1000i64..1000`), [`any`]`::<bool>()`,
//!   [`collection::vec`] and [`strategy::Just`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike real proptest there is **no shrinking**: each test runs
//! `ProptestConfig::cases` deterministic pseudo-random cases (seeded from
//! the test's module path and case index, so failures reproduce exactly)
//! and reports the first failing case's message. That is a weaker failure
//! report but the same coverage model. Swap in the real proptest by
//! removing the path override in the workspace `Cargo.toml`.

pub mod test_runner {
    /// How many pseudo-random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, seedable, and good enough for test-case
    /// generation. Seeded per (test, case) so every failure reproduces.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Deterministic RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            case.hash(&mut h);
            Self::from_seed(h.finish())
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n = 0` returns 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            // Multiply-shift reduction; bias is irrelevant at test scale.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one `pat in strategy` binding.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// `any::<T>()` — full-domain strategy for small types.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments to [`vec`]: a range or an exact length.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// Strategy producing `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of real proptest's `prelude::prop` module path
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case (returning its message) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// The property-test macro: each contained `#[test] fn name(bindings)`
/// becomes a zero-argument test running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!{ __rng; $($params)* }
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(__msg) = __result {
                    panic!("proptest case {} of {} failed: {}", __case, __config.cases, __msg);
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $var:ident in $strat:expr) => {
        let mut $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; mut $var:ident in $strat:expr, $($rest:tt)*) => {
        let mut $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:ident; $var:ident in $strat:expr) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let v = Strategy::sample(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let u = Strategy::sample(&(3usize..6), &mut rng);
            assert!((3..6).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0i64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, mut bindings, and prop_asserts.
        #[test]
        fn macro_binds_and_asserts(mut data in prop::collection::vec(-5i64..5, 1..9),
                                   k in 1i64..4) {
            data.sort_unstable();
            prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(k.signum(), 1);
            prop_assert_ne!(k, 0);
        }
    }
}
