//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Implements just enough of criterion's API for the `uc-bench` bench
//! targets to compile and produce useful numbers without network access:
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it times `sample_size` runs with
//! `std::time::Instant` and prints min / mean per benchmark. Swap in the
//! real criterion by removing the path override in the workspace
//! `Cargo.toml`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup { name: name.to_string(), sample_size: self.default_sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores the time budget
    /// and always runs exactly `sample_size` samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `function_name/parameter` identifier for parameterised benchmarks.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Timer handle: `b.iter(|| work())`.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let _ = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    // Warm-up sample, excluded from the measurement.
    f(&mut b);
    b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    let mut min = Duration::MAX;
    for _ in 0..sample_size {
        let before = b.elapsed;
        f(&mut b);
        min = min.min(b.elapsed - before);
    }
    if b.iterations == 0 {
        println!("  {label}: no iterations");
        return;
    }
    let mean = b.elapsed / b.iterations as u32;
    println!("  {label}: mean {mean:?}, min {min:?} ({} samples)", b.iterations);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // Warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0usize;
        let mut g = c.benchmark_group("t");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| b.iter(|| seen = n));
        g.finish();
        assert_eq!(seen, 7);
    }
}
