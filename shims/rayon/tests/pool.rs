//! Stress tests for the scoped work-stealing pool: nesting, panic
//! propagation, degenerate inputs and concurrent submitters.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use rayon::prelude::*;
use rayon::{current_num_threads, scope};

/// Scopes nest: a job may open its own scope, and the outer scope still
/// waits for everything (the help-while-waiting path — a blocked waiter
/// executes queued jobs instead of deadlocking the pool).
#[test]
fn nested_scopes_complete_without_deadlock() {
    let hits = AtomicUsize::new(0);
    scope(|outer| {
        for _ in 0..8 {
            let hits = &hits;
            outer.spawn(move |_| {
                scope(|inner| {
                    for _ in 0..8 {
                        inner.spawn(move |_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                // The inner scope is done before its caller continues.
                assert!(hits.load(Ordering::Relaxed) >= 8);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 64);
}

/// Spawns from inside spawned jobs (same scope, not a nested one) are
/// also waited for.
#[test]
fn recursive_spawns_on_one_scope_are_awaited() {
    let hits = AtomicUsize::new(0);
    scope(|s| {
        let hits = &hits;
        s.spawn(move |s| {
            hits.fetch_add(1, Ordering::Relaxed);
            s.spawn(move |s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
    });
    assert_eq!(hits.load(Ordering::Relaxed), 3);
}

/// A panicking worker job surfaces as a panic from `scope` on the
/// calling thread — it does not deadlock the scope or poison the pool.
#[test]
fn worker_panic_propagates_to_caller() {
    let caught = panic::catch_unwind(|| {
        scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
    });
    let payload = caught.expect_err("scope must re-throw the job panic");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
    assert_eq!(msg, "boom");
}

/// The pool keeps working after a panic: every later scope and parallel
/// iterator still runs to completion.
#[test]
fn pool_survives_a_job_panic() {
    let _ = panic::catch_unwind(|| {
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| panic!("boom"));
            }
        });
    });
    let n = 100_000usize;
    let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 2).collect();
    assert_eq!(v.len(), n);
    assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
}

/// Only the first panic wins; the others are swallowed after running.
#[test]
fn one_panic_payload_is_reported() {
    let ran = AtomicUsize::new(0);
    let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        scope(|s| {
            for _ in 0..16 {
                let ran = &ran;
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    panic!("boom");
                });
            }
        });
    }));
    assert!(caught.is_err());
    // The scope waited for every job even though they all panicked.
    assert_eq!(ran.load(Ordering::Relaxed), 16);
}

/// Empty and sub-threshold inputs never leave the calling thread: no
/// jobs are queued, the work runs inline.
#[test]
fn tiny_inputs_run_on_the_caller() {
    let me = thread::current().id();

    let empty: Vec<i32> = Vec::<i32>::new().par_iter().map(|&x| x).collect();
    assert!(empty.is_empty());

    let one = [7i32];
    let seen = std::sync::Mutex::new(Vec::new());
    one.par_iter().for_each(|&x| {
        seen.lock().unwrap().push((thread::current().id(), x));
    });
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), 1);
    assert_eq!(seen[0], (me, 7));

    // Below the default min chunk length the whole slice stays inline.
    let small: Vec<i64> = (0..100i64).collect();
    let ids = std::sync::Mutex::new(std::collections::HashSet::new());
    small.par_iter().for_each(|_| {
        ids.lock().unwrap().insert(thread::current().id());
    });
    let ids = ids.into_inner().unwrap();
    assert_eq!(ids.len(), 1);
    assert!(ids.contains(&me));
}

/// Many scopes submitted concurrently from plain `std::thread`s all
/// complete with correct results (the queues and condvar handshake are
/// shared safely between submitters).
#[test]
fn concurrent_scopes_from_many_threads() {
    let handles: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut total = 0u64;
                for round in 0..8 {
                    let base = (t * 1000 + round) as u64;
                    let sum = std::sync::atomic::AtomicU64::new(0);
                    scope(|s| {
                        for j in 0..32u64 {
                            let sum = &sum;
                            s.spawn(move |_| {
                                sum.fetch_add(base + j, Ordering::Relaxed);
                            });
                        }
                    });
                    total += sum.load(Ordering::Relaxed);
                }
                total
            })
        })
        .collect();
    for (t, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("submitter thread panicked");
        let want: u64 = (0..8)
            .flat_map(|round| (0..32u64).map(move |j| (t as u64 * 1000 + round) + j))
            .sum();
        assert_eq!(got, want, "submitter {t}");
    }
}

/// Mutating iteration over a large buffer touches every slot exactly
/// once even while other pool traffic is in flight.
#[test]
fn mutation_under_contention_is_exact() {
    let n = 200_000usize;
    let mut buf = vec![0u32; n];
    scope(|s| {
        s.spawn(|_| {
            // Background traffic on the same pool.
            let _: Vec<usize> = (0..50_000usize).into_par_iter().map(|i| i ^ 1).collect();
        });
        buf.par_iter_mut().zip((0..n).into_par_iter()).for_each(|(slot, i)| {
            *slot += i as u32;
        });
    });
    assert!(buf.iter().enumerate().all(|(i, &x)| x == i as u32));
}

#[test]
fn pool_size_is_sane() {
    let n = current_num_threads();
    assert!(n >= 1);
}
