//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this crate provides an
//! API-compatible **sequential** subset of rayon: `par_iter`,
//! `par_iter_mut` and `into_par_iter` simply return the corresponding
//! standard-library iterators, which already supply `map`, `zip`,
//! `for_each` and `collect`. Every caller in this workspace (`uc_cm::par`)
//! is a pure elementwise kernel whose observable results are
//! thread-count-independent by design, so the sequential fallback is
//! semantically identical — only slower on large fields.
//!
//! Swap in the real rayon by removing the path override in the workspace
//! `Cargo.toml`; no source changes are needed.

pub mod prelude {
    /// `slice.par_iter()` — sequential stand-in returning `slice::Iter`.
    pub trait IntoParallelRefIterator<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> IntoParallelRefIterator<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `slice.par_iter_mut()` — sequential stand-in returning `slice::IterMut`.
    pub trait IntoParallelRefMutIterator<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> IntoParallelRefMutIterator<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// `range.into_par_iter()` — sequential stand-in for any `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1i64, 2, 3];
        let out: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_and_into_par_iter() {
        let mut v = vec![1i64, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
        let idx: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
