//! Offline shim for [rayon](https://crates.io/crates/rayon) with a real
//! scoped work-stealing thread pool.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of rayon's API the workspace uses (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `map`, `zip`, `for_each`, `collect`,
//! `with_min_len`, plus [`scope`]/[`Scope::spawn`]) on top of its own
//! pool ([`pool`]): a lazily-initialised global set of `std::thread`
//! workers with chunked work queues and stealing. The pool is sized from
//! the `UC_THREADS` environment variable when set, else from
//! [`std::thread::available_parallelism`]; `UC_THREADS=1` runs everything
//! inline on the caller without spawning a single thread.
//!
//! Parallel pipelines are *indexed* (see [`iter`]): the index space is
//! split into contiguous chunks whose results land in disjoint output
//! slots, so every consumer produces bit-identical results for any thread
//! count — which is what lets `uc_cm`'s determinism suite assert that
//! `UC_THREADS=1/2/8` runs agree exactly. Panics inside pool jobs are
//! captured and re-thrown from [`scope`] on the calling thread.
//!
//! Swap in the real rayon by removing the path override in the workspace
//! `Cargo.toml`; no source changes are needed (`UC_THREADS` then has no
//! effect — configure real rayon via `RAYON_NUM_THREADS`).

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, scope, Scope};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1i64, 2, 3];
        let out: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_and_into_par_iter() {
        let mut v = vec![1i64, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
        let idx: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = [1i64, 2, 3, 4];
        let b = [10i64, 20];
        let out: Vec<i64> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn large_collect_is_order_preserving() {
        let n = 100_000usize;
        let out: Vec<usize> = (0..n).into_par_iter().map(|i| i * 2).with_min_len(64).collect();
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn large_mutation_covers_every_slot() {
        let n = 100_000usize;
        let mut v = vec![0u32; n];
        v.par_iter_mut().with_min_len(64).for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }
}
