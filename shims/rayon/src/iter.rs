//! Indexed parallel iterators over slices and ranges.
//!
//! Every source this workspace parallelises is random-access (slices,
//! mutable slices, integer ranges), so the pipeline model is an indexed
//! one: a [`ParallelIterator`] knows its length and can produce the item
//! at any index, adapters ([`Map`], [`Zip`], [`MinLen`]) compose by
//! index, and the consumers (`for_each`, `collect`) split the index space
//! into chunks and fan the chunks out on the [`crate::pool`] work-stealing
//! pool. Splitting never depends on the thread count's *schedule*: any
//! interleaving produces the same output because each index is consumed
//! exactly once and writes go to disjoint output slots.

use crate::pool;

/// Default smallest number of items a single pool job processes; override
/// per pipeline with [`ParallelIterator::with_min_len`].
pub const DEFAULT_MIN_LEN: usize = 1 << 10;

/// A random-access parallel pipeline.
///
/// # Safety contract of `item_at`
///
/// Callers must consume each index in `0..pi_len()` **at most once**
/// across all threads: mutable-slice sources hand out `&mut` references
/// derived from a shared `*mut` base, which is sound only while indices
/// are not aliased. The consumers in this module uphold this by
/// partitioning `0..len` into disjoint chunks.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Number of items in the pipeline.
    fn pi_len(&self) -> usize;

    /// Produce the item at `index`.
    ///
    /// # Safety
    /// Each index may be consumed at most once across all threads, and
    /// `index < self.pi_len()`.
    unsafe fn item_at(&self, index: usize) -> Self::Item;

    /// Smallest chunk a single pool job should process.
    fn min_len(&self) -> usize {
        DEFAULT_MIN_LEN
    }

    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Chunking hint: a single pool job will process at least `min`
    /// consecutive items (rayon's `IndexedParallelIterator::with_min_len`).
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min: min.max(1) }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive(&self, &|_, item| f(item));
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types buildable from a parallel pipeline.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self {
        let len = it.pi_len();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let base = SendPtr(out.as_mut_ptr());
        // Each index writes its own slot, so the writes are disjoint. If a
        // job panics the scope re-throws before `set_len`, leaking the
        // written items rather than dropping uninitialised ones.
        drive(&it, &|i, item| unsafe { base.get().add(i).write(item) });
        unsafe { out.set_len(len) };
        out
    }
}

/// Raw pointer that may cross threads; writes are to disjoint slots.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Fan `consume(i, item)` out over the pool in contiguous index chunks.
/// The per-index results are independent, so the output is identical for
/// every thread count and chunking.
fn drive<I, C>(it: &I, consume: &C)
where
    I: ParallelIterator,
    C: Fn(usize, I::Item) + Sync,
{
    let len = it.pi_len();
    if len == 0 {
        return;
    }
    let min = it.min_len().max(1);
    let threads = pool::current_num_threads();
    if threads == 1 || len <= min {
        // Inline on the caller: no jobs, no pool wakeup.
        for i in 0..len {
            consume(i, unsafe { it.item_at(i) });
        }
        return;
    }
    // Aim for a few chunks per thread so stealing can balance load. The
    // fan-out goes through `pool::run_chunks`, whose queued unit is a
    // `Copy` chunk descriptor borrowing this frame — no per-job boxing,
    // so a warm pool dispatches the whole batch without allocating.
    let chunk = len.div_ceil(threads * 4).max(min);
    let n_chunks = len.div_ceil(chunk);
    pool::run_chunks(n_chunks, &|k| {
        let start = k * chunk;
        let end = (start + chunk).min(len);
        for i in start..end {
            consume(i, unsafe { it.item_at(i) });
        }
    });
}

// ---- sources -----------------------------------------------------------

/// Shared-slice source: `slice.par_iter()`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item_at(&self, index: usize) -> &'a T {
        self.slice.get_unchecked(index)
    }
}

/// Mutable-slice source: `slice.par_iter_mut()`. Hands out disjoint
/// `&mut` references under the indexed-consumption contract.
pub struct SliceParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceParIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn item_at(&self, index: usize) -> &'a mut T {
        &mut *self.ptr.add(index)
    }
}

/// Index-range source: `(0..n).into_par_iter()`.
pub struct RangeParIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeParIter {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    unsafe fn item_at(&self, index: usize) -> usize {
        self.start + index
    }
}

// ---- adapters ----------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, O, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    type Item = O;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    unsafe fn item_at(&self, index: usize) -> O {
        (self.f)(self.base.item_at(index))
    }
    fn min_len(&self) -> usize {
        self.base.min_len()
    }
}

/// Lock-step pairing; truncates to the shorter side like rayon's `zip`.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }
    unsafe fn item_at(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.item_at(index), self.b.item_at(index))
    }
    fn min_len(&self) -> usize {
        self.a.min_len().max(self.b.min_len())
    }
}

pub struct MinLen<I> {
    base: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    unsafe fn item_at(&self, index: usize) -> I::Item {
        self.base.item_at(index)
    }
    fn min_len(&self) -> usize {
        self.min
    }
}

// ---- entry-point traits (the prelude) ----------------------------------

/// `slice.par_iter()`.
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> SliceParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
}

/// `slice.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<T> {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
}

impl<T: Send> IntoParallelRefMutIterator<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: std::marker::PhantomData }
    }
}

/// `range.into_par_iter()` for `Range<usize>` (the only owning source the
/// workspace uses).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        let len = self.end.saturating_sub(self.start);
        RangeParIter { start: self.start, len }
    }
}
