//! The scoped work-stealing thread pool behind the parallel iterators.
//!
//! A single global pool is initialised lazily on first use. Its size comes
//! from the `UC_THREADS` environment variable when set (clamped to
//! `1..=MAX_THREADS`; unparsable values fall back to the default), else
//! from [`std::thread::available_parallelism`]. One thread of the pool is
//! always the *submitting* thread itself: a pool of size `N` spawns `N-1`
//! background workers, and with `UC_THREADS=1` no threads are spawned at
//! all — every job runs inline on the caller.
//!
//! Scheduling is chunked work queues with stealing: each background worker
//! owns a deque; submitted jobs are placed round-robin across the worker
//! queues, a worker pops from the front of its own queue, and an idle
//! worker (or a caller waiting on a [`scope`]) steals from the back of its
//! peers' queues. Workers sleep on a condvar when every queue is empty.
//!
//! [`scope`] mirrors `rayon::scope`: jobs spawned inside it may borrow
//! from the enclosing stack frame (`'scope` data), the call returns only
//! once every spawned job (including nested spawns) has finished, and a
//! panic inside any job is captured and re-thrown from `scope` on the
//! calling thread — it never deadlocks the pool or kills a worker.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool size; `UC_THREADS` beyond this is clamped.
pub const MAX_THREADS: usize = 256;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued unit of work: either a boxed [`scope`] job or a borrowed
/// chunk descriptor from [`run_chunks`]. Chunk descriptors are plain
/// `Copy` data — enqueueing one never allocates once the queues have
/// grown to their steady-state capacity, which is what lets the
/// simulator's hot parallel paths run allocation-free on a warm pool.
enum Task {
    Boxed(Job),
    Chunk(ChunkJob),
}

impl Task {
    fn execute(self) {
        match self {
            Task::Boxed(job) => job(),
            // Sound: `run_chunks` blocks until `pending` drains, so the
            // batch (and the closure it borrows) outlives this call.
            Task::Chunk(c) => unsafe { (*c.batch).run_one(c.index) },
        }
    }
}

/// One chunk of a [`run_chunks`] batch. The raw pointer refers to a
/// `Batch` on the submitting thread's stack, kept alive until every
/// chunk has executed.
#[derive(Clone, Copy)]
struct ChunkJob {
    batch: *const Batch,
    index: usize,
}

unsafe impl Send for ChunkJob {}

/// Completion state for one [`run_chunks`] call, stack-allocated on the
/// submitting thread.
struct Batch {
    /// The caller's chunk body; valid for the lifetime of the batch.
    run: *const (dyn Fn(usize) + Sync),
    /// Chunks not yet finished (executed or panicked).
    pending: AtomicUsize,
    /// First panic payload from any chunk.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Batch {
    /// # Safety
    /// `self.run` must still be valid, i.e. the owning `run_chunks` call
    /// must not have returned.
    unsafe fn run_one(&self, index: usize) {
        let f = &*self.run;
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(index))) {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Shared {
    /// One work queue per background worker.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the sleep/wake handshake (never held while running jobs).
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin cursor for job placement across `queues`.
    cursor: AtomicUsize,
}

impl Shared {
    /// Pop a job: worker `me` prefers the front of its own queue, then
    /// steals from the back of each peer queue. A non-worker caller
    /// (helping from [`Pool::wait_scope`]) passes `me = None` and only
    /// steals.
    fn find_job(&self, me: Option<usize>) -> Option<Task> {
        if let Some(me) = me {
            if let Some(job) = self.queues[me].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        let n = self.queues.len();
        let start = me.map_or(0, |m| m + 1);
        for k in 0..n {
            let q = (start + k) % n;
            if Some(q) == me {
                continue;
            }
            if let Some(job) = self.queues[q].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn any_pending(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn inject(&self, job: Job) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(Task::Boxed(job));
        // Take the sleep lock before notifying so a worker that found all
        // queues empty and is about to wait cannot miss this wakeup.
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    /// Place the `n` chunks of `batch` round-robin across the worker
    /// queues, waking everyone once at the end.
    fn inject_chunks(&self, batch: *const Batch, n: usize) {
        let nq = self.queues.len();
        let base = self.cursor.fetch_add(n, Ordering::Relaxed);
        for index in 0..n {
            let task = Task::Chunk(ChunkJob { batch, index });
            self.queues[(base + index) % nq].lock().unwrap().push_back(task);
        }
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

pub struct Pool {
    shared: Arc<Shared>,
    /// Background workers; the submitting thread is the `+1`-th member.
    workers: usize,
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.find_job(Some(me)) {
            job.execute();
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.any_pending() {
            continue; // a job arrived between the scan and the lock
        }
        // The pool is global and never shuts down; workers just sleep.
        drop(shared.wake.wait(guard).unwrap());
    }
}

/// Pool size: `UC_THREADS` if set and parsable (clamped to
/// `1..=MAX_THREADS`), else the host's available parallelism.
fn configured_threads() -> usize {
    let default = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("UC_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default(),
        },
        Err(_) => default(),
    }
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        for me in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("uc-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Total threads that execute work: background workers plus the caller.
pub fn current_num_threads() -> usize {
    global().workers + 1
}

struct ScopeState {
    /// Spawned-but-unfinished jobs, including nested spawns.
    pending: AtomicUsize,
    /// First panic payload from any job in this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A scope in which borrowed jobs can be spawned; see [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// `*const Scope` made Send so jobs on worker threads can call back into
/// `Scope::spawn`. Sound because [`scope`] keeps the `Scope` alive until
/// every job has finished.
#[derive(Clone, Copy)]
struct ScopePtr(*const ());
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field (edition-2021
    /// disjoint capture would otherwise grab the non-`Send` `*const ()`).
    fn get(self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a job that may borrow `'scope` data. The job runs at some
    /// point before the enclosing [`scope`] call returns, on any pool
    /// thread (inline on the caller for a single-threaded pool). Panics
    /// inside the job are captured and re-thrown by [`scope`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let me = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = move || {
            let scope: &Scope<'scope> = unsafe { &*(me.get() as *const Scope<'scope>) };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(scope)));
            if let Err(payload) = result {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
        };
        let pool = global();
        if pool.workers == 0 {
            // Single-threaded pool: run inline (still recording panics so
            // propagation out of `scope` matches the pooled path).
            job();
        } else {
            // Erase `'scope`: the scope's completion wait guarantees the
            // job is done before any `'scope` borrow expires.
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(job);
            let job: Job = unsafe { std::mem::transmute(job) };
            pool.shared.inject(job);
        }
    }
}

impl Pool {
    /// Block until `state.pending` drains, executing queued jobs (from any
    /// scope) while waiting so the pool cannot deadlock on nested scopes.
    fn wait_scope(&self, state: &ScopeState) {
        while state.pending.load(Ordering::SeqCst) != 0 {
            match self.shared.find_job(None) {
                Some(job) => job.execute(),
                None => std::thread::yield_now(),
            }
        }
    }

    /// Block until `batch.pending` drains, executing queued tasks (from
    /// any batch or scope) while waiting.
    fn wait_batch(&self, batch: &Batch) {
        while batch.pending.load(Ordering::SeqCst) != 0 {
            match self.shared.find_job(None) {
                Some(job) => job.execute(),
                None => std::thread::yield_now(),
            }
        }
    }
}

/// Run `run(0)`, `run(1)`, …, `run(n_chunks - 1)` to completion, fanning
/// the calls out across the pool. Unlike [`scope`]/[`Scope::spawn`] —
/// which must box each spawned closure — the queued unit here is a plain
/// `Copy` descriptor borrowing `run` from the caller's stack, so on a
/// warm pool (queues at steady-state capacity) dispatching a batch
/// performs **no heap allocation**. The call returns once every chunk
/// has finished; a panic inside any chunk is re-thrown on the caller.
///
/// With a single-threaded pool (`UC_THREADS=1`) the chunks run inline in
/// index order.
pub fn run_chunks(n_chunks: usize, run: &(dyn Fn(usize) + Sync)) {
    let pool = global();
    if pool.workers == 0 || n_chunks <= 1 {
        for index in 0..n_chunks {
            run(index);
        }
        return;
    }
    // Erase the borrow's lifetime: `wait_batch` below returns only after
    // every chunk has executed, so the pointer never outlives `run`.
    let run = run as *const (dyn Fn(usize) + Sync + '_);
    let run: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
    let batch = Batch {
        run,
        pending: AtomicUsize::new(n_chunks),
        panic: Mutex::new(None),
    };
    pool.shared.inject_chunks(&batch, n_chunks);
    pool.wait_batch(&batch);
    let payload = batch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Create a scope for spawning borrowed jobs, as `rayon::scope`: returns
/// once every spawned job has completed, and re-throws the first panic
/// (from the closure itself or any job) on the calling thread.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope { state: Arc::new(ScopeState { pending: AtomicUsize::new(0), panic: Mutex::new(None) }), _marker: PhantomData };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    global().wait_scope(&s.state);
    if let Some(payload) = s.state.panic.lock().unwrap().take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_jobs() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for i in 0..64u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum());
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(scope(|_| 42), 42);
    }

    #[test]
    fn run_chunks_covers_every_index() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_chunks(hits.len(), &|k| {
            hits[k].fetch_add(k as u64 + 1, Ordering::Relaxed);
        });
        for (k, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), k as u64 + 1);
        }
    }

    #[test]
    fn run_chunks_rethrows_panic() {
        let caught = panic::catch_unwind(|| {
            run_chunks(8, &|k| {
                if k == 5 {
                    panic!("chunk 5 failed");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
        assert!(current_num_threads() <= MAX_THREADS);
    }
}
