//! The scoped work-stealing thread pool behind the parallel iterators.
//!
//! A single global pool is initialised lazily on first use. Its size comes
//! from the `UC_THREADS` environment variable when set (clamped to
//! `1..=MAX_THREADS`; unparsable values fall back to the default), else
//! from [`std::thread::available_parallelism`]. One thread of the pool is
//! always the *submitting* thread itself: a pool of size `N` spawns `N-1`
//! background workers, and with `UC_THREADS=1` no threads are spawned at
//! all — every job runs inline on the caller.
//!
//! Scheduling is chunked work queues with stealing: each background worker
//! owns a deque; submitted jobs are placed round-robin across the worker
//! queues, a worker pops from the front of its own queue, and an idle
//! worker (or a caller waiting on a [`scope`]) steals from the back of its
//! peers' queues. Workers sleep on a condvar when every queue is empty.
//!
//! [`scope`] mirrors `rayon::scope`: jobs spawned inside it may borrow
//! from the enclosing stack frame (`'scope` data), the call returns only
//! once every spawned job (including nested spawns) has finished, and a
//! panic inside any job is captured and re-thrown from `scope` on the
//! calling thread — it never deadlocks the pool or kills a worker.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool size; `UC_THREADS` beyond this is clamped.
pub const MAX_THREADS: usize = 256;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One work queue per background worker.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Guards the sleep/wake handshake (never held while running jobs).
    sleep: Mutex<()>,
    wake: Condvar,
    /// Round-robin cursor for job placement across `queues`.
    cursor: AtomicUsize,
}

impl Shared {
    /// Pop a job: worker `me` prefers the front of its own queue, then
    /// steals from the back of each peer queue. A non-worker caller
    /// (helping from [`Pool::wait_scope`]) passes `me = None` and only
    /// steals.
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(me) = me {
            if let Some(job) = self.queues[me].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        let n = self.queues.len();
        let start = me.map_or(0, |m| m + 1);
        for k in 0..n {
            let q = (start + k) % n;
            if Some(q) == me {
                continue;
            }
            if let Some(job) = self.queues[q].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn any_pending(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn inject(&self, job: Job) {
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(job);
        // Take the sleep lock before notifying so a worker that found all
        // queues empty and is about to wait cannot miss this wakeup.
        let _g = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

pub struct Pool {
    shared: Arc<Shared>,
    /// Background workers; the submitting thread is the `+1`-th member.
    workers: usize,
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        if let Some(job) = shared.find_job(Some(me)) {
            job();
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.any_pending() {
            continue; // a job arrived between the scan and the lock
        }
        // The pool is global and never shuts down; workers just sleep.
        drop(shared.wake.wait(guard).unwrap());
    }
}

/// Pool size: `UC_THREADS` if set and parsable (clamped to
/// `1..=MAX_THREADS`), else the host's available parallelism.
fn configured_threads() -> usize {
    let default = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("UC_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default(),
        },
        Err(_) => default(),
    }
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        for me in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("uc-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Total threads that execute work: background workers plus the caller.
pub fn current_num_threads() -> usize {
    global().workers + 1
}

struct ScopeState {
    /// Spawned-but-unfinished jobs, including nested spawns.
    pending: AtomicUsize,
    /// First panic payload from any job in this scope.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A scope in which borrowed jobs can be spawned; see [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, as in rayon.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// `*const Scope` made Send so jobs on worker threads can call back into
/// `Scope::spawn`. Sound because [`scope`] keeps the `Scope` alive until
/// every job has finished.
#[derive(Clone, Copy)]
struct ScopePtr(*const ());
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field (edition-2021
    /// disjoint capture would otherwise grab the non-`Send` `*const ()`).
    fn get(self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn a job that may borrow `'scope` data. The job runs at some
    /// point before the enclosing [`scope`] call returns, on any pool
    /// thread (inline on the caller for a single-threaded pool). Panics
    /// inside the job are captured and re-thrown by [`scope`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let me = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = move || {
            let scope: &Scope<'scope> = unsafe { &*(me.get() as *const Scope<'scope>) };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(scope)));
            if let Err(payload) = result {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
        };
        let pool = global();
        if pool.workers == 0 {
            // Single-threaded pool: run inline (still recording panics so
            // propagation out of `scope` matches the pooled path).
            job();
        } else {
            // Erase `'scope`: the scope's completion wait guarantees the
            // job is done before any `'scope` borrow expires.
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(job);
            let job: Job = unsafe { std::mem::transmute(job) };
            pool.shared.inject(job);
        }
    }
}

impl Pool {
    /// Block until `state.pending` drains, executing queued jobs (from any
    /// scope) while waiting so the pool cannot deadlock on nested scopes.
    fn wait_scope(&self, state: &ScopeState) {
        while state.pending.load(Ordering::SeqCst) != 0 {
            match self.shared.find_job(None) {
                Some(job) => job(),
                None => std::thread::yield_now(),
            }
        }
    }
}

/// Create a scope for spawning borrowed jobs, as `rayon::scope`: returns
/// once every spawned job has completed, and re-throws the first panic
/// (from the closure itself or any job) on the calling thread.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope { state: Arc::new(ScopeState { pending: AtomicUsize::new(0), panic: Mutex::new(None) }), _marker: PhantomData };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    global().wait_scope(&s.state);
    if let Some(payload) = s.state.panic.lock().unwrap().take() {
        panic::resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_jobs() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for i in 0..64u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum());
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(scope(|_| 42), 42);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
        assert!(current_num_threads() <= MAX_THREADS);
    }
}
